//! The routing grid: a uniform raster over the die.

use youtiao_chip::geometry::BoundingBox;
use youtiao_chip::Position;

/// A grid cell coordinate (column, row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cell {
    /// Column index.
    pub x: usize,
    /// Row index.
    pub y: usize,
}

impl Cell {
    /// Creates a cell coordinate.
    pub const fn new(x: usize, y: usize) -> Self {
        Cell { x, y }
    }

    /// Manhattan distance to another cell.
    pub fn manhattan(self, other: Cell) -> usize {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

/// Raster over the chip area tracking obstacles and wire ownership.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingGrid {
    cols: usize,
    rows: usize,
    resolution_mm: f64,
    origin: Position,
    obstacle: Vec<bool>,
    /// Net id owning the cell's metal, if any.
    owner: Vec<Option<u32>>,
    /// Cells reserved by spacing halos (blocked for other nets).
    halo: Vec<Option<u32>>,
    /// Soft congestion level: routing prefers low-congestion cells, so
    /// wires keep clear of pads and existing metal when they can.
    congestion: Vec<u16>,
}

impl RoutingGrid {
    /// Builds an empty grid covering `bounds` at `resolution_mm` per cell.
    ///
    /// # Panics
    ///
    /// Panics if the resolution is non-positive or the bounds are
    /// degenerate after rasterization.
    pub fn new(bounds: BoundingBox, resolution_mm: f64) -> Self {
        assert!(resolution_mm > 0.0, "resolution must be positive");
        let cols = (bounds.width() / resolution_mm).ceil() as usize + 1;
        let rows = (bounds.height() / resolution_mm).ceil() as usize + 1;
        assert!(cols > 0 && rows > 0, "degenerate routing grid");
        RoutingGrid {
            cols,
            rows,
            resolution_mm,
            origin: bounds.min,
            obstacle: vec![false; cols * rows],
            owner: vec![None; cols * rows],
            halo: vec![None; cols * rows],
            congestion: vec![0; cols * rows],
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Cell size in millimetres.
    pub fn resolution_mm(&self) -> f64 {
        self.resolution_mm
    }

    /// Rasterizes a die position to the nearest cell (clamped to bounds).
    pub fn cell_at(&self, p: Position) -> Cell {
        let x = ((p.x - self.origin.x) / self.resolution_mm).round();
        let y = ((p.y - self.origin.y) / self.resolution_mm).round();
        Cell {
            x: (x.max(0.0) as usize).min(self.cols - 1),
            y: (y.max(0.0) as usize).min(self.rows - 1),
        }
    }

    /// Die position of a cell's centre.
    pub fn position_of(&self, c: Cell) -> Position {
        Position::new(
            self.origin.x + c.x as f64 * self.resolution_mm,
            self.origin.y + c.y as f64 * self.resolution_mm,
        )
    }

    fn idx(&self, c: Cell) -> usize {
        c.y * self.cols + c.x
    }

    /// Marks a disk of cells as a hard obstacle (device footprint).
    pub fn block_disk(&mut self, center: Position, radius_mm: f64) {
        let c = self.cell_at(center);
        let r = (radius_mm / self.resolution_mm).ceil() as isize;
        for dy in -r..=r {
            for dx in -r..=r {
                let x = c.x as isize + dx;
                let y = c.y as isize + dy;
                if x < 0 || y < 0 || x >= self.cols as isize || y >= self.rows as isize {
                    continue;
                }
                let cell = Cell::new(x as usize, y as usize);
                let p = self.position_of(cell);
                // Small tolerance so grid-aligned footprint edges are not
                // dropped by floating-point rounding.
                if p.distance_to(center) <= radius_mm + 1e-9 {
                    let i = self.idx(cell);
                    self.obstacle[i] = true;
                }
            }
        }
    }

    /// Returns `true` when `net` may run metal through the cell:
    /// in-bounds, not an obstacle, not owned or haloed by another net.
    pub fn passable(&self, c: Cell, net: u32) -> bool {
        if c.x >= self.cols || c.y >= self.rows {
            return false;
        }
        let i = self.idx(c);
        if self.obstacle[i] {
            return false;
        }
        if let Some(o) = self.owner[i] {
            if o != net {
                return false;
            }
        }
        if let Some(h) = self.halo[i] {
            if h != net {
                return false;
            }
        }
        true
    }

    /// Like [`passable`](RoutingGrid::passable) but ignoring obstacles —
    /// used for terminals that sit on device footprints.
    pub fn passable_terminal(&self, c: Cell, net: u32) -> bool {
        if c.x >= self.cols || c.y >= self.rows {
            return false;
        }
        let i = self.idx(c);
        self.owner[i].is_none_or(|o| o == net) && self.halo[i].is_none_or(|h| h == net)
    }

    /// Claims a routed path for `net` and reserves a spacing halo of
    /// `spacing_cells` Chebyshev radius around it.
    pub fn commit_path(&mut self, path: &[Cell], net: u32, spacing_cells: usize) {
        for &c in path {
            let i = self.idx(c);
            self.owner[i] = Some(net);
        }
        let s = spacing_cells as isize;
        for &c in path {
            for dy in -s..=s {
                for dx in -s..=s {
                    let x = c.x as isize + dx;
                    let y = c.y as isize + dy;
                    if x < 0 || y < 0 || x >= self.cols as isize || y >= self.rows as isize {
                        continue;
                    }
                    let i = y as usize * self.cols + x as usize;
                    if self.halo[i].is_none() {
                        self.halo[i] = Some(net);
                    }
                }
            }
        }
        self.bump_congestion(path, 2 * s + 2);
    }

    /// Raises the congestion level in a Chebyshev band around `path`.
    fn bump_congestion(&mut self, path: &[Cell], radius: isize) {
        for &c in path {
            for dy in -radius..=radius {
                for dx in -radius..=radius {
                    let x = c.x as isize + dx;
                    let y = c.y as isize + dy;
                    if x < 0 || y < 0 || x >= self.cols as isize || y >= self.rows as isize {
                        continue;
                    }
                    let i = y as usize * self.cols + x as usize;
                    self.congestion[i] = self.congestion[i].saturating_add(1);
                }
            }
        }
    }

    /// The congestion level of a cell (0 = open field).
    pub fn congestion_of(&self, c: Cell) -> u16 {
        self.congestion[self.idx(c)]
    }

    /// Reserves a keep-out halo disk around a terminal for `net`: other
    /// nets may not run metal there (so pads never get walled off), but
    /// `net` itself routes through freely. Already-reserved cells keep
    /// their first owner.
    pub fn reserve_halo_disk(&mut self, center: Position, radius_cells: usize, net: u32) {
        let c = self.cell_at(center);
        let r = radius_cells as isize;
        for dy in -r..=r {
            for dx in -r..=r {
                let x = c.x as isize + dx;
                let y = c.y as isize + dy;
                if x < 0 || y < 0 || x >= self.cols as isize || y >= self.rows as isize {
                    continue;
                }
                let i = y as usize * self.cols + x as usize;
                if self.halo[i].is_none() {
                    self.halo[i] = Some(net);
                }
            }
        }
        // Make the pad's wider neighbourhood expensive so passing wires
        // keep a respectful distance.
        self.bump_congestion(&[c], r + 8);
        self.bump_congestion(&[c], r + 4);
    }

    /// The net owning a cell's metal, if any.
    pub fn owner_of(&self, c: Cell) -> Option<u32> {
        self.owner.get(self.idx(c)).copied().flatten()
    }

    /// Returns `true` when the cell is a hard obstacle.
    pub fn is_obstacle(&self, c: Cell) -> bool {
        self.obstacle[self.idx(c)]
    }

    /// 4-connected in-bounds neighbours of a cell.
    pub fn neighbors(&self, c: Cell) -> impl Iterator<Item = Cell> + '_ {
        let (x, y) = (c.x as isize, c.y as isize);
        [(1isize, 0isize), (-1, 0), (0, 1), (0, -1)]
            .into_iter()
            .filter_map(move |(dx, dy)| {
                let nx = x + dx;
                let ny = y + dy;
                (nx >= 0 && ny >= 0 && nx < self.cols as isize && ny < self.rows as isize)
                    .then(|| Cell::new(nx as usize, ny as usize))
            })
    }

    /// Iterates over all cells owned by some net, with their owner.
    pub fn owned_cells(&self) -> impl Iterator<Item = (Cell, u32)> + '_ {
        (0..self.rows).flat_map(move |y| {
            (0..self.cols).filter_map(move |x| {
                let c = Cell::new(x, y);
                self.owner[self.idx(c)].map(|n| (c, n))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> RoutingGrid {
        let bb = BoundingBox::of([Position::new(0.0, 0.0), Position::new(1.0, 1.0)]).unwrap();
        RoutingGrid::new(bb, 0.1)
    }

    #[test]
    fn dimensions_and_rasterization() {
        let g = grid();
        assert_eq!(g.cols(), 11);
        assert_eq!(g.rows(), 11);
        assert_eq!(g.cell_at(Position::new(0.0, 0.0)), Cell::new(0, 0));
        assert_eq!(g.cell_at(Position::new(1.0, 1.0)), Cell::new(10, 10));
        assert_eq!(g.cell_at(Position::new(0.55, 0.0)), Cell::new(6, 0));
    }

    #[test]
    fn rasterization_clamps_out_of_bounds() {
        let g = grid();
        assert_eq!(g.cell_at(Position::new(-5.0, 50.0)), Cell::new(0, 10));
    }

    #[test]
    fn position_roundtrip() {
        let g = grid();
        let c = Cell::new(3, 7);
        assert_eq!(g.cell_at(g.position_of(c)), c);
    }

    #[test]
    fn obstacles_block() {
        let mut g = grid();
        g.block_disk(Position::new(0.5, 0.5), 0.15);
        let center = g.cell_at(Position::new(0.5, 0.5));
        assert!(g.is_obstacle(center));
        assert!(!g.passable(center, 0));
        assert!(
            g.passable_terminal(center, 0),
            "terminals may sit on footprints"
        );
        // Far corner stays free.
        assert!(g.passable(Cell::new(0, 0), 0));
    }

    #[test]
    fn ownership_and_halo_block_other_nets() {
        let mut g = grid();
        let path = [Cell::new(5, 0), Cell::new(5, 1), Cell::new(5, 2)];
        g.commit_path(&path, 1, 1);
        assert_eq!(g.owner_of(Cell::new(5, 1)), Some(1));
        assert!(g.passable(Cell::new(5, 1), 1), "own net may reuse");
        assert!(!g.passable(Cell::new(5, 1), 2), "other nets blocked");
        assert!(!g.passable(Cell::new(6, 1), 2), "halo blocks neighbours");
        assert!(g.passable(Cell::new(8, 1), 2), "beyond halo is free");
    }

    #[test]
    fn neighbors_respect_bounds() {
        let g = grid();
        let corner: Vec<Cell> = g.neighbors(Cell::new(0, 0)).collect();
        assert_eq!(corner.len(), 2);
        let mid: Vec<Cell> = g.neighbors(Cell::new(5, 5)).collect();
        assert_eq!(mid.len(), 4);
    }

    #[test]
    fn owned_cells_enumerates_paths() {
        let mut g = grid();
        g.commit_path(&[Cell::new(1, 1), Cell::new(1, 2)], 7, 0);
        let owned: Vec<(Cell, u32)> = g.owned_cells().collect();
        assert_eq!(owned.len(), 2);
        assert!(owned.iter().all(|&(_, n)| n == 7));
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(Cell::new(0, 0).manhattan(Cell::new(3, 4)), 7);
        assert_eq!(Cell::new(5, 5).manhattan(Cell::new(5, 5)), 0);
    }
}
