//! On-chip control-line routing for YOUTIAO (§5.3's path-based router).
//!
//! The paper's chip-level experiment "is implemented using path-based
//! simulations, where routing paths are represented by a grid with a
//! resolution of 10 µm … the shortest routing paths are determined by
//! applying an A* algorithm, subject to standard EDA constraints —
//! prohibiting routing intersections and maintaining adequate spacing
//! between adjacent lines". This crate implements exactly that:
//!
//! * [`grid`] — the routing grid over the die bounding box, with qubit
//!   footprints as obstacles and net ownership per cell;
//! * [`astar`] — 4-connected A* shortest paths;
//! * [`router`] — perimeter interface assignment (0.5 mm pitch), chained
//!   multi-terminal net routing with spacing halos, and routing-area
//!   accounting at 20 µm width / 30 µm pitch;
//! * [`drc`] — design-rule check over the final grid.
//!
//! # Example
//!
//! ```
//! use youtiao_chip::topology;
//! use youtiao_route::router::{route_chip, NetSpec, RouteConfig};
//!
//! let chip = topology::square_grid(3, 3);
//! // One XY net chaining three qubits.
//! let positions: Vec<_> = (0..3u32)
//!     .map(|i| chip.qubit(i.into()).unwrap().position())
//!     .collect();
//! let nets = vec![NetSpec::chain("xy0", positions)];
//! let result = route_chip(&chip, &nets, &RouteConfig::default())?;
//! assert_eq!(result.nets.len(), 1);
//! assert!(result.routing_area_mm2 > 0.0);
//! assert!(result.drc.is_clean());
//! # Ok::<(), youtiao_route::router::RouteError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod astar;
pub mod channel;
pub mod drc;
pub mod grid;
pub mod router;

pub use crate::channel::{channel_route, ChannelConfig, ChannelResult};
pub use crate::drc::DrcReport;
pub use crate::grid::{Cell, RoutingGrid};
pub use crate::router::{route_chip, NetSpec, RouteConfig, RouteError, RoutingResult};
