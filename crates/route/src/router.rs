//! Full-chip control-line routing with perimeter interface assignment.

use std::error::Error;
use std::fmt;

use youtiao_chip::chip::QUBIT_DIAMETER_MM;
use youtiao_chip::{Chip, Position};

use crate::astar::find_path;
use crate::drc::{check, DrcReport};
use crate::grid::{Cell, RoutingGrid};

/// Configuration of the chip router, defaults matching §2.1/§5.3 of the
/// paper: 10 µm grid, 30 µm line pitch (20 µm width + 10 µm gap), 0.5 mm
/// interface pitch, 0.65 mm transmon footprints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteConfig {
    /// Grid resolution in millimetres (paper: 10 µm).
    pub resolution_mm: f64,
    /// Line pitch in millimetres used for both spacing halos and routing
    /// area (paper: 30 µm).
    pub pitch_mm: f64,
    /// Margin added around the qubit bounding box for the routing ring.
    pub margin_mm: f64,
    /// Pitch of the perimeter interface pads (paper: 0.5 mm).
    pub interface_pitch_mm: f64,
    /// Device footprint diameter in millimetres.
    pub footprint_mm: f64,
}

impl Default for RouteConfig {
    fn default() -> Self {
        RouteConfig {
            resolution_mm: 0.01,
            pitch_mm: 0.03,
            margin_mm: 1.0,
            interface_pitch_mm: 0.5,
            footprint_mm: QUBIT_DIAMETER_MM,
        }
    }
}

impl RouteConfig {
    /// A coarser grid (50 µm) for quick tests and large chips.
    pub fn coarse() -> Self {
        RouteConfig {
            resolution_mm: 0.05,
            ..Default::default()
        }
    }
}

/// A net to route: a named chain of on-chip terminals. The router
/// prepends the nearest free perimeter interface pad.
#[derive(Debug, Clone, PartialEq)]
pub struct NetSpec {
    /// Display name (e.g. `"xy0"`, `"z3"`).
    pub name: String,
    /// Terminals visited in order (device pads).
    pub terminals: Vec<Position>,
}

impl NetSpec {
    /// Creates a chained net through `terminals`.
    pub fn chain(name: impl Into<String>, terminals: Vec<Position>) -> Self {
        NetSpec {
            name: name.into(),
            terminals,
        }
    }
}

/// One successfully routed net.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedNet {
    /// The net's name.
    pub name: String,
    /// The interface pad position assigned on the perimeter.
    pub interface: Position,
    /// Total metal length in millimetres.
    pub length_mm: f64,
    /// Number of grid cells of metal.
    pub cells: usize,
}

/// Result of routing a whole chip.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingResult {
    /// Per-net results, in input order.
    pub nets: Vec<RoutedNet>,
    /// Total metal length, millimetres.
    pub total_length_mm: f64,
    /// Routing area: total length × line pitch, mm².
    pub routing_area_mm2: f64,
    /// Number of perimeter interface pads consumed.
    pub num_interfaces: usize,
    /// Design-rule check over the final grid.
    pub drc: DrcReport,
}

/// Routing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteError {
    /// No path could be found for a net.
    Unroutable {
        /// Name of the failing net.
        net: String,
    },
    /// A net had no terminals.
    EmptyNet {
        /// Name of the empty net.
        net: String,
    },
    /// The chip perimeter ran out of interface pads.
    OutOfInterfaces,
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::Unroutable { net } => write!(f, "net {net} could not be routed"),
            RouteError::EmptyNet { net } => write!(f, "net {net} has no terminals"),
            RouteError::OutOfInterfaces => write!(f, "no perimeter interface pads left"),
        }
    }
}

impl Error for RouteError {}

/// Routes every net of `nets` on `chip`, assigning each the nearest free
/// perimeter interface pad, and returns metal lengths, routing area and
/// a DRC report.
///
/// Nets are routed in input order (route wide/critical nets first).
///
/// # Errors
///
/// * [`RouteError::EmptyNet`] — a net had no terminals.
/// * [`RouteError::Unroutable`] — A* found no path for some segment.
/// * [`RouteError::OutOfInterfaces`] — more nets than perimeter pads.
pub fn route_chip(
    chip: &Chip,
    nets: &[NetSpec],
    config: &RouteConfig,
) -> Result<RoutingResult, RouteError> {
    let bounds = chip.bounding_box().expanded(config.margin_mm);
    let mut grid = RoutingGrid::new(bounds, config.resolution_mm);

    for q in chip.qubits() {
        grid.block_disk(q.position(), config.footprint_mm / 2.0);
    }

    // Perimeter interface pads at fixed pitch along all four edges.
    let mut pads = perimeter_pads(&bounds, config.interface_pitch_mm);
    let spacing_cells = (config.pitch_mm / config.resolution_mm).round() as usize;
    let clearance = (config.footprint_mm / 2.0 / config.resolution_mm).ceil() as usize + 1;

    // Keep-out halos around every terminal so earlier nets cannot wall
    // off later nets' pads.
    for (id, net) in nets.iter().enumerate() {
        for &t in &net.terminals {
            grid.reserve_halo_disk(t, spacing_cells + 1, id as u32);
        }
    }
    // Escape stubs: commit a run of metal from every pad into the open
    // corridor, extended until it meets the next reservation, so
    // detouring foreign wires can never slip between a pad's keep-out
    // ring and a device footprint and wall the pad in.
    let stub_cells = ((0.3 / config.resolution_mm).round() as usize).max(2);
    for (id, net) in nets.iter().enumerate() {
        for &t in &net.terminals {
            commit_escape_stub(&mut grid, t, id as u32, stub_cells, spacing_cells);
        }
    }

    let mut routed = Vec::with_capacity(nets.len());
    for (id, net) in nets.iter().enumerate() {
        let first = *net.terminals.first().ok_or_else(|| RouteError::EmptyNet {
            net: net.name.clone(),
        })?;
        // Nearest free pad to the first terminal.
        let pad_idx = pads
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_some())
            .min_by(|(_, a), (_, b)| {
                let da = a.expect("filtered Some").distance_to(first);
                let db = b.expect("filtered Some").distance_to(first);
                da.total_cmp(&db)
            })
            .map(|(i, _)| i)
            .ok_or(RouteError::OutOfInterfaces)?;
        let pad = pads[pad_idx].take().expect("selected pad is free");

        // Chain: pad -> t0 -> t1 -> ...
        let mut waypoints = vec![grid.cell_at(pad)];
        waypoints.extend(net.terminals.iter().map(|&t| grid.cell_at(t)));
        let mut full_path: Vec<Cell> = Vec::new();
        for w in waypoints.windows(2) {
            let segment = match find_path(&grid, w[0], w[1], id as u32, clearance) {
                Some(s) => s,
                None => {
                    if std::env::var_os("YOUTIAO_ROUTE_DEBUG").is_some() {
                        dump_blockage(&grid, w[0], w[1], id as u32);
                    }
                    return Err(RouteError::Unroutable {
                        net: net.name.clone(),
                    });
                }
            };
            // Commit each segment immediately so later segments of the
            // same net may touch (but other nets may not).
            grid.commit_path(&segment, id as u32, spacing_cells);
            if full_path.is_empty() {
                full_path.extend(segment);
            } else {
                full_path.extend(segment.into_iter().skip(1));
            }
        }
        let cells = full_path.len();
        routed.push(RoutedNet {
            name: net.name.clone(),
            interface: pad,
            length_mm: cells.saturating_sub(1) as f64 * config.resolution_mm,
            cells,
        });
    }

    let total_length_mm: f64 = routed.iter().map(|n| n.length_mm).sum();
    let drc = check(&grid, spacing_cells.saturating_sub(1));
    Ok(RoutingResult {
        num_interfaces: routed.len(),
        routing_area_mm2: total_length_mm * config.pitch_mm,
        total_length_mm,
        nets: routed,
        drc,
    })
}

/// Like [`route_chip`], but with order-based rip-up: when a net fails,
/// it is promoted to the front of the order and everything is re-routed,
/// up to `max_retries` times. This resolves the common case where an
/// early flexible net walls in a later constrained one.
///
/// # Errors
///
/// Same as [`route_chip`], returned only after retries are exhausted.
pub fn route_chip_with_retries(
    chip: &Chip,
    nets: &[NetSpec],
    config: &RouteConfig,
    max_retries: usize,
) -> Result<RoutingResult, RouteError> {
    // Pathfinder-style negotiation on the net *order*: nets that failed
    // more often route earlier on the next attempt (stable sort keeps
    // the caller's order among equals).
    let mut fail_count: Vec<usize> = vec![0; nets.len()];
    let mut last_err = None;
    for _ in 0..=max_retries {
        let mut indices: Vec<usize> = (0..nets.len()).collect();
        indices.sort_by_key(|&i| std::cmp::Reverse(fail_count[i]));
        let order: Vec<NetSpec> = indices.iter().map(|&i| nets[i].clone()).collect();
        match route_chip(chip, &order, config) {
            Ok(result) => return Ok(result),
            Err(RouteError::Unroutable { net }) => {
                let idx = nets
                    .iter()
                    .position(|n| n.name == net)
                    .expect("failed net came from the input");
                fail_count[idx] += 1;
                last_err = Some(RouteError::Unroutable { net });
            }
            Err(other) => return Err(other),
        }
    }
    Err(last_err.unwrap_or(RouteError::OutOfInterfaces))
}

/// Prints an ASCII passability map around a failed segment (debugging
/// aid, enabled via `YOUTIAO_ROUTE_DEBUG`).
fn dump_blockage(grid: &RoutingGrid, start: Cell, goal: Cell, net: u32) {
    eprintln!(
        "segment {},{} -> {},{} for net {net} failed; map around goal:",
        start.x, start.y, goal.x, goal.y
    );
    let r = 40isize;
    for dy in (-r..=r).step_by(2) {
        let mut line = String::new();
        for dx in (-r..=r).step_by(2) {
            let x = goal.x as isize + dx;
            let y = goal.y as isize + dy;
            if x < 0 || y < 0 {
                line.push(' ');
                continue;
            }
            let c = Cell::new(x as usize, y as usize);
            let ch = if c == goal {
                'G'
            } else if c.x >= grid.cols() || c.y >= grid.rows() {
                ' '
            } else if grid.is_obstacle(c) {
                '#'
            } else if grid.owner_of(c).is_some() {
                'w'
            } else if !grid.passable(c, net) {
                '.'
            } else {
                ' '
            };
            line.push(ch);
        }
        eprintln!("{line}");
    }
}

/// Commits the longest passable straight stub (up to `stub_cells`) from
/// a terminal in the best of the four axis directions.
fn commit_escape_stub(
    grid: &mut RoutingGrid,
    terminal: Position,
    net: u32,
    stub_cells: usize,
    spacing_cells: usize,
) {
    let start = grid.cell_at(terminal);
    let mut best: Vec<Cell> = vec![start];
    for (dx, dy) in [(1isize, 0isize), (-1, 0), (0, 1), (0, -1)] {
        let mut run = vec![start];
        for step in 1..=stub_cells as isize {
            let x = start.x as isize + dx * step;
            let y = start.y as isize + dy * step;
            if x < 0 || y < 0 {
                break;
            }
            let c = Cell::new(x as usize, y as usize);
            if !grid.passable(c, net) {
                break;
            }
            run.push(c);
        }
        if run.len() > best.len() {
            best = run;
        }
    }
    grid.commit_path(&best, net, spacing_cells);
}

/// Pad positions along the four edges of `bounds` at `pitch` spacing.
fn perimeter_pads(
    bounds: &youtiao_chip::geometry::BoundingBox,
    pitch: f64,
) -> Vec<Option<Position>> {
    let mut pads = Vec::new();
    let (w, h) = (bounds.width(), bounds.height());
    let nx = (w / pitch).floor() as usize;
    let ny = (h / pitch).floor() as usize;
    for i in 0..=nx {
        let x = bounds.min.x + i as f64 * pitch;
        pads.push(Some(Position::new(x, bounds.min.y)));
        pads.push(Some(Position::new(x, bounds.max.y)));
    }
    for j in 1..ny {
        let y = bounds.min.y + j as f64 * pitch;
        pads.push(Some(Position::new(bounds.min.x, y)));
        pads.push(Some(Position::new(bounds.max.x, y)));
    }
    pads
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtiao_chip::topology;

    fn qubit_pos(chip: &Chip, i: u32) -> Position {
        chip.qubit(i.into()).unwrap().position()
    }

    #[test]
    fn routes_single_net() {
        let chip = topology::square_grid(2, 2);
        let nets = vec![NetSpec::chain("xy0", vec![qubit_pos(&chip, 0)])];
        let r = route_chip(&chip, &nets, &RouteConfig::coarse()).unwrap();
        assert_eq!(r.nets.len(), 1);
        assert!(r.total_length_mm > 0.0);
        assert!(r.drc.is_clean());
        assert_eq!(r.num_interfaces, 1);
    }

    #[test]
    fn chained_net_visits_all_terminals() {
        let chip = topology::square_grid(3, 3);
        let nets = vec![NetSpec::chain(
            "xy0",
            vec![
                qubit_pos(&chip, 0),
                qubit_pos(&chip, 1),
                qubit_pos(&chip, 2),
            ],
        )];
        let r = route_chip(&chip, &nets, &RouteConfig::coarse()).unwrap();
        // Chain spans at least the 2 mm between the three qubits.
        assert!(r.nets[0].length_mm >= 2.0);
    }

    #[test]
    fn multiple_nets_stay_drc_clean() {
        let chip = topology::square_grid(3, 3);
        let nets: Vec<NetSpec> = (0..6u32)
            .map(|i| NetSpec::chain(format!("n{i}"), vec![qubit_pos(&chip, i)]))
            .collect();
        let r = route_chip(&chip, &nets, &RouteConfig::coarse()).unwrap();
        assert_eq!(r.nets.len(), 6);
        assert!(r.drc.is_clean(), "violations: {:?}", r.drc.violations());
    }

    #[test]
    fn area_is_length_times_pitch() {
        let chip = topology::square_grid(2, 2);
        let nets = vec![NetSpec::chain("a", vec![qubit_pos(&chip, 0)])];
        let cfg = RouteConfig::coarse();
        let r = route_chip(&chip, &nets, &cfg).unwrap();
        assert!((r.routing_area_mm2 - r.total_length_mm * cfg.pitch_mm).abs() < 1e-12);
    }

    #[test]
    fn fewer_nets_means_less_area() {
        let chip = topology::square_grid(3, 3);
        let many: Vec<NetSpec> = (0..9u32)
            .map(|i| NetSpec::chain(format!("n{i}"), vec![qubit_pos(&chip, i)]))
            .collect();
        let few: Vec<NetSpec> = vec![
            NetSpec::chain("a", (0..5u32).map(|i| qubit_pos(&chip, i)).collect()),
            NetSpec::chain("b", (5..9u32).map(|i| qubit_pos(&chip, i)).collect()),
        ];
        let cfg = RouteConfig::coarse();
        let r_many = route_chip(&chip, &many, &cfg).unwrap();
        let r_few = route_chip(&chip, &few, &cfg).unwrap();
        assert!(r_few.num_interfaces < r_many.num_interfaces);
    }

    #[test]
    fn empty_net_rejected() {
        let chip = topology::square_grid(2, 2);
        let nets = vec![NetSpec::chain("bad", vec![])];
        assert!(matches!(
            route_chip(&chip, &nets, &RouteConfig::coarse()),
            Err(RouteError::EmptyNet { .. })
        ));
    }

    #[test]
    fn interfaces_are_on_perimeter() {
        let chip = topology::square_grid(2, 2);
        let cfg = RouteConfig::coarse();
        let nets = vec![NetSpec::chain("a", vec![qubit_pos(&chip, 3)])];
        let r = route_chip(&chip, &nets, &cfg).unwrap();
        let bb = chip.bounding_box().expanded(cfg.margin_mm);
        let p = r.nets[0].interface;
        let on_edge = (p.x - bb.min.x).abs() < 1e-9
            || (p.x - bb.max.x).abs() < 1e-9
            || (p.y - bb.min.y).abs() < 1e-9
            || (p.y - bb.max.y).abs() < 1e-9;
        assert!(on_edge, "interface {p} not on perimeter");
    }

    #[test]
    fn error_display() {
        assert!(RouteError::Unroutable { net: "x".into() }
            .to_string()
            .contains('x'));
        assert!(!RouteError::OutOfInterfaces.to_string().is_empty());
    }
}
