//! Property-based tests for the routers.

use proptest::prelude::*;
use youtiao_chip::topology;
use youtiao_chip::Position;
use youtiao_route::channel::{channel_route, ChannelConfig};
use youtiao_route::router::{route_chip, NetSpec, RouteConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Maze-routing any single qubit pad on any small grid succeeds,
    /// DRC-clean, with length at least the pad's distance to the edge.
    #[test]
    fn maze_single_net_always_routes(rows in 2usize..4, cols in 2usize..4, target in 0u32..16) {
        let chip = topology::square_grid(rows, cols);
        let q = (target % chip.num_qubits() as u32).into();
        let pos = chip.qubit(q).unwrap().position();
        let nets = vec![NetSpec::chain("n", vec![pos])];
        let r = route_chip(&chip, &nets, &RouteConfig::coarse()).unwrap();
        prop_assert!(r.drc.is_clean());
        prop_assert_eq!(r.nets.len(), 1);
        prop_assert!(r.total_length_mm > 0.0);
    }

    /// Channel routing is deterministic and its length scales additively:
    /// routing nets together costs the same as the sum of the parts plus
    /// pad-assignment effects bounded by the perimeter.
    #[test]
    fn channel_route_deterministic(rows in 2usize..5, cols in 2usize..5, picks in proptest::collection::vec(0u32..25, 1..6)) {
        let chip = topology::square_grid(rows, cols);
        let n = chip.num_qubits() as u32;
        let nets: Vec<NetSpec> = picks
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let q = (p % n).into();
                NetSpec::chain(format!("n{i}"), vec![chip.qubit(q).unwrap().position()])
            })
            .collect();
        let cfg = ChannelConfig { margin_mm: 3.0, ..Default::default() };
        let a = channel_route(&chip, &nets, &cfg).unwrap();
        let b = channel_route(&chip, &nets, &cfg).unwrap();
        prop_assert_eq!(a.routing.total_length_mm, b.routing.total_length_mm);
        prop_assert_eq!(a.routing.num_interfaces, nets.len());
        prop_assert!(a.routing.routing_area_mm2 > 0.0);
        for ch in &a.channels {
            prop_assert!(ch.used <= ch.capacity);
        }
    }

    /// Adding a terminal to a chained net never shortens it.
    #[test]
    fn chains_grow_monotonically(extra_x in 0.0f64..3.0, extra_y in 0.0f64..2.0) {
        let chip = topology::square_grid(3, 4);
        let base_terminals = vec![
            chip.qubit(0u32.into()).unwrap().position(),
            chip.qubit(5u32.into()).unwrap().position(),
        ];
        let mut longer = base_terminals.clone();
        longer.push(Position::new(extra_x, extra_y));
        let cfg = ChannelConfig { margin_mm: 2.0, ..Default::default() };
        let short = channel_route(&chip, &[NetSpec::chain("s", base_terminals)], &cfg).unwrap();
        let long = channel_route(&chip, &[NetSpec::chain("l", longer)], &cfg).unwrap();
        prop_assert!(
            long.routing.total_length_mm >= short.routing.total_length_mm - 1e-9
        );
    }
}
