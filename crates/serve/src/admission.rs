//! Admission control for the long-lived daemon: bounded intake with
//! deadline-aware load shedding and per-client in-flight caps.
//!
//! The daemon distinguishes two overload responses, because they have
//! different determinism consequences:
//!
//! - **Backpressure** slows the *intake* side: when the bounded queue
//!   is full, or a client is over its in-flight cap, the daemon stops
//!   reading new frames and drains completed work first. Backpressure
//!   never changes what a request computes — only *when* — so it is
//!   invisible in canonical responses and surfaces only as the
//!   `backpressure_waits` counter.
//! - **Shedding** rejects a request outright with a structured `Shed`
//!   error: a request carrying a deadline that cannot be met at the
//!   current queue depth is cheaper to refuse immediately than to
//!   compute and time out. The shed decision is a pure function of
//!   (queue depth, worker count, estimated cost, deadline), so a
//!   pinned fault schedule makes shed/accept outcomes reproducible.
//!
//! The feasibility rule is a conservative latency bound: a new request
//! waits behind `in_flight` queued jobs spread over `workers` lanes,
//! so its completion estimate is `(in_flight + 1) * est_ms / workers`.
//! If that exceeds the request's deadline it is shed. With `est_ms`
//! unset (0) nothing is ever shed; requests without deadlines are
//! never shed.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Mutex;

/// Tuning knobs for [`AdmissionController`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Maximum jobs queued or running before intake blocks (min 1).
    pub max_queue: usize,
    /// Per-client in-flight cap; `0` means uncapped.
    pub client_inflight: usize,
    /// Estimated per-job cost in milliseconds used for deadline
    /// feasibility; `0.0` disables shedding entirely.
    pub est_ms: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_queue: 1024,
            client_inflight: 0,
            est_ms: 0.0,
        }
    }
}

/// Counters exported into `ServeMetrics` at session end.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionStats {
    /// Requests admitted to the pool.
    pub admitted: u64,
    /// Requests rejected because their deadline was infeasible.
    pub shed: u64,
    /// Times intake blocked on a full queue or a client cap.
    pub backpressure_waits: u64,
    /// High-water mark of concurrently admitted jobs.
    pub max_in_flight: u64,
}

impl AdmissionStats {
    /// Total admission decisions that were made (admitted or shed).
    pub fn decisions(&self) -> u64 {
        self.admitted + self.shed
    }
}

struct AdmissionState {
    in_flight: usize,
    per_client: HashMap<String, usize>,
    stats: AdmissionStats,
}

/// Gatekeeper between the protocol reader and the worker pool.
///
/// Not a semaphore: callers are single-threaded on the intake side
/// (the daemon loop), so blocking is implemented by the caller
/// draining completions and retrying [`AdmissionController::would_block`],
/// not by parking inside this type.
pub struct AdmissionController {
    config: AdmissionConfig,
    workers: usize,
    state: Mutex<AdmissionState>,
}

impl AdmissionController {
    /// A controller for a pool of `workers` lanes (min 1).
    pub fn new(config: AdmissionConfig, workers: usize) -> Self {
        AdmissionController {
            config: AdmissionConfig {
                max_queue: config.max_queue.max(1),
                ..config
            },
            workers: workers.max(1),
            state: Mutex::new(AdmissionState {
                in_flight: 0,
                per_client: HashMap::new(),
                stats: AdmissionStats::default(),
            }),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Jobs currently admitted and not yet finished.
    pub fn in_flight(&self) -> usize {
        self.state.lock().unwrap().in_flight
    }

    /// Clients currently holding in-flight jobs — the size of the
    /// per-client accounting map. Bounded by *live* clients, not by
    /// clients ever seen: [`AdmissionController::finish`] prunes a
    /// client's entry when its last job completes, so a long-lived
    /// daemon session does not accumulate an entry per client that
    /// ever connected.
    pub fn tracked_clients(&self) -> usize {
        self.state.lock().unwrap().per_client.len()
    }

    /// Would admitting one more job for `client` exceed the queue bound
    /// or the client's in-flight cap? When `true`, the caller should
    /// drain a completion (counting a backpressure wait via
    /// [`AdmissionController::note_backpressure`]) and retry — this
    /// check alone does not mutate any counter.
    pub fn would_block(&self, client: &str) -> bool {
        let state = self.state.lock().unwrap();
        if state.in_flight >= self.config.max_queue {
            return true;
        }
        if self.config.client_inflight > 0 {
            let held = state.per_client.get(client).copied().unwrap_or(0);
            if held >= self.config.client_inflight {
                return true;
            }
        }
        false
    }

    /// Records one intake stall (queue full or client cap reached).
    pub fn note_backpressure(&self) {
        self.state.lock().unwrap().stats.backpressure_waits += 1;
    }

    /// Should a request with this deadline be shed? `phantom_load` is
    /// extra synthetic queue depth injected by an overload-burst fault;
    /// real depth and phantom depth shed identically, which is what
    /// makes pinned overload schedules deterministic. Returns the
    /// estimated completion time when the deadline is infeasible.
    pub fn should_shed(&self, deadline_ms: Option<u64>, phantom_load: usize) -> Option<f64> {
        let deadline_ms = deadline_ms?;
        if self.config.est_ms <= 0.0 {
            return None;
        }
        let depth = self.state.lock().unwrap().in_flight + phantom_load;
        let estimate = (depth as f64 + 1.0) * self.config.est_ms / self.workers as f64;
        (estimate > deadline_ms as f64).then_some(estimate)
    }

    /// Records a shed decision.
    pub fn note_shed(&self) {
        self.state.lock().unwrap().stats.shed += 1;
    }

    /// Admits one job for `client`, bumping in-flight accounting.
    pub fn begin(&self, client: &str) {
        let mut state = self.state.lock().unwrap();
        state.in_flight += 1;
        *state.per_client.entry(client.to_string()).or_insert(0) += 1;
        state.stats.admitted += 1;
        state.stats.max_in_flight = state.stats.max_in_flight.max(state.in_flight as u64);
    }

    /// Releases one job held by `client` (call once per completion).
    pub fn finish(&self, client: &str) {
        let mut state = self.state.lock().unwrap();
        state.in_flight = state.in_flight.saturating_sub(1);
        if let Some(held) = state.per_client.get_mut(client) {
            *held = held.saturating_sub(1);
            if *held == 0 {
                state.per_client.remove(client);
            }
        }
    }

    /// Snapshot of the session's admission counters.
    pub fn stats(&self) -> AdmissionStats {
        self.state.lock().unwrap().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(
        max_queue: usize,
        client_inflight: usize,
        est_ms: f64,
        workers: usize,
    ) -> AdmissionController {
        AdmissionController::new(
            AdmissionConfig {
                max_queue,
                client_inflight,
                est_ms,
            },
            workers,
        )
    }

    #[test]
    fn queue_bound_blocks_and_releases() {
        let ctl = controller(2, 0, 0.0, 1);
        assert!(!ctl.would_block("a"));
        ctl.begin("a");
        ctl.begin("a");
        assert!(ctl.would_block("a"), "queue full");
        ctl.finish("a");
        assert!(!ctl.would_block("a"));
        assert_eq!(ctl.stats().admitted, 2);
        assert_eq!(ctl.stats().max_in_flight, 2);
    }

    #[test]
    fn client_cap_is_per_client() {
        let ctl = controller(100, 1, 0.0, 1);
        ctl.begin("alice");
        assert!(ctl.would_block("alice"), "alice at her cap");
        assert!(!ctl.would_block("bob"), "bob unaffected");
        ctl.finish("alice");
        assert!(!ctl.would_block("alice"));
    }

    #[test]
    fn shed_is_a_pure_function_of_depth_cost_and_deadline() {
        // 4 in flight, est 10ms, 2 workers: next job lands at
        // (4+1)*10/2 = 25ms. A 20ms deadline sheds; 30ms does not.
        let ctl = controller(100, 0, 10.0, 2);
        for _ in 0..4 {
            ctl.begin("c");
        }
        assert_eq!(ctl.should_shed(Some(20), 0), Some(25.0));
        assert_eq!(ctl.should_shed(Some(30), 0), None);
        // No deadline or no cost estimate -> never shed.
        assert_eq!(ctl.should_shed(None, 0), None);
        let lax = controller(100, 0, 0.0, 2);
        assert_eq!(lax.should_shed(Some(1), 1_000_000), None);
    }

    #[test]
    fn phantom_load_sheds_like_real_load() {
        let ctl = controller(100, 0, 10.0, 2);
        // Empty queue, but a burst fault injects 4 phantom jobs: the
        // estimate matches the real-depth case above exactly.
        assert_eq!(ctl.should_shed(Some(20), 4), Some(25.0));
        assert_eq!(ctl.should_shed(Some(20), 0), None);
    }

    #[test]
    fn per_client_map_stays_bounded_under_client_churn() {
        // Soak regression guard for a daemon memory leak: 1k distinct
        // clients come and go over one session; the per-client map must
        // track only the live set, never grow with the population ever
        // seen.
        let ctl = controller(8, 4, 0.0, 2);
        let mut peak = 0;
        for wave in 0..250 {
            let names: Vec<String> = (0..4).map(|i| format!("client-{}", wave * 4 + i)).collect();
            for name in &names {
                ctl.begin(name);
                ctl.begin(name);
            }
            peak = peak.max(ctl.tracked_clients());
            for name in &names {
                ctl.finish(name);
                ctl.finish(name);
            }
            assert_eq!(
                ctl.tracked_clients(),
                0,
                "wave {wave} leaked client entries"
            );
        }
        assert!(
            peak <= 4,
            "peak tracked clients {peak} exceeds the live set"
        );
        assert_eq!(ctl.stats().admitted, 2000);
        assert_eq!(ctl.in_flight(), 0);
    }

    #[test]
    fn cost_estimate_boundary_is_pinned_at_zero() {
        // `est_ms` at or below zero disables shedding entirely; the
        // smallest positive value enables it. The CLI rejects negative
        // `--est-ms` at parse time, so a negative here can only come
        // from direct construction — and must still fail safe (never
        // shed) rather than produce nonsense negative estimates.
        for est in [0.0, -0.0, -1.0, f64::NEG_INFINITY] {
            let ctl = controller(100, 0, est, 1);
            ctl.begin("c");
            assert_eq!(ctl.should_shed(Some(0), 0), None, "est_ms {est}");
        }
        let ctl = controller(100, 0, f64::MIN_POSITIVE, 1);
        assert!(
            ctl.should_shed(Some(0), 0).is_some(),
            "any positive estimate beats a 0 ms deadline"
        );
    }

    #[test]
    fn counters_track_decisions_and_stalls() {
        let ctl = controller(1, 0, 5.0, 1);
        ctl.begin("a");
        ctl.note_backpressure();
        ctl.note_shed();
        ctl.finish("a");
        let stats = ctl.stats();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.backpressure_waits, 1);
        assert_eq!(stats.decisions(), 2);
        assert_eq!(ctl.in_flight(), 0);
    }
}
