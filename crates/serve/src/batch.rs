//! The JSONL batch front-end behind `youtiao batch`.
//!
//! [`run_batch`] is the composition point of the serving layer: it
//! resolves every [`DesignRequest`]'s content key, answers repeats from
//! the [`PlanCache`], dispatches the rest to a [`WorkerPool`], streams
//! one JSON [`JobRecord`] line per job *as it completes*, and returns
//! the [`ServeMetrics`] summary. Output is completion-ordered (this is
//! a throughput service); every record carries `index` and `id`, so
//! order-sensitive consumers re-sort in O(n).
//!
//! The front-end is generic over the executor's result type `R` — the
//! `youtiao` facade instantiates it with the design-flow report summary
//! (`youtiao::serve::run_design_batch`).

use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::cache::PlanCache;
use crate::fault::{FaultInjector, FaultKind, FaultPlan};
use crate::job::{ErrorKind, ErrorRecord, JobRecord};
use crate::metrics::ServeMetrics;
use crate::pool::{Executor, PoolOptions, WorkerPool};
use crate::request::{synthetic_drift, DesignRequest};

/// Batch-run configuration.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Worker threads; 0 means one per available core.
    pub jobs: usize,
    /// Default per-job deadline in milliseconds (`deadline_ms` on a
    /// request overrides it).
    pub deadline_ms: Option<u64>,
    /// Retries after the first attempt of transiently failing jobs.
    pub max_retries: u32,
    /// Maximum resident plan-cache entries.
    pub cache_capacity: usize,
    /// Cache persistence: loaded (if present) before the run, saved
    /// after, so a repeated batch over the same file is all cache hits.
    pub cache_path: Option<PathBuf>,
    /// Write every job's span trace as `{"jobs":[...]}` to this file
    /// after the run (also enables tracing on the worker pool).
    pub trace_json: Option<PathBuf>,
    /// Ask the executor to check plan invariants and fail jobs whose
    /// finished plan violates one (`ErrorKind::Validation`). Honored by
    /// executors that consult it — the facade's design executor does.
    pub validate: bool,
    /// Seeded fault schedule to inject around the executor (chaos
    /// runs); also drives the plan's `abort_after` batch fault.
    pub faults: Option<FaultPlan>,
    /// Emit canonical records (latency zeroed, traces stripped) so two
    /// equal-seed chaos runs are byte-identical after an index sort.
    /// Metrics still aggregate the real latencies.
    pub canonical: bool,
    /// Start from an empty cache instead of failing the batch when the
    /// persisted cache file is torn or corrupted.
    pub cache_salvage: bool,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            jobs: 0,
            deadline_ms: None,
            max_retries: 2,
            cache_capacity: 1024,
            cache_path: None,
            trace_json: None,
            validate: false,
            faults: None,
            canonical: false,
            cache_salvage: false,
        }
    }
}

/// Batch front-end failures (per-job failures are *records*, not
/// errors — only input/output problems abort a batch).
#[derive(Debug)]
#[non_exhaustive]
pub enum BatchError {
    /// Reading input or writing output failed.
    Io(std::io::Error),
    /// A JSONL input line did not parse as a [`DesignRequest`].
    Parse {
        /// 1-based input line number.
        line: usize,
        /// Parser detail.
        message: String,
    },
    /// The cache file exists but could not be loaded.
    Cache(String),
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::Io(e) => write!(f, "batch i/o failed: {e}"),
            BatchError::Parse { line, message } => {
                write!(f, "jobs file line {line}: {message}")
            }
            BatchError::Cache(message) => write!(f, "cache file: {message}"),
        }
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BatchError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BatchError {
    fn from(e: std::io::Error) -> Self {
        BatchError::Io(e)
    }
}

/// Parses JSONL text into requests. Blank lines and `#` comment lines
/// are skipped; parse errors carry the 1-based line number.
pub fn parse_requests(text: &str) -> Result<Vec<DesignRequest>, BatchError> {
    let mut requests = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let request = serde_json::from_str(line).map_err(|e| BatchError::Parse {
            line: number + 1,
            message: e.to_string(),
        })?;
        requests.push(request);
    }
    Ok(requests)
}

/// Runs `requests` through `executor` on a worker pool with a plan
/// cache, streaming one JSON record line per job into `out`.
///
/// Uses a caller-owned cache — the in-process warm-cache path. Most
/// callers want [`run_batch`], which also handles cache persistence.
pub fn run_batch_with_cache<R, W>(
    requests: &[DesignRequest],
    executor: Executor<DesignRequest, R>,
    options: &BatchOptions,
    cache: &PlanCache<R>,
    out: &mut W,
) -> Result<ServeMetrics, BatchError>
where
    R: Clone + Send + Serialize + 'static,
    W: Write,
{
    let start = Instant::now();
    let stats_before = cache.stats();
    // Chaos runs interpose the fault schedule between pool and real
    // executor; the pool itself is unaware faults are being injected.
    // Drift faults mutate the request with a schedule-derived synthetic
    // crosstalk shift, turning the attempt into a warm repair job.
    let injector = options.faults.clone().map(FaultInjector::new);
    let executor = match &injector {
        Some(injector) => injector.wrap_with(
            executor,
            Arc::new(|request: &DesignRequest, seed: u64| synthetic_drift(request, seed)),
        ),
        None => executor,
    };
    let mut pool = WorkerPool::new(
        executor,
        PoolOptions {
            workers: options.jobs,
            max_retries: options.max_retries,
            deadline: options.deadline_ms.map(Duration::from_millis),
            trace: options.trace_json.is_some(),
        },
    );

    let mut records: Vec<JobRecord<R>> = Vec::with_capacity(requests.len());
    // Content key per request index, for inserting finished results.
    let mut keys: Vec<Option<u64>> = vec![None; requests.len()];
    let mut dispatched = 0usize;

    let emit = |record: JobRecord<R>, out: &mut W| -> Result<JobRecord<R>, BatchError> {
        // Canonical mode writes the noise-free view but keeps the full
        // record, so metrics still see real latencies and traces.
        let line = if options.canonical {
            serde_json::to_string(&record.clone().canonical())
        } else {
            serde_json::to_string(&record)
        }
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(out, "{line}")?;
        Ok(record)
    };

    for (index, request) in requests.iter().enumerate() {
        let id = request.display_id(index);
        match request.cache_key() {
            Err(e) => {
                // The chip half does not resolve: the executor would fail
                // identically, so answer without occupying a worker.
                let record = JobRecord::error(
                    index,
                    id,
                    ErrorRecord {
                        kind: ErrorKind::InvalidRequest,
                        message: e.to_string(),
                    },
                    0,
                    0.0,
                );
                records.push(emit(record, out)?);
            }
            Ok(key) => {
                keys[index] = Some(key);
                if let Some(result) = cache.get(key) {
                    let record = JobRecord::ok(index, id, result, 0, 0.0).from_cache();
                    records.push(emit(record, out)?);
                } else {
                    let deadline = request.deadline_ms.map(Duration::from_millis);
                    pool.submit(index, id, request.clone(), deadline);
                    dispatched += 1;
                }
            }
        }
    }

    let abort_after = options.faults.as_ref().and_then(|plan| plan.abort_after);
    for received in 0..dispatched {
        let record = pool
            .results()
            .recv()
            .expect("workers outlive the dispatch loop");
        if let (Some(result), Some(key)) = (&record.result, keys[record.index]) {
            // A drift fault answered different inputs than the request
            // describes; memoizing it under the original key would
            // poison the cache. The schedule is pure, so which records
            // drifted is recomputable right here.
            let drifted = options.faults.as_ref().is_some_and(|plan| {
                (0..record.attempts)
                    .any(|a| plan.fault_at(record.index, a) == Some(FaultKind::Drift))
            });
            if !drifted {
                cache.insert(key, result.clone());
            }
        }
        records.push(emit(record, out)?);
        // The batch-level abort fault: kill the pool mid-run. Remaining
        // jobs still complete — as `Cancelled` records.
        if abort_after == Some(received + 1) {
            pool.abort();
        }
    }
    pool.join();
    out.flush()?;

    if let Some(path) = &options.trace_json {
        std::fs::write(path, render_trace_file(&records))?;
    }

    let metrics = ServeMetrics::from_records(
        &records,
        start.elapsed(),
        Some(cache.stats().since(&stats_before)),
    );
    Ok(match &injector {
        Some(injector) => metrics.with_faults(injector.counters()),
        None => metrics,
    })
}

/// The `--trace-json` file body: `{"jobs":[<trace>...]}`, in record
/// completion order. Cache hits and pre-dispatch rejections carry no
/// trace and are omitted.
fn render_trace_file<R>(records: &[JobRecord<R>]) -> String {
    use serde::{Map, Value};
    let jobs = Value::Array(
        records
            .iter()
            .filter_map(|r| r.trace.as_ref())
            .map(Serialize::to_value)
            .collect(),
    );
    let mut map = Map::new();
    map.insert("jobs".into(), jobs);
    serde_json::to_string(&Value::Object(map)).expect("traces always serialize")
}

/// [`run_batch_with_cache`] plus cache persistence: loads
/// `options.cache_path` when it exists, runs the batch, saves the cache
/// back.
pub fn run_batch<R, W>(
    requests: &[DesignRequest],
    executor: Executor<DesignRequest, R>,
    options: &BatchOptions,
    out: &mut W,
) -> Result<ServeMetrics, BatchError>
where
    R: Clone + Send + Serialize + Deserialize + 'static,
    W: Write,
{
    let cache = match &options.cache_path {
        Some(path) if path.exists() => {
            let text = std::fs::read_to_string(path)?;
            match PlanCache::from_json(&text, options.cache_capacity) {
                Ok(cache) => cache,
                // A torn snapshot is a cold start, not a dead service —
                // chaos runs opt in, everyone else still fails loudly.
                Err(_) if options.cache_salvage => PlanCache::new(options.cache_capacity),
                Err(e) => return Err(BatchError::Cache(e.to_string())),
            }
        }
        _ => PlanCache::new(options.cache_capacity),
    };
    let metrics = run_batch_with_cache(requests, executor, options, &cache, out)?;
    if let Some(path) = &options.cache_path {
        cache.save_atomic(path)?;
    }
    Ok(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ExecError;
    use crate::request::ChipRequest;
    use serde::Value;
    use std::sync::Arc;

    /// A cheap stand-in executor: "result" is the qubit count.
    fn counting_executor() -> Executor<DesignRequest, u64> {
        Arc::new(|request, ctx| {
            ctx.cancel
                .checkpoint()
                .map_err(|_| ExecError::cancelled())?;
            let chip = request
                .chip
                .build()
                .map_err(|e| ExecError::permanent(ErrorKind::InvalidRequest, e.to_string()))?;
            Ok(chip.num_qubits() as u64)
        })
    }

    fn requests(n: usize) -> Vec<DesignRequest> {
        (0..n)
            .map(|i| {
                let mut r = DesignRequest::new(ChipRequest::grid("square", 2 + i % 3, 3));
                r.id = Some(format!("sq{i}"));
                r
            })
            .collect()
    }

    #[test]
    fn parses_jsonl_with_comments_and_blanks() {
        let text = "\n# sweep over θ\n{\"chip\":{\"topology\":\"square\"}}\n\n{\"chip\":{\"topology\":\"ring\",\"size\":8},\"theta\":2.0}\n";
        let parsed = parse_requests(text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].theta, Some(2.0));
        let err = parse_requests("{\"chip\":}").unwrap_err();
        assert!(matches!(err, BatchError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn streams_a_record_per_job_and_caches_repeats() {
        let reqs = requests(6); // 3 distinct chips, each twice
        let cache = PlanCache::new(64);
        let mut out = Vec::new();
        let metrics = run_batch_with_cache(
            &reqs,
            counting_executor(),
            &BatchOptions::default(),
            &cache,
            &mut out,
        )
        .unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 6);
        assert_eq!(metrics.jobs, 6);
        assert_eq!(metrics.ok, 6);
        assert_eq!(metrics.cache_misses, 6, "distinct keys all missed");

        // Second pass over the same requests: all hits.
        let mut out = Vec::new();
        let metrics = run_batch_with_cache(
            &reqs,
            counting_executor(),
            &BatchOptions::default(),
            &cache,
            &mut out,
        )
        .unwrap();
        assert_eq!(metrics.cache_hits, 6);
        assert_eq!(metrics.retries, 0);
        for line in std::str::from_utf8(&out).unwrap().lines() {
            let v: Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["cache_hit"], true);
            assert_eq!(v["attempts"], 0);
        }
    }

    #[test]
    fn invalid_requests_become_records_not_errors() {
        let mut reqs = requests(2);
        reqs.push(DesignRequest::new(ChipRequest::named("klein-bottle")));
        let cache = PlanCache::new(64);
        let mut out = Vec::new();
        let metrics = run_batch_with_cache(
            &reqs,
            counting_executor(),
            &BatchOptions::default(),
            &cache,
            &mut out,
        )
        .unwrap();
        assert_eq!(metrics.jobs, 3);
        assert_eq!(metrics.ok, 2);
        assert_eq!(metrics.errors, 1);
        let bad = std::str::from_utf8(&out)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str::<Value>(l).unwrap())
            .find(|v| v["status"] == "Error")
            .unwrap();
        assert_eq!(bad["error"]["kind"], "InvalidRequest");
        assert!(bad["error"]["message"]
            .as_str()
            .unwrap()
            .contains("klein-bottle"));
    }

    #[test]
    fn trace_json_holds_one_trace_per_executed_job() {
        let path = std::env::temp_dir().join(format!(
            "youtiao-serve-test-{}.trace.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let traced_executor: Executor<DesignRequest, u64> = Arc::new(|request, ctx| {
            let span = ctx.tracer.span("build");
            let chip = request
                .chip
                .build()
                .map_err(|e| ExecError::permanent(ErrorKind::InvalidRequest, e.to_string()))?;
            span.annotate("qubits", chip.num_qubits() as u64);
            Ok(chip.num_qubits() as u64)
        });
        let options = BatchOptions {
            trace_json: Some(path.clone()),
            ..Default::default()
        };
        let cache = PlanCache::new(64);
        let mut out = Vec::new();
        let metrics =
            run_batch_with_cache(&requests(3), traced_executor, &options, &cache, &mut out)
                .unwrap();

        // Records carry the traces inline too.
        for line in std::str::from_utf8(&out).unwrap().lines() {
            let v: Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["trace"]["job"], v["id"]);
        }
        // The trace file is {"jobs":[...]} with one entry per executed job.
        let text = std::fs::read_to_string(&path).unwrap();
        let v: Value = serde_json::from_str(&text).unwrap();
        let jobs = v["jobs"].as_array().unwrap();
        assert_eq!(jobs.len(), 3);
        for job in jobs {
            assert_eq!(job["spans"][0]["name"], "attempt");
            assert_eq!(job["spans"][0]["spans"][0]["name"], "build");
        }
        // And the metrics aggregate the spans per stage.
        assert!(metrics.stages.iter().any(|s| s.name == "build"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn chaos_faults_are_injected_and_records_canonicalized() {
        let reqs = requests(6);
        let options = BatchOptions {
            faults: Some(crate::fault::FaultPlan {
                transient_rate: Some(1.0),
                ..Default::default()
            }),
            canonical: true,
            max_retries: 2,
            ..Default::default()
        };
        let cache = PlanCache::new(64);
        let mut out = Vec::new();
        let metrics =
            run_batch_with_cache(&reqs, counting_executor(), &options, &cache, &mut out).unwrap();
        // Every attempt of every job faulted transiently: all jobs
        // exhaust their retries and fail as injected Internal errors.
        assert_eq!(metrics.errors, 6);
        assert_eq!(metrics.retries, 12);
        assert_eq!(metrics.faults.transient, 18, "3 attempts x 6 jobs");
        for line in std::str::from_utf8(&out).unwrap().lines() {
            let v: Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["latency_ms"], 0.0, "canonical records zero latency");
            assert_eq!(v["error"]["kind"], "Internal");
            assert!(v["error"]["message"]
                .as_str()
                .unwrap()
                .contains("injected transient fault"));
        }
    }

    #[test]
    fn abort_after_fault_cancels_the_tail_without_losing_records() {
        let slow: Executor<DesignRequest, u64> = Arc::new(|_, ctx| {
            let start = std::time::Instant::now();
            while start.elapsed() < Duration::from_millis(30) {
                ctx.cancel
                    .checkpoint()
                    .map_err(|_| ExecError::cancelled())?;
                std::thread::sleep(Duration::from_millis(2));
            }
            Ok(1)
        });
        let options = BatchOptions {
            jobs: 1,
            faults: Some(crate::fault::FaultPlan {
                abort_after: Some(1),
                ..Default::default()
            }),
            ..Default::default()
        };
        let cache = PlanCache::new(64);
        let mut out = Vec::new();
        let metrics = run_batch_with_cache(&requests(4), slow, &options, &cache, &mut out).unwrap();
        assert_eq!(metrics.jobs, 4, "aborted jobs still yield records");
        assert_eq!(metrics.ok, 1);
        assert_eq!(metrics.cancelled, 3);
    }

    #[test]
    fn torn_cache_file_fails_loudly_or_salvages_when_opted_in() {
        let path = std::env::temp_dir().join(format!(
            "youtiao-serve-test-{}.torn-cache.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let options = BatchOptions {
            cache_path: Some(path.clone()),
            ..Default::default()
        };
        let reqs = requests(3);
        let mut out = Vec::new();
        run_batch(&reqs, counting_executor(), &options, &mut out).unwrap();
        crate::fault::apply_cache_fault(&path, crate::fault::CacheFault::Truncate).unwrap();

        // Default: the torn file aborts the batch with a cache error.
        let mut out = Vec::new();
        let err = run_batch(&reqs, counting_executor(), &options, &mut out).unwrap_err();
        assert!(matches!(err, BatchError::Cache(_)), "{err}");

        // Salvage: cold start, run fine, and rewrite a valid snapshot.
        let salvage = BatchOptions {
            cache_salvage: true,
            ..options.clone()
        };
        let mut out = Vec::new();
        let cold = run_batch(&reqs, counting_executor(), &salvage, &mut out).unwrap();
        assert_eq!(cold.cache_hits, 0);
        let mut out = Vec::new();
        let warm = run_batch(&reqs, counting_executor(), &options, &mut out).unwrap();
        assert_eq!(warm.cache_hits, 3, "salvage run re-persisted a valid file");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cache_persists_across_batch_runs() {
        let path = std::env::temp_dir().join(format!(
            "youtiao-serve-test-{}.cache.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let options = BatchOptions {
            cache_path: Some(path.clone()),
            ..Default::default()
        };
        let reqs = requests(4);
        let mut out = Vec::new();
        let cold = run_batch(&reqs, counting_executor(), &options, &mut out).unwrap();
        assert_eq!(cold.cache_hits, 0);
        let mut out = Vec::new();
        let warm = run_batch(&reqs, counting_executor(), &options, &mut out).unwrap();
        assert_eq!(warm.cache_hits, 4, "all jobs answered from the cache file");
        let _ = std::fs::remove_file(&path);
    }
}
