//! The JSONL batch front-end behind `youtiao batch`.
//!
//! [`run_batch`] is the composition point of the serving layer: it
//! resolves every [`DesignRequest`]'s content key, answers repeats from
//! the [`PlanCache`], dispatches the rest to a [`WorkerPool`], streams
//! one JSON [`JobRecord`] line per job *as it completes*, and returns
//! the [`ServeMetrics`] summary. Output is completion-ordered (this is
//! a throughput service); every record carries `index` and `id`, so
//! order-sensitive consumers re-sort in O(n).
//!
//! The front-end is generic over the executor's result type `R` — the
//! `youtiao` facade instantiates it with the design-flow report summary
//! (`youtiao::serve::run_design_batch`).

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::cache::{CacheStats, PlanCache};
use crate::fault::{FaultInjector, FaultKind, FaultPlan};
use crate::job::{ErrorKind, ErrorRecord, JobRecord};
use crate::metrics::ServeMetrics;
use crate::pool::{Executor, PoolOptions, WorkerPool};
use crate::proto::FramedReader;
use crate::request::{synthetic_drift, DesignRequest};
use crate::shard::ShardedCache;

/// Batch-run configuration.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Worker threads; 0 means one per available core.
    pub jobs: usize,
    /// Intra-plan worker threads per job; 0 (the default) applies the
    /// oversubscription policy of
    /// [`effective_plan_threads`](crate::pool::effective_plan_threads):
    /// serial plans when the pool has more than one worker, one thread
    /// per core when it has exactly one. Explicit values override the
    /// policy. Plans are byte-identical across all values.
    pub plan_threads: usize,
    /// Default per-job deadline in milliseconds (`deadline_ms` on a
    /// request overrides it).
    pub deadline_ms: Option<u64>,
    /// Retries after the first attempt of transiently failing jobs.
    pub max_retries: u32,
    /// Maximum resident plan-cache entries.
    pub cache_capacity: usize,
    /// Cache persistence: loaded (if present) before the run, saved
    /// after, so a repeated batch over the same file is all cache hits.
    pub cache_path: Option<PathBuf>,
    /// Write every job's span trace as `{"jobs":[...]}` to this file
    /// after the run (also enables tracing on the worker pool).
    pub trace_json: Option<PathBuf>,
    /// Ask the executor to check plan invariants and fail jobs whose
    /// finished plan violates one (`ErrorKind::Validation`). Honored by
    /// executors that consult it — the facade's design executor does.
    pub validate: bool,
    /// Seeded fault schedule to inject around the executor (chaos
    /// runs); also drives the plan's `abort_after` batch fault.
    pub faults: Option<FaultPlan>,
    /// Emit canonical records (latency zeroed, traces stripped) so two
    /// equal-seed chaos runs are byte-identical after an index sort.
    /// Metrics still aggregate the real latencies.
    pub canonical: bool,
    /// Start from an empty cache instead of failing the batch when the
    /// persisted cache file is torn or corrupted.
    pub cache_salvage: bool,
    /// Plan-cache shard count (min 1). With `shards > 1` the batch runs
    /// over a [`ShardedCache`] whose persistence is one file per shard,
    /// so a torn or lost shard costs only that shard's entries; 1 keeps
    /// the flat single-file [`PlanCache`].
    pub shards: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            jobs: 0,
            plan_threads: 0,
            deadline_ms: None,
            max_retries: 2,
            cache_capacity: 1024,
            cache_path: None,
            trace_json: None,
            validate: false,
            faults: None,
            canonical: false,
            cache_salvage: false,
            shards: 1,
        }
    }
}

/// Batch front-end failures (per-job failures are *records*, not
/// errors — only input/output problems abort a batch).
#[derive(Debug)]
#[non_exhaustive]
pub enum BatchError {
    /// Reading input or writing output failed.
    Io(std::io::Error),
    /// A JSONL input line did not parse as a [`DesignRequest`].
    Parse {
        /// 1-based input line number.
        line: usize,
        /// Parser detail.
        message: String,
    },
    /// The cache file exists but could not be loaded.
    Cache(String),
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::Io(e) => write!(f, "batch i/o failed: {e}"),
            BatchError::Parse { line, message } => {
                write!(f, "jobs file line {line}: {message}")
            }
            BatchError::Cache(message) => write!(f, "cache file: {message}"),
        }
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BatchError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BatchError {
    fn from(e: std::io::Error) -> Self {
        BatchError::Io(e)
    }
}

/// Parses JSONL text into requests. Blank lines and `#` comment lines
/// are skipped; parse errors carry the 1-based line number.
pub fn parse_requests(text: &str) -> Result<Vec<DesignRequest>, BatchError> {
    let mut requests = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let request = serde_json::from_str(line).map_err(|e| BatchError::Parse {
            line: number + 1,
            message: e.to_string(),
        })?;
        requests.push(request);
    }
    Ok(requests)
}

/// Either cache shape behind the batch core: the flat [`PlanCache`] or
/// the [`ShardedCache`], with shard tagging a no-op on the flat side.
enum CacheRef<'a, R> {
    Flat(&'a PlanCache<R>),
    Sharded(&'a ShardedCache<R>),
}

impl<R> Clone for CacheRef<'_, R> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<R> Copy for CacheRef<'_, R> {}

impl<R: Clone> CacheRef<'_, R> {
    fn get(&self, key: u64) -> Option<R> {
        match self {
            CacheRef::Flat(cache) => cache.get(key),
            CacheRef::Sharded(cache) => cache.get(key),
        }
    }

    fn insert(&self, key: u64, value: R) {
        match self {
            CacheRef::Flat(cache) => cache.insert(key, value),
            CacheRef::Sharded(cache) => cache.insert(key, value),
        }
    }

    fn stats(&self) -> CacheStats {
        match self {
            CacheRef::Flat(cache) => cache.stats(),
            CacheRef::Sharded(cache) => cache.stats(),
        }
    }

    /// Which shard `key` maps to — `None` on the flat cache and on a
    /// degenerate single-shard cache, so flat output stays unchanged.
    fn shard_tag(&self, key: u64) -> Option<usize> {
        match self {
            CacheRef::Sharded(cache) if cache.shard_count() > 1 => Some(cache.shard_of(key)),
            _ => None,
        }
    }

    fn shard_stats(&self) -> Option<Vec<CacheStats>> {
        match self {
            CacheRef::Sharded(cache) if cache.shard_count() > 1 => Some(cache.shard_stats()),
            _ => None,
        }
    }
}

/// Runs `requests` through `executor` on a worker pool with a plan
/// cache, streaming one JSON record line per job into `out`.
///
/// Uses a caller-owned cache — the in-process warm-cache path. Most
/// callers want [`run_batch`], which also handles cache persistence.
pub fn run_batch_with_cache<R, W>(
    requests: &[DesignRequest],
    executor: Executor<DesignRequest, R>,
    options: &BatchOptions,
    cache: &PlanCache<R>,
    out: &mut W,
) -> Result<ServeMetrics, BatchError>
where
    R: Clone + Send + Serialize + 'static,
    W: Write,
{
    run_batch_core(requests, executor, options, CacheRef::Flat(cache), out)
}

/// [`run_batch_with_cache`] over a caller-owned [`ShardedCache`]:
/// records are tagged with their key's shard and the metrics carry
/// per-shard aggregates.
pub fn run_batch_sharded<R, W>(
    requests: &[DesignRequest],
    executor: Executor<DesignRequest, R>,
    options: &BatchOptions,
    cache: &ShardedCache<R>,
    out: &mut W,
) -> Result<ServeMetrics, BatchError>
where
    R: Clone + Send + Serialize + 'static,
    W: Write,
{
    run_batch_core(requests, executor, options, CacheRef::Sharded(cache), out)
}

fn run_batch_core<R, W>(
    requests: &[DesignRequest],
    executor: Executor<DesignRequest, R>,
    options: &BatchOptions,
    cache: CacheRef<'_, R>,
    out: &mut W,
) -> Result<ServeMetrics, BatchError>
where
    R: Clone + Send + Serialize + 'static,
    W: Write,
{
    let start = Instant::now();
    let stats_before = cache.stats();
    let shards_before = cache.shard_stats();
    // Chaos runs interpose the fault schedule between pool and real
    // executor; the pool itself is unaware faults are being injected.
    // Drift faults mutate the request with a schedule-derived synthetic
    // crosstalk shift, turning the attempt into a warm repair job.
    let injector = options.faults.clone().map(FaultInjector::new);
    let executor = match &injector {
        Some(injector) => injector.wrap_with(
            executor,
            Arc::new(|request: &DesignRequest, seed: u64| synthetic_drift(request, seed)),
        ),
        None => executor,
    };
    let mut pool = WorkerPool::new(
        executor,
        PoolOptions {
            workers: options.jobs,
            max_retries: options.max_retries,
            deadline: options.deadline_ms.map(Duration::from_millis),
            trace: options.trace_json.is_some(),
        },
    );

    let mut records: Vec<JobRecord<R>> = Vec::with_capacity(requests.len());
    // Content key per request index, for inserting finished results.
    let mut keys: Vec<Option<u64>> = vec![None; requests.len()];
    let mut dispatched = 0usize;

    let emit = |record: JobRecord<R>, out: &mut W| -> Result<JobRecord<R>, BatchError> {
        // Canonical mode writes the noise-free view but keeps the full
        // record, so metrics still see real latencies and traces.
        let line = if options.canonical {
            serde_json::to_string(&record.clone().canonical())
        } else {
            serde_json::to_string(&record)
        }
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        writeln!(out, "{line}")?;
        Ok(record)
    };

    for (index, request) in requests.iter().enumerate() {
        let id = request.display_id(index);
        match request.cache_key() {
            Err(e) => {
                // The chip half does not resolve: the executor would fail
                // identically, so answer without occupying a worker.
                let record = JobRecord::error(
                    index,
                    id,
                    ErrorRecord {
                        kind: ErrorKind::InvalidRequest,
                        message: e.to_string(),
                    },
                    0,
                    0.0,
                );
                records.push(emit(record, out)?);
            }
            Ok(key) => {
                keys[index] = Some(key);
                if let Some(result) = cache.get(key) {
                    let record = JobRecord::ok(index, id, result, 0, 0.0)
                        .from_cache()
                        .with_shard(cache.shard_tag(key));
                    records.push(emit(record, out)?);
                } else {
                    let deadline = request.deadline_ms.map(Duration::from_millis);
                    pool.submit(index, id, request.clone(), deadline);
                    dispatched += 1;
                }
            }
        }
    }

    let abort_after = options.faults.as_ref().and_then(|plan| plan.abort_after);
    for received in 0..dispatched {
        let record = pool
            .results()
            .recv()
            .expect("workers outlive the dispatch loop");
        if let (Some(result), Some(key)) = (&record.result, keys[record.index]) {
            // A drift fault answered different inputs than the request
            // describes; memoizing it under the original key would
            // poison the cache. The schedule is pure, so which records
            // drifted is recomputable right here.
            let drifted = options.faults.as_ref().is_some_and(|plan| {
                (0..record.attempts)
                    .any(|a| plan.fault_at(record.index, a) == Some(FaultKind::Drift))
            });
            if !drifted {
                cache.insert(key, result.clone());
            }
        }
        let tag = keys[record.index].and_then(|k| cache.shard_tag(k));
        records.push(emit(record.with_shard(tag), out)?);
        // The batch-level abort fault: kill the pool mid-run. Remaining
        // jobs still complete — as `Cancelled` records.
        if abort_after == Some(received + 1) {
            pool.abort();
        }
    }
    pool.join();
    out.flush()?;

    if let Some(path) = &options.trace_json {
        std::fs::write(path, render_trace_file(&records))?;
    }

    let mut metrics = ServeMetrics::from_records(
        &records,
        start.elapsed(),
        Some(cache.stats().since(&stats_before)),
    );
    if let (Some(after), Some(before)) = (cache.shard_stats(), shards_before) {
        let deltas: Vec<CacheStats> = after
            .iter()
            .zip(before.iter())
            .map(|(a, b)| a.since(b))
            .collect();
        metrics = metrics.with_shards(&records, &deltas);
    }
    Ok(match &injector {
        Some(injector) => metrics.with_faults(injector.counters()),
        None => metrics,
    })
}

/// The `--trace-json` file body: `{"jobs":[<trace>...]}`, in record
/// completion order. Cache hits and pre-dispatch rejections carry no
/// trace and are omitted.
fn render_trace_file<R>(records: &[JobRecord<R>]) -> String {
    use serde::{Map, Value};
    let jobs = Value::Array(
        records
            .iter()
            .filter_map(|r| r.trace.as_ref())
            .map(Serialize::to_value)
            .collect(),
    );
    let mut map = Map::new();
    map.insert("jobs".into(), jobs);
    serde_json::to_string(&Value::Object(map)).expect("traces always serialize")
}

/// [`run_batch_with_cache`] plus cache persistence: loads
/// `options.cache_path` when it exists, runs the batch, saves the cache
/// back. With `options.shards > 1` the cache is a [`ShardedCache`]
/// persisted as one file per shard ([`crate::shard::shard_file`]).
pub fn run_batch<R, W>(
    requests: &[DesignRequest],
    executor: Executor<DesignRequest, R>,
    options: &BatchOptions,
    out: &mut W,
) -> Result<ServeMetrics, BatchError>
where
    R: Clone + Send + Serialize + Deserialize + 'static,
    W: Write,
{
    if options.shards > 1 {
        let cache = load_sharded_cache(options)?;
        let metrics = run_batch_sharded(requests, executor, options, &cache, out)?;
        if let Some(path) = &options.cache_path {
            cache.save_atomic(path)?;
        }
        return Ok(metrics);
    }
    let cache = match &options.cache_path {
        Some(path) if path.exists() => {
            let text = std::fs::read_to_string(path)?;
            match PlanCache::from_json(&text, options.cache_capacity) {
                Ok(cache) => cache,
                // A torn snapshot is a cold start, not a dead service —
                // chaos runs opt in, everyone else still fails loudly.
                Err(_) if options.cache_salvage => PlanCache::new(options.cache_capacity),
                Err(e) => return Err(BatchError::Cache(e.to_string())),
            }
        }
        _ => PlanCache::new(options.cache_capacity),
    };
    let metrics = run_batch_with_cache(requests, executor, options, &cache, out)?;
    if let Some(path) = &options.cache_path {
        cache.save_atomic(path)?;
    }
    Ok(metrics)
}

/// Loads the [`ShardedCache`] named by `options` (missing shard files
/// start cold; torn shards salvage when opted in, fail loudly
/// otherwise).
fn load_sharded_cache<R>(options: &BatchOptions) -> Result<ShardedCache<R>, BatchError>
where
    R: Clone + Deserialize,
{
    let shards = options.shards.max(1);
    Ok(match &options.cache_path {
        Some(path) => {
            ShardedCache::load(path, shards, options.cache_capacity, options.cache_salvage)
                .map_err(|e| BatchError::Cache(e.to_string()))?
                .0
        }
        None => ShardedCache::new(shards, options.cache_capacity),
    })
}

/// In-flight bookkeeping for the streaming front-end.
struct StreamState<R> {
    records: Vec<JobRecord<R>>,
    /// Content key per input index, for memoizing completed results.
    keys: HashMap<usize, u64>,
    /// Requests read from the input so far (also the next job index).
    submitted: usize,
    dispatched: usize,
    received: usize,
}

fn emit_record<R, W>(
    record: JobRecord<R>,
    canonical: bool,
    out: &mut W,
) -> Result<JobRecord<R>, BatchError>
where
    R: Clone + Serialize,
    W: Write,
{
    let line = if canonical {
        serde_json::to_string(&record.clone().canonical())
    } else {
        serde_json::to_string(&record)
    }
    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    writeln!(out, "{line}")?;
    Ok(record)
}

/// Memoizes and emits one completed pool record (streaming path).
fn absorb_completion<R, W>(
    record: JobRecord<R>,
    state: &mut StreamState<R>,
    options: &BatchOptions,
    cache: &ShardedCache<R>,
    out: &mut W,
) -> Result<(), BatchError>
where
    R: Clone + Serialize,
    W: Write,
{
    state.received += 1;
    let key = state.keys.get(&record.index).copied();
    if let (Some(result), Some(key)) = (&record.result, key) {
        // Same cache-poisoning guard as the eager path: a drift fault
        // answered different inputs than the request describes.
        let drifted = options.faults.as_ref().is_some_and(|plan| {
            (0..record.attempts).any(|a| plan.fault_at(record.index, a) == Some(FaultKind::Drift))
        });
        if !drifted {
            cache.insert(key, result.clone());
        }
    }
    let record =
        record.with_shard(key.and_then(|k| (cache.shard_count() > 1).then(|| cache.shard_of(k))));
    state
        .records
        .push(emit_record(record, options.canonical, out)?);
    Ok(())
}

/// The streaming dispatch loop: one framed input line at a time,
/// interleaved with opportunistic result draining so output flows and
/// in-flight memory stays bounded by the pool, not the input size.
fn stream_dispatch<R, In, W>(
    input: In,
    options: &BatchOptions,
    cache: &ShardedCache<R>,
    pool: &mut WorkerPool<DesignRequest, R>,
    state: &mut StreamState<R>,
    abort_after: Option<usize>,
    out: &mut W,
) -> Result<(), BatchError>
where
    R: Clone + Send + Serialize + 'static,
    In: BufRead,
    W: Write,
{
    for frame in FramedReader::new(input) {
        let frame = frame?;
        let request: DesignRequest =
            serde_json::from_str(&frame.text).map_err(|e| BatchError::Parse {
                line: frame.line,
                message: e.to_string(),
            })?;
        let index = state.submitted;
        state.submitted += 1;
        let id = request.display_id(index);
        match request.cache_key() {
            Err(e) => {
                let record = JobRecord::error(
                    index,
                    id,
                    ErrorRecord {
                        kind: ErrorKind::InvalidRequest,
                        message: e.to_string(),
                    },
                    0,
                    0.0,
                );
                state
                    .records
                    .push(emit_record(record, options.canonical, out)?);
            }
            Ok(key) => {
                state.keys.insert(index, key);
                if let Some(result) = cache.get(key) {
                    let record = JobRecord::ok(index, id, result, 0, 0.0)
                        .from_cache()
                        .with_shard((cache.shard_count() > 1).then(|| cache.shard_of(key)));
                    state
                        .records
                        .push(emit_record(record, options.canonical, out)?);
                } else {
                    let deadline = request.deadline_ms.map(Duration::from_millis);
                    if pool.submit(index, id.clone(), request, deadline) {
                        state.dispatched += 1;
                    } else {
                        // The abort fault already fired: the tail of the
                        // stream completes as cancelled records, exactly
                        // like the eager path's undispatched remainder.
                        let record = JobRecord::error(
                            index,
                            id,
                            ErrorRecord {
                                kind: ErrorKind::Cancelled,
                                message: "job cancelled between stages".into(),
                            },
                            0,
                            0.0,
                        );
                        state
                            .records
                            .push(emit_record(record, options.canonical, out)?);
                    }
                }
            }
        }
        while let Ok(record) = pool.results().try_recv() {
            absorb_completion(record, state, options, cache, out)?;
            if abort_after == Some(state.received) {
                pool.abort();
            }
        }
    }
    Ok(())
}

/// The streaming batch front-end behind `youtiao batch`: reads framed
/// JSONL requests from `input` one line at a time (never materializing
/// the whole jobs file), dispatches through a [`ShardedCache`]-backed
/// pool, and streams records as jobs complete. A parse error aborts the
/// batch after draining in-flight work, matching [`run_batch`]'s
/// contract that bad input fails loudly.
///
/// Unlike the eager path — which resolves every cache key before any
/// job completes — the streaming path can answer a later duplicate of
/// an earlier request from the cache if the first instance has already
/// finished, so hit/miss counts for duplicate keys depend on timing.
pub fn run_batch_stream_with_cache<R, In, W>(
    input: In,
    executor: Executor<DesignRequest, R>,
    options: &BatchOptions,
    cache: &ShardedCache<R>,
    out: &mut W,
) -> Result<ServeMetrics, BatchError>
where
    R: Clone + Send + Serialize + 'static,
    In: BufRead,
    W: Write,
{
    let start = Instant::now();
    let stats_before = cache.stats();
    let shards_before = cache.shard_stats();
    let injector = options.faults.clone().map(FaultInjector::new);
    let executor = match &injector {
        Some(injector) => injector.wrap_with(
            executor,
            Arc::new(|request: &DesignRequest, seed: u64| synthetic_drift(request, seed)),
        ),
        None => executor,
    };
    let mut pool = WorkerPool::new(
        executor,
        PoolOptions {
            workers: options.jobs,
            max_retries: options.max_retries,
            deadline: options.deadline_ms.map(Duration::from_millis),
            trace: options.trace_json.is_some(),
        },
    );
    let mut state = StreamState {
        records: Vec::new(),
        keys: HashMap::new(),
        submitted: 0,
        dispatched: 0,
        received: 0,
    };
    let abort_after = options.faults.as_ref().and_then(|plan| plan.abort_after);

    let mut outcome = stream_dispatch(
        input,
        options,
        cache,
        &mut pool,
        &mut state,
        abort_after,
        out,
    );
    if outcome.is_err() {
        pool.abort();
    }
    // Drain the in-flight tail. On the error path completions are
    // swallowed — the batch already failed; the pool just needs to
    // wind down cleanly.
    while state.received < state.dispatched {
        let Ok(record) = pool.results().recv() else {
            break;
        };
        if outcome.is_ok() {
            match absorb_completion(record, &mut state, options, cache, out) {
                Ok(()) => {
                    if abort_after == Some(state.received) {
                        pool.abort();
                    }
                }
                Err(e) => {
                    outcome = Err(e);
                    pool.abort();
                }
            }
        } else {
            state.received += 1;
        }
    }
    pool.join();
    outcome?;
    out.flush()?;

    if let Some(path) = &options.trace_json {
        std::fs::write(path, render_trace_file(&state.records))?;
    }
    let mut metrics = ServeMetrics::from_records(
        &state.records,
        start.elapsed(),
        Some(cache.stats().since(&stats_before)),
    );
    if cache.shard_count() > 1 {
        let deltas: Vec<CacheStats> = cache
            .shard_stats()
            .iter()
            .zip(shards_before.iter())
            .map(|(a, b)| a.since(b))
            .collect();
        metrics = metrics.with_shards(&state.records, &deltas);
    }
    Ok(match &injector {
        Some(injector) => metrics.with_faults(injector.counters()),
        None => metrics,
    })
}

/// [`run_batch_stream_with_cache`] plus cache persistence: loads the
/// (sharded) cache named by `options.cache_path`, streams the batch,
/// saves every shard back.
pub fn run_batch_stream<R, In, W>(
    input: In,
    executor: Executor<DesignRequest, R>,
    options: &BatchOptions,
    out: &mut W,
) -> Result<ServeMetrics, BatchError>
where
    R: Clone + Send + Serialize + Deserialize + 'static,
    In: BufRead,
    W: Write,
{
    let cache = load_sharded_cache(options)?;
    let metrics = run_batch_stream_with_cache(input, executor, options, &cache, out)?;
    if let Some(path) = &options.cache_path {
        cache.save_atomic(path)?;
    }
    Ok(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ExecError;
    use crate::request::ChipRequest;
    use serde::Value;
    use std::sync::Arc;

    /// A cheap stand-in executor: "result" is the qubit count.
    fn counting_executor() -> Executor<DesignRequest, u64> {
        Arc::new(|request, ctx| {
            ctx.cancel
                .checkpoint()
                .map_err(|_| ExecError::cancelled())?;
            let chip = request
                .chip
                .build()
                .map_err(|e| ExecError::permanent(ErrorKind::InvalidRequest, e.to_string()))?;
            Ok(chip.num_qubits() as u64)
        })
    }

    fn requests(n: usize) -> Vec<DesignRequest> {
        (0..n)
            .map(|i| {
                let mut r = DesignRequest::new(ChipRequest::grid("square", 2 + i % 3, 3));
                r.id = Some(format!("sq{i}"));
                r
            })
            .collect()
    }

    #[test]
    fn parses_jsonl_with_comments_and_blanks() {
        let text = "\n# sweep over θ\n{\"chip\":{\"topology\":\"square\"}}\n\n{\"chip\":{\"topology\":\"ring\",\"size\":8},\"theta\":2.0}\n";
        let parsed = parse_requests(text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].theta, Some(2.0));
        let err = parse_requests("{\"chip\":}").unwrap_err();
        assert!(matches!(err, BatchError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn streams_a_record_per_job_and_caches_repeats() {
        let reqs = requests(6); // 3 distinct chips, each twice
        let cache = PlanCache::new(64);
        let mut out = Vec::new();
        let metrics = run_batch_with_cache(
            &reqs,
            counting_executor(),
            &BatchOptions::default(),
            &cache,
            &mut out,
        )
        .unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 6);
        assert_eq!(metrics.jobs, 6);
        assert_eq!(metrics.ok, 6);
        assert_eq!(metrics.cache_misses, 6, "distinct keys all missed");

        // Second pass over the same requests: all hits.
        let mut out = Vec::new();
        let metrics = run_batch_with_cache(
            &reqs,
            counting_executor(),
            &BatchOptions::default(),
            &cache,
            &mut out,
        )
        .unwrap();
        assert_eq!(metrics.cache_hits, 6);
        assert_eq!(metrics.retries, 0);
        for line in std::str::from_utf8(&out).unwrap().lines() {
            let v: Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["cache_hit"], true);
            assert_eq!(v["attempts"], 0);
        }
    }

    #[test]
    fn invalid_requests_become_records_not_errors() {
        let mut reqs = requests(2);
        reqs.push(DesignRequest::new(ChipRequest::named("klein-bottle")));
        let cache = PlanCache::new(64);
        let mut out = Vec::new();
        let metrics = run_batch_with_cache(
            &reqs,
            counting_executor(),
            &BatchOptions::default(),
            &cache,
            &mut out,
        )
        .unwrap();
        assert_eq!(metrics.jobs, 3);
        assert_eq!(metrics.ok, 2);
        assert_eq!(metrics.errors, 1);
        let bad = std::str::from_utf8(&out)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str::<Value>(l).unwrap())
            .find(|v| v["status"] == "Error")
            .unwrap();
        assert_eq!(bad["error"]["kind"], "InvalidRequest");
        assert!(bad["error"]["message"]
            .as_str()
            .unwrap()
            .contains("klein-bottle"));
    }

    #[test]
    fn trace_json_holds_one_trace_per_executed_job() {
        let path = std::env::temp_dir().join(format!(
            "youtiao-serve-test-{}.trace.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let traced_executor: Executor<DesignRequest, u64> = Arc::new(|request, ctx| {
            let span = ctx.tracer.span("build");
            let chip = request
                .chip
                .build()
                .map_err(|e| ExecError::permanent(ErrorKind::InvalidRequest, e.to_string()))?;
            span.annotate("qubits", chip.num_qubits() as u64);
            Ok(chip.num_qubits() as u64)
        });
        let options = BatchOptions {
            trace_json: Some(path.clone()),
            ..Default::default()
        };
        let cache = PlanCache::new(64);
        let mut out = Vec::new();
        let metrics =
            run_batch_with_cache(&requests(3), traced_executor, &options, &cache, &mut out)
                .unwrap();

        // Records carry the traces inline too.
        for line in std::str::from_utf8(&out).unwrap().lines() {
            let v: Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["trace"]["job"], v["id"]);
        }
        // The trace file is {"jobs":[...]} with one entry per executed job.
        let text = std::fs::read_to_string(&path).unwrap();
        let v: Value = serde_json::from_str(&text).unwrap();
        let jobs = v["jobs"].as_array().unwrap();
        assert_eq!(jobs.len(), 3);
        for job in jobs {
            assert_eq!(job["spans"][0]["name"], "attempt");
            assert_eq!(job["spans"][0]["spans"][0]["name"], "build");
        }
        // And the metrics aggregate the spans per stage.
        assert!(metrics.stages.iter().any(|s| s.name == "build"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn chaos_faults_are_injected_and_records_canonicalized() {
        let reqs = requests(6);
        let options = BatchOptions {
            faults: Some(crate::fault::FaultPlan {
                transient_rate: Some(1.0),
                ..Default::default()
            }),
            canonical: true,
            max_retries: 2,
            ..Default::default()
        };
        let cache = PlanCache::new(64);
        let mut out = Vec::new();
        let metrics =
            run_batch_with_cache(&reqs, counting_executor(), &options, &cache, &mut out).unwrap();
        // Every attempt of every job faulted transiently: all jobs
        // exhaust their retries and fail as injected Internal errors.
        assert_eq!(metrics.errors, 6);
        assert_eq!(metrics.retries, 12);
        assert_eq!(metrics.faults.transient, 18, "3 attempts x 6 jobs");
        for line in std::str::from_utf8(&out).unwrap().lines() {
            let v: Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["latency_ms"], 0.0, "canonical records zero latency");
            assert_eq!(v["error"]["kind"], "Internal");
            assert!(v["error"]["message"]
                .as_str()
                .unwrap()
                .contains("injected transient fault"));
        }
    }

    #[test]
    fn abort_after_fault_cancels_the_tail_without_losing_records() {
        let slow: Executor<DesignRequest, u64> = Arc::new(|_, ctx| {
            let start = std::time::Instant::now();
            while start.elapsed() < Duration::from_millis(30) {
                ctx.cancel
                    .checkpoint()
                    .map_err(|_| ExecError::cancelled())?;
                std::thread::sleep(Duration::from_millis(2));
            }
            Ok(1)
        });
        let options = BatchOptions {
            jobs: 1,
            faults: Some(crate::fault::FaultPlan {
                abort_after: Some(1),
                ..Default::default()
            }),
            ..Default::default()
        };
        let cache = PlanCache::new(64);
        let mut out = Vec::new();
        let metrics = run_batch_with_cache(&requests(4), slow, &options, &cache, &mut out).unwrap();
        assert_eq!(metrics.jobs, 4, "aborted jobs still yield records");
        assert_eq!(metrics.ok, 1);
        assert_eq!(metrics.cancelled, 3);
    }

    #[test]
    fn torn_cache_file_fails_loudly_or_salvages_when_opted_in() {
        let path = std::env::temp_dir().join(format!(
            "youtiao-serve-test-{}.torn-cache.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let options = BatchOptions {
            cache_path: Some(path.clone()),
            ..Default::default()
        };
        let reqs = requests(3);
        let mut out = Vec::new();
        run_batch(&reqs, counting_executor(), &options, &mut out).unwrap();
        crate::fault::apply_cache_fault(&path, crate::fault::CacheFault::Truncate).unwrap();

        // Default: the torn file aborts the batch with a cache error.
        let mut out = Vec::new();
        let err = run_batch(&reqs, counting_executor(), &options, &mut out).unwrap_err();
        assert!(matches!(err, BatchError::Cache(_)), "{err}");

        // Salvage: cold start, run fine, and rewrite a valid snapshot.
        let salvage = BatchOptions {
            cache_salvage: true,
            ..options.clone()
        };
        let mut out = Vec::new();
        let cold = run_batch(&reqs, counting_executor(), &salvage, &mut out).unwrap();
        assert_eq!(cold.cache_hits, 0);
        let mut out = Vec::new();
        let warm = run_batch(&reqs, counting_executor(), &options, &mut out).unwrap();
        assert_eq!(warm.cache_hits, 3, "salvage run re-persisted a valid file");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cache_persists_across_batch_runs() {
        let path = std::env::temp_dir().join(format!(
            "youtiao-serve-test-{}.cache.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let options = BatchOptions {
            cache_path: Some(path.clone()),
            ..Default::default()
        };
        let reqs = requests(4);
        let mut out = Vec::new();
        let cold = run_batch(&reqs, counting_executor(), &options, &mut out).unwrap();
        assert_eq!(cold.cache_hits, 0);
        let mut out = Vec::new();
        let warm = run_batch(&reqs, counting_executor(), &options, &mut out).unwrap();
        assert_eq!(warm.cache_hits, 4, "all jobs answered from the cache file");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn streaming_front_end_matches_eager_results() {
        let text = "\n# a sweep\n{\"chip\":{\"topology\":\"square\",\"rows\":2,\"cols\":3},\"id\":\"a\"}\n{\"chip\":{\"topology\":\"square\",\"rows\":3,\"cols\":3},\"id\":\"b\"}\n{\"chip\":{\"topology\":\"klein-bottle\"},\"id\":\"c\"}\n";
        let mut out = Vec::new();
        let metrics = run_batch_stream(
            std::io::Cursor::new(text),
            counting_executor(),
            &BatchOptions::default(),
            &mut out,
        )
        .unwrap();
        assert_eq!(metrics.jobs, 3);
        assert_eq!(metrics.ok, 2);
        assert_eq!(metrics.errors, 1);
        let mut lines: Vec<Value> = std::str::from_utf8(&out)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        lines.sort_by_key(|v| v["index"].as_u64());
        assert_eq!(lines[0]["id"], "a");
        assert_eq!(lines[0]["result"], 6);
        assert_eq!(lines[1]["result"], 9);
        assert_eq!(lines[2]["error"]["kind"], "InvalidRequest");

        // A mid-stream parse error aborts loudly with its line number.
        let bad = "{\"chip\":{\"topology\":\"square\"}}\n{\"chip\":}\n";
        let mut out = Vec::new();
        let err = run_batch_stream(
            std::io::Cursor::new(bad),
            counting_executor(),
            &BatchOptions::default(),
            &mut out,
        )
        .unwrap_err();
        assert!(matches!(err, BatchError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn sharded_batch_tags_records_and_persists_per_shard() {
        let path = std::env::temp_dir().join(format!(
            "youtiao-serve-test-{}.sharded-cache.json",
            std::process::id()
        ));
        let shards = 4usize;
        for index in 0..shards {
            let _ = std::fs::remove_file(crate::shard::shard_file(&path, index, shards));
        }
        let options = BatchOptions {
            cache_path: Some(path.clone()),
            shards,
            ..Default::default()
        };
        let reqs = requests(6); // 3 distinct chips, each twice
        let mut out = Vec::new();
        let cold = run_batch(&reqs, counting_executor(), &options, &mut out).unwrap();
        assert_eq!(cold.cache_hits, 0, "eager path resolves keys up front");
        assert!(!cold.shards.is_empty(), "sharded metrics attach");
        let jobs: usize = cold.shards.iter().map(|s| s.jobs).sum();
        assert_eq!(jobs, 6, "every keyed record lands in a shard bucket");
        for line in std::str::from_utf8(&out).unwrap().lines() {
            let v: Value = serde_json::from_str(line).unwrap();
            let shard = v["shard"].as_u64().expect("sharded records are tagged");
            assert!((shard as usize) < shards);
        }

        // Warm pass reads the per-shard files back.
        let mut out = Vec::new();
        let warm = run_batch(&reqs, counting_executor(), &options, &mut out).unwrap();
        assert_eq!(warm.cache_hits, 6);

        // Flat single-shard runs keep their compact untagged lines.
        let flat = BatchOptions::default();
        let cache = PlanCache::new(64);
        let mut out = Vec::new();
        run_batch_with_cache(&reqs, counting_executor(), &flat, &cache, &mut out).unwrap();
        for line in std::str::from_utf8(&out).unwrap().lines() {
            let v: Value = serde_json::from_str(line).unwrap();
            assert!(v.get("shard").is_none());
        }
        for index in 0..shards {
            let _ = std::fs::remove_file(crate::shard::shard_file(&path, index, shards));
        }
    }
}
