//! Content-addressed plan cache.
//!
//! Repeated design requests dominate real sweep workloads (the same
//! chip/θ/seed point shows up across sweep axes), so finished reports
//! are memoized under a *content key*: a stable 64-bit FNV-1a hash of
//! the canonical JSON of whatever identifies the computation — for the
//! design flow, `(ChipSpec, planner knobs, seed)`. Canonical JSON is
//! deterministic here because the vendored serde `Map` is a `BTreeMap`
//! (sorted keys), so equal inputs always hash equal across runs,
//! platforms and processes.
//!
//! The cache is a mutex-guarded LRU with hit/miss/eviction counters and
//! optional JSON persistence, which is what lets a *second* `youtiao
//! batch` process over the same JSONL file answer every job from cache.

use std::collections::HashMap;
use std::sync::Mutex;

use serde::{Deserialize, Map, Serialize, Value};

/// Computes the stable content key of any serializable value: FNV-1a
/// over its compact canonical JSON.
///
/// # Example
///
/// ```
/// use youtiao_serve::cache::content_key;
///
/// let a = content_key(&("square", 3u32, 7u64));
/// let b = content_key(&("square", 3u32, 7u64));
/// let c = content_key(&("square", 3u32, 8u64));
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
pub fn content_key<T: Serialize + ?Sized>(value: &T) -> u64 {
    fnv1a(value.to_value().to_json().as_bytes())
}

/// 64-bit FNV-1a. Not cryptographic — collision resistance is fine for
/// a memo table keyed by trusted request content.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Cache behavior counters, included in the batch metrics summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries.
    pub capacity: usize,
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that fell through to the pipeline.
    pub misses: u64,
    /// Entries displaced by the LRU policy.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups (0.0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter deltas against an earlier snapshot of the same cache —
    /// per-batch activity on a long-lived cache. `entries`/`capacity`
    /// stay at their current values.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            entries: self.entries,
            capacity: self.capacity,
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

struct Entry<R> {
    value: R,
    last_used: u64,
}

struct Inner<R> {
    map: HashMap<u64, Entry<R>>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A thread-safe, content-addressed LRU memo of finished results.
///
/// # Example
///
/// ```
/// use youtiao_serve::PlanCache;
///
/// let cache: PlanCache<String> = PlanCache::new(2);
/// cache.insert(1, "a".into());
/// cache.insert(2, "b".into());
/// assert_eq!(cache.get(1), Some("a".into()));
/// cache.insert(3, "c".into()); // evicts key 2, the least recently used
/// assert_eq!(cache.get(2), None);
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 1));
/// ```
pub struct PlanCache<R> {
    inner: Mutex<Inner<R>>,
    capacity: usize,
}

impl<R> PlanCache<R> {
    /// An empty cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Looks up `key`, counting a hit or miss and refreshing recency.
    pub fn get(&self, key: u64) -> Option<R>
    where
        R: Clone,
    {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                let value = entry.value.clone();
                inner.hits += 1;
                Some(value)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used
    /// entry when full.
    pub fn insert(&self, key: u64, value: R) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let fresh = !inner.map.contains_key(&key);
        if fresh && inner.map.len() >= self.capacity {
            if let Some((&lru, _)) = inner.map.iter().min_by_key(|(_, e)| e.last_used) {
                inner.map.remove(&lru);
                inner.evictions += 1;
            }
        }
        inner.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            entries: inner.map.len(),
            capacity: self.capacity,
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
        }
    }

    /// Serializes the resident entries as one JSON object keyed by the
    /// hexadecimal content key (counters are not persisted).
    pub fn to_json(&self) -> String
    where
        R: Serialize,
    {
        let inner = self.inner.lock().expect("cache lock");
        let mut map = Map::new();
        for (key, entry) in &inner.map {
            map.insert(format!("{key:016x}"), entry.value.to_value());
        }
        Value::Object(map).to_json()
    }

    /// Rebuilds a cache from [`Self::to_json`] output. Entries beyond
    /// `capacity` are dropped oldest-key-first (persisted caches carry
    /// no recency order).
    pub fn from_json(text: &str, capacity: usize) -> Result<Self, String>
    where
        R: Deserialize,
    {
        let value: Value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let object = value.as_object().ok_or("cache file is not a JSON object")?;
        let cache = PlanCache::new(capacity);
        for (hex, entry) in object {
            let key = u64::from_str_radix(hex, 16).map_err(|e| format!("bad cache key: {e}"))?;
            let value = R::from_value(entry).map_err(|e| format!("cache entry {hex}: {e}"))?;
            cache.insert(key, value);
        }
        // Loading must not count toward runtime stats.
        let mut inner = cache.inner.lock().expect("cache lock");
        inner.hits = 0;
        inner.misses = 0;
        inner.evictions = 0;
        drop(inner);
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_key_is_stable_and_order_insensitive() {
        // Equal maps built in different insertion orders hash equal:
        // canonical JSON sorts keys.
        let mut a = Map::new();
        a.insert("x".into(), Value::Bool(true));
        a.insert("y".into(), 3u32.to_value());
        let mut b = Map::new();
        b.insert("y".into(), 3u32.to_value());
        b.insert("x".into(), Value::Bool(true));
        assert_eq!(
            content_key(&Value::Object(a)),
            content_key(&Value::Object(b))
        );
        // Known FNV-1a vector.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache: PlanCache<u32> = PlanCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.get(1), Some(10)); // refresh 1
        cache.insert(3, 30); // evicts 2
        assert_eq!(cache.get(2), None);
        assert_eq!(cache.get(1), Some(10));
        assert_eq!(cache.get(3), Some(30));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn json_roundtrip_preserves_entries() {
        let cache: PlanCache<String> = PlanCache::new(8);
        cache.insert(7, "seven".into());
        cache.insert(u64::MAX, "max".into());
        let text = cache.to_json();
        let back: PlanCache<String> = PlanCache::from_json(&text, 8).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(7), Some("seven".into()));
        assert_eq!(back.get(u64::MAX), Some("max".into()));
        assert!(PlanCache::<String>::from_json("[]", 8).is_err());
    }

    #[test]
    fn hit_rate_counts() {
        let cache: PlanCache<u32> = PlanCache::new(4);
        cache.insert(1, 1);
        cache.get(1);
        cache.get(2);
        let s = cache.stats();
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(
            CacheStats {
                hits: 0,
                misses: 0,
                evictions: 0,
                entries: 0,
                capacity: 1
            }
            .hit_rate(),
            0.0
        );
    }
}
