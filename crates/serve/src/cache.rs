//! Content-addressed plan cache.
//!
//! Repeated design requests dominate real sweep workloads (the same
//! chip/θ/seed point shows up across sweep axes), so finished reports
//! are memoized under a *content key*: a stable 64-bit FNV-1a hash of
//! the canonical JSON of whatever identifies the computation — for the
//! design flow, `(ChipSpec, planner knobs, seed)`. Canonical JSON is
//! deterministic here because the vendored serde `Map` is a `BTreeMap`
//! (sorted keys), so equal inputs always hash equal across runs,
//! platforms and processes.
//!
//! The cache is a mutex-guarded LRU with hit/miss/eviction counters and
//! optional JSON persistence, which is what lets a *second* `youtiao
//! batch` process over the same JSONL file answer every job from cache.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Mutex;

use serde::{Deserialize, Map, Serialize, Value};

/// Schema tag of the persisted snapshot envelope.
pub const CACHE_SCHEMA: &str = "youtiao-plan-cache/v1";

/// Why a persisted cache snapshot was rejected. Structured so callers
/// (and the chaos harness's torn-file tests) can distinguish a file
/// that never was JSON from one that tore mid-write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheLoadError {
    /// The file is not valid JSON — the usual signature of a write that
    /// died midway or of byte-level corruption.
    Parse(String),
    /// The file parses but is not a JSON object.
    NotAnObject,
    /// The envelope's `schema` tag is missing pieces or names a version
    /// this build does not read.
    BadSchema(String),
    /// The envelope parses but holds fewer entries than its `count`
    /// header claims — a torn write that still happens to parse.
    Truncated {
        /// Entry count the header promised.
        expected: usize,
        /// Entries actually present.
        found: usize,
    },
    /// An entry key is not a 64-bit hexadecimal content key.
    BadKey {
        /// The offending key text.
        key: String,
        /// Parser detail.
        detail: String,
    },
    /// An entry value does not deserialize as the cached result type.
    BadEntry {
        /// The entry's content key.
        key: String,
        /// Deserializer detail.
        detail: String,
    },
}

impl std::fmt::Display for CacheLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheLoadError::Parse(detail) => {
                write!(f, "cache file does not parse as JSON: {detail}")
            }
            CacheLoadError::NotAnObject => f.write_str("cache file is not a JSON object"),
            CacheLoadError::BadSchema(detail) => {
                write!(f, "cache file schema mismatch: {detail}")
            }
            CacheLoadError::Truncated { expected, found } => write!(
                f,
                "cache file is torn: header promises {expected} entries, found {found}"
            ),
            CacheLoadError::BadKey { key, detail } => {
                write!(f, "bad cache key `{key}`: {detail}")
            }
            CacheLoadError::BadEntry { key, detail } => {
                write!(f, "cache entry {key}: {detail}")
            }
        }
    }
}

impl std::error::Error for CacheLoadError {}

/// Computes the stable content key of any serializable value: FNV-1a
/// over its compact canonical JSON.
///
/// # Example
///
/// ```
/// use youtiao_serve::cache::content_key;
///
/// let a = content_key(&("square", 3u32, 7u64));
/// let b = content_key(&("square", 3u32, 7u64));
/// let c = content_key(&("square", 3u32, 8u64));
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
pub fn content_key<T: Serialize + ?Sized>(value: &T) -> u64 {
    fnv1a(value.to_value().to_json().as_bytes())
}

/// 64-bit FNV-1a. Not cryptographic — collision resistance is fine for
/// a memo table keyed by trusted request content.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Cache behavior counters, included in the batch metrics summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries.
    pub capacity: usize,
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that fell through to the pipeline.
    pub misses: u64,
    /// Entries displaced by the LRU policy.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups (0.0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter deltas against an earlier snapshot of the same cache —
    /// per-batch activity on a long-lived cache. `entries`/`capacity`
    /// stay at their current values.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            entries: self.entries,
            capacity: self.capacity,
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

struct Entry<R> {
    value: R,
    last_used: u64,
}

struct Inner<R> {
    map: HashMap<u64, Entry<R>>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A thread-safe, content-addressed LRU memo of finished results.
///
/// # Example
///
/// ```
/// use youtiao_serve::PlanCache;
///
/// let cache: PlanCache<String> = PlanCache::new(2);
/// cache.insert(1, "a".into());
/// cache.insert(2, "b".into());
/// assert_eq!(cache.get(1), Some("a".into()));
/// cache.insert(3, "c".into()); // evicts key 2, the least recently used
/// assert_eq!(cache.get(2), None);
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 1));
/// ```
pub struct PlanCache<R> {
    inner: Mutex<Inner<R>>,
    capacity: usize,
}

impl<R> PlanCache<R> {
    /// An empty cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Looks up `key`, counting a hit or miss and refreshing recency.
    pub fn get(&self, key: u64) -> Option<R>
    where
        R: Clone,
    {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                let value = entry.value.clone();
                inner.hits += 1;
                Some(value)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used
    /// entry when full.
    pub fn insert(&self, key: u64, value: R) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let fresh = !inner.map.contains_key(&key);
        if fresh && inner.map.len() >= self.capacity {
            if let Some((&lru, _)) = inner.map.iter().min_by_key(|(_, e)| e.last_used) {
                inner.map.remove(&lru);
                inner.evictions += 1;
            }
        }
        inner.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            entries: inner.map.len(),
            capacity: self.capacity,
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
        }
    }

    /// Serializes the resident entries as a versioned snapshot envelope
    /// — `{"schema": ..., "count": N, "entries": {<hex key>: ...}}` —
    /// whose `count` header lets [`Self::from_json`] detect a torn file
    /// that still parses (counters are not persisted).
    pub fn to_json(&self) -> String
    where
        R: Serialize,
    {
        let inner = self.inner.lock().expect("cache lock");
        let mut entries = Map::new();
        for (key, entry) in &inner.map {
            entries.insert(format!("{key:016x}"), entry.value.to_value());
        }
        let mut map = Map::new();
        map.insert("schema".into(), Value::String(CACHE_SCHEMA.into()));
        map.insert("count".into(), (entries.len() as u64).to_value());
        map.insert("entries".into(), Value::Object(entries));
        Value::Object(map).to_json()
    }

    /// Rebuilds a cache from [`Self::to_json`] output, rejecting torn
    /// or corrupted snapshots with a structured [`CacheLoadError`]
    /// instead of partially loading. Bare objects without the envelope
    /// (pre-v1 snapshots) still load. Entries beyond `capacity` are
    /// dropped oldest-key-first (persisted caches carry no recency
    /// order).
    pub fn from_json(text: &str, capacity: usize) -> Result<Self, CacheLoadError>
    where
        R: Deserialize,
    {
        let value: Value =
            serde_json::from_str(text).map_err(|e| CacheLoadError::Parse(e.to_string()))?;
        let object = value.as_object().ok_or(CacheLoadError::NotAnObject)?;
        let entries = match object.get("schema") {
            Some(schema) => {
                match schema.as_str() {
                    Some(CACHE_SCHEMA) => {}
                    Some(other) => return Err(CacheLoadError::BadSchema(other.to_string())),
                    None => return Err(CacheLoadError::BadSchema(schema.to_json())),
                }
                let entries = object
                    .get("entries")
                    .and_then(Value::as_object)
                    .ok_or_else(|| CacheLoadError::BadSchema("missing `entries` object".into()))?;
                let expected = object
                    .get("count")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| CacheLoadError::BadSchema("missing `count` header".into()))?
                    as usize;
                if expected != entries.len() {
                    return Err(CacheLoadError::Truncated {
                        expected,
                        found: entries.len(),
                    });
                }
                entries
            }
            // Legacy snapshot: the whole object is the entry map.
            None => object,
        };
        let cache = PlanCache::new(capacity);
        for (hex, entry) in entries {
            let key = u64::from_str_radix(hex, 16).map_err(|e| CacheLoadError::BadKey {
                key: hex.clone(),
                detail: e.to_string(),
            })?;
            let value = R::from_value(entry).map_err(|e| CacheLoadError::BadEntry {
                key: hex.clone(),
                detail: e.to_string(),
            })?;
            cache.insert(key, value);
        }
        // Loading must not count toward runtime stats.
        let mut inner = cache.inner.lock().expect("cache lock");
        inner.hits = 0;
        inner.misses = 0;
        inner.evictions = 0;
        drop(inner);
        Ok(cache)
    }

    /// Crash-safe persistence: writes the snapshot to a temp file next
    /// to `path` and renames it into place, so a crash mid-write leaves
    /// either the old snapshot or the new one on disk — never a torn
    /// file. (The rename is atomic only within one filesystem, which
    /// the same-directory temp guarantees.)
    pub fn save_atomic(&self, path: &Path) -> std::io::Result<()>
    where
        R: Serialize,
    {
        let file_name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "cache".into());
        let tmp = path.with_file_name(format!(".{file_name}.tmp-{}", std::process::id()));
        std::fs::write(&tmp, self.to_json())?;
        match std::fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_key_is_stable_and_order_insensitive() {
        // Equal maps built in different insertion orders hash equal:
        // canonical JSON sorts keys.
        let mut a = Map::new();
        a.insert("x".into(), Value::Bool(true));
        a.insert("y".into(), 3u32.to_value());
        let mut b = Map::new();
        b.insert("y".into(), 3u32.to_value());
        b.insert("x".into(), Value::Bool(true));
        assert_eq!(
            content_key(&Value::Object(a)),
            content_key(&Value::Object(b))
        );
        // Known FNV-1a vector.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache: PlanCache<u32> = PlanCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.get(1), Some(10)); // refresh 1
        cache.insert(3, 30); // evicts 2
        assert_eq!(cache.get(2), None);
        assert_eq!(cache.get(1), Some(10));
        assert_eq!(cache.get(3), Some(30));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn json_roundtrip_preserves_entries() {
        let cache: PlanCache<String> = PlanCache::new(8);
        cache.insert(7, "seven".into());
        cache.insert(u64::MAX, "max".into());
        let text = cache.to_json();
        assert!(text.contains(CACHE_SCHEMA));
        let back: PlanCache<String> = PlanCache::from_json(&text, 8).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(7), Some("seven".into()));
        assert_eq!(back.get(u64::MAX), Some("max".into()));
        assert_eq!(
            PlanCache::<String>::from_json("[]", 8).err().unwrap(),
            CacheLoadError::NotAnObject
        );
    }

    #[test]
    fn legacy_bare_object_snapshots_still_load() {
        let back: PlanCache<String> =
            PlanCache::from_json(r#"{"0000000000000007":"seven"}"#, 8).unwrap();
        assert_eq!(back.get(7), Some("seven".into()));
    }

    #[test]
    fn torn_and_corrupt_snapshots_are_rejected_structurally() {
        // Byte-truncated file: not JSON at all.
        let cache: PlanCache<u32> = PlanCache::new(8);
        cache.insert(1, 10);
        cache.insert(2, 20);
        let text = cache.to_json();
        let torn = &text[..text.len() / 2];
        assert!(matches!(
            PlanCache::<u32>::from_json(torn, 8).err().unwrap(),
            CacheLoadError::Parse(_)
        ));

        // Parses, but the count header contradicts the entries: the
        // torn-but-valid case only the envelope can catch.
        let half =
            r#"{"schema":"youtiao-plan-cache/v1","count":2,"entries":{"0000000000000001":10}}"#;
        let err = PlanCache::<u32>::from_json(half, 8).err().unwrap();
        assert_eq!(
            err,
            CacheLoadError::Truncated {
                expected: 2,
                found: 1
            }
        );
        assert!(err.to_string().contains("torn"), "{err}");

        // Unknown schema version.
        let vnext = r#"{"schema":"youtiao-plan-cache/v9","count":0,"entries":{}}"#;
        assert!(matches!(
            PlanCache::<u32>::from_json(vnext, 8).err().unwrap(),
            CacheLoadError::BadSchema(_)
        ));

        // Bad key and bad entry value.
        assert!(matches!(
            PlanCache::<u32>::from_json(r#"{"xyz":1}"#, 8)
                .err()
                .unwrap(),
            CacheLoadError::BadKey { .. }
        ));
        assert!(matches!(
            PlanCache::<u32>::from_json(r#"{"0000000000000001":"nope"}"#, 8)
                .err()
                .unwrap(),
            CacheLoadError::BadEntry { .. }
        ));
    }

    #[test]
    fn save_atomic_replaces_the_snapshot_in_place() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("youtiao-cache-test-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let cache: PlanCache<u32> = PlanCache::new(8);
        cache.insert(1, 10);
        cache.save_atomic(&path).unwrap();
        cache.insert(2, 20);
        cache.save_atomic(&path).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let back: PlanCache<u32> = PlanCache::from_json(&text, 8).unwrap();
        assert_eq!(back.len(), 2);
        // No temp file left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| {
                n.contains(&format!("youtiao-cache-test-{}", std::process::id()))
                    && n.contains(".tmp-")
            })
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn hit_rate_counts() {
        let cache: PlanCache<u32> = PlanCache::new(4);
        cache.insert(1, 1);
        cache.get(1);
        cache.get(2);
        let s = cache.stats();
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(
            CacheStats {
                hits: 0,
                misses: 0,
                evictions: 0,
                entries: 0,
                capacity: 1
            }
            .hit_rate(),
            0.0
        );
    }
}
