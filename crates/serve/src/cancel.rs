//! Cooperative cancellation with optional deadlines.
//!
//! A [`CancelToken`] is shared between the worker pool and the pipeline
//! it runs: the pool cancels it (shutdown, abort) or arms it with a
//! deadline, and the pipeline polls it at stage boundaries
//! (characterize → plan → tally → route) via [`CancelToken::checkpoint`].
//! Cancellation is therefore prompt at stage granularity without any
//! thread killing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The unit error returned by [`CancelToken::checkpoint`] once the token
/// is cancelled or past its deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("operation cancelled")
    }
}

impl std::error::Error for Cancelled {}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation flag with an optional deadline.
///
/// # Example
///
/// ```
/// use youtiao_serve::CancelToken;
///
/// let token = CancelToken::new();
/// assert!(token.checkpoint().is_ok());
/// token.cancel();
/// assert!(token.is_cancelled());
/// assert!(token.checkpoint().is_err());
///
/// let expired = CancelToken::with_deadline(std::time::Duration::ZERO);
/// assert!(expired.deadline_expired());
/// ```
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that only cancels explicitly.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that also cancels once `budget` has elapsed from now.
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Instant::now().checked_add(budget),
            }),
        }
    }

    /// A token with an optional budget; `None` behaves like [`Self::new`].
    pub fn with_optional_deadline(budget: Option<Duration>) -> Self {
        match budget {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        }
    }

    /// Cancels the token for every clone.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// `true` once cancelled explicitly or past the deadline.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst) || self.deadline_expired()
    }

    /// `true` once [`cancel`](Self::cancel) was called on any clone.
    /// Unlike [`is_cancelled`](Self::is_cancelled) this ignores the
    /// deadline, so the pool can tell an explicit abort apart from an
    /// expiry even when both have happened — the abort wins the
    /// `cancelled` vs. `timeout` classification.
    pub fn cancelled_explicitly(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// `true` when the token had a deadline and it has passed (explicit
    /// [`cancel`](Self::cancel) does not set this — the pool uses the
    /// distinction to report `timeout` vs. `cancelled`).
    pub fn deadline_expired(&self) -> bool {
        self.inner
            .deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
    }

    /// Stage-boundary poll: `Err(Cancelled)` once the token tripped.
    pub fn checkpoint(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
        assert!(!b.deadline_expired());
        assert_eq!(b.checkpoint(), Err(Cancelled));
    }

    #[test]
    fn zero_deadline_is_immediately_expired() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.deadline_expired());
        assert!(t.is_cancelled());
    }

    #[test]
    fn explicit_cancel_is_distinguishable_from_expiry() {
        let expired = CancelToken::with_deadline(Duration::ZERO);
        assert!(!expired.cancelled_explicitly());
        expired.cancel();
        assert!(expired.cancelled_explicitly());
        assert!(expired.deadline_expired(), "expiry is not erased by cancel");

        let plain = CancelToken::new();
        assert!(!plain.cancelled_explicitly());
        plain.clone().cancel();
        assert!(plain.cancelled_explicitly());
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let t = CancelToken::with_optional_deadline(Some(Duration::from_secs(3600)));
        assert!(t.checkpoint().is_ok());
        let t = CancelToken::with_optional_deadline(None);
        assert!(!t.deadline_expired());
    }
}
