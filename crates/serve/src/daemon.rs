//! The long-lived `youtiao serve` daemon session.
//!
//! [`run_daemon`] turns the batch machinery into an always-on service:
//! it reads newline-framed JSONL request frames ([`proto`](crate::proto))
//! from any [`BufRead`] — stdin or an accepted unix-socket connection —
//! dispatches design requests through the worker pool behind a
//! [`ShardedCache`], applies [`AdmissionController`] policy (bounded
//! queue, per-client caps, deadline-aware shedding), and writes one
//! JSON response line per frame. An in-band control plane (`ping`,
//! `stats`, `shutdown`) rides the same framing.
//!
//! # Determinism contract
//!
//! Responses are emitted in **request order** (a `BTreeMap` keyed by
//! arrival sequence buffers completions until their turn), and
//! duplicate in-flight content keys are **coalesced** — a design
//! request whose key is already being computed waits for that job and
//! is served from the cache, instead of racing it on another worker.
//! Together with canonical responses (run-dependent fields stripped,
//! see [`proto::design_response`](crate::proto::design_response)) this
//! makes an equal-seed session's output a pure function of its input:
//! byte-identical across worker counts and shard counts. Admission
//! *backpressure* only stalls intake, never alters bytes; *shedding*
//! is deterministic whenever the decision margin is pinned — an
//! [`OverloadBurst`](crate::fault::OverloadBurst)'s phantom depth
//! dwarfs real queue depth, or `est_ms` is 0 (shedding off).
//!
//! The batch-level `abort_after` fault does not apply to daemon
//! sessions (there is no batch to abort); the daemon-level faults are
//! `overload_burst`, `slow_client_ms`/`slow_client_every`, and
//! `shard_loss`.

use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::admission::{AdmissionConfig, AdmissionController};
use crate::batch::BatchError;
use crate::fault::{FaultInjector, FaultKind, FaultPlan};
use crate::job::{ErrorKind, ErrorRecord, JobRecord, JobStatus};
use crate::metrics::ServeMetrics;
use crate::pool::{Executor, PoolOptions, WorkerPool};
use crate::proto::{
    design_response, error_response, ping_response, shutdown_response, stats_response,
    DaemonRequest, FramedReader, OpKind,
};
use crate::request::{synthetic_drift, DesignRequest};
use crate::shard::{shard_file, ShardedCache};

/// Daemon session configuration.
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Worker threads; 0 means one per available core.
    pub workers: usize,
    /// Intra-plan worker threads per job; 0 (the default) applies the
    /// oversubscription policy of
    /// [`effective_plan_threads`](crate::pool::effective_plan_threads):
    /// serial plans when the pool has more than one worker, one thread
    /// per core when it has exactly one. Explicit values override the
    /// policy. Plans — and therefore canonical transcripts — are
    /// byte-identical across all values.
    pub plan_threads: usize,
    /// Retries after the first attempt of transiently failing jobs.
    pub max_retries: u32,
    /// Default per-job deadline in milliseconds (`deadline_ms` on a
    /// request overrides it).
    pub deadline_ms: Option<u64>,
    /// Total plan-cache entry budget, split across shards.
    pub cache_capacity: usize,
    /// Cache shard count (min 1; 1 is the flat cache).
    pub shards: usize,
    /// Cache persistence root: shard `i` lives at
    /// [`shard_file`]`(path, i, shards)`.
    pub cache_path: Option<PathBuf>,
    /// Restart torn shards cold instead of failing the session.
    pub cache_salvage: bool,
    /// Emit canonical responses (run-dependent fields stripped), the
    /// byte-comparable mode. Default on.
    pub canonical: bool,
    /// Record a span trace per pooled job (feeds per-stage latency
    /// percentiles in the session metrics).
    pub trace: bool,
    /// Ask the executor to check plan invariants (honored by executors
    /// that consult it, like the facade's design executor).
    pub validate: bool,
    /// Seeded fault schedule (chaos sessions), including the
    /// daemon-level `overload_burst`, `slow_client_*` and `shard_loss`
    /// faults.
    pub faults: Option<FaultPlan>,
    /// Admission-control policy.
    pub admission: AdmissionConfig,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        DaemonOptions {
            workers: 0,
            plan_threads: 0,
            max_retries: 2,
            deadline_ms: None,
            cache_capacity: 1024,
            shards: 1,
            cache_path: None,
            cache_salvage: false,
            canonical: true,
            trace: false,
            validate: false,
            faults: None,
            admission: AdmissionConfig::default(),
        }
    }
}

/// What one daemon session did.
#[derive(Debug, Clone)]
pub struct DaemonReport {
    /// Aggregates over the session's design jobs, including per-shard
    /// and admission counters.
    pub metrics: ServeMetrics,
    /// Frames accepted (all ops, including malformed frames answered
    /// with an error response).
    pub requests: u64,
    /// Response lines written.
    pub responses: u64,
    /// Whether the session ended on an in-band `shutdown` (vs. EOF).
    pub shutdown: bool,
    /// Cache shards restarted cold by salvage at session start.
    pub salvaged_shards: usize,
}

/// A design job in flight: where its response goes once it completes.
struct PendingJob {
    seq: u64,
    rid: Option<String>,
    client: String,
    key: Option<u64>,
}

struct Session<'a, R> {
    options: &'a DaemonOptions,
    plan: FaultPlan,
    cache: &'a ShardedCache<R>,
    admission: AdmissionController,
    /// In-flight design jobs by pool index.
    meta: HashMap<usize, PendingJob>,
    /// Content keys currently being computed, for coalescing.
    in_flight_keys: HashMap<u64, usize>,
    /// Ready responses awaiting their turn, by arrival sequence.
    ready: BTreeMap<u64, String>,
    next_seq: u64,
    next_emit: u64,
    written: u64,
    design_index: usize,
    requests: u64,
    records: Vec<JobRecord<R>>,
    shutdown: bool,
}

impl<R: Clone + Serialize> Session<'_, R> {
    fn shard_tag(&self, key: u64) -> Option<usize> {
        (self.cache.shard_count() > 1).then(|| self.cache.shard_of(key))
    }

    /// Takes a completed pool record: releases admission, memoizes the
    /// result (unless a drift fault answered different inputs), and
    /// queues the response at the job's arrival sequence.
    fn absorb(&mut self, record: JobRecord<R>) {
        let Some(job) = self.meta.remove(&record.index) else {
            return;
        };
        self.admission.finish(&job.client);
        if let Some(key) = job.key {
            if self.in_flight_keys.get(&key) == Some(&record.index) {
                self.in_flight_keys.remove(&key);
            }
            if record.status == JobStatus::Ok {
                let drifted = (0..record.attempts)
                    .any(|a| self.plan.fault_at(record.index, a) == Some(FaultKind::Drift));
                if !drifted {
                    if let Some(result) = &record.result {
                        self.cache.insert(key, result.clone());
                    }
                }
            }
        }
        let record = record.with_shard(job.key.and_then(|k| self.shard_tag(k)));
        self.finish_design(record, job.seq, job.rid.as_ref());
    }

    /// Queues a design record's response and keeps the full record for
    /// metrics.
    fn finish_design(&mut self, record: JobRecord<R>, seq: u64, rid: Option<&String>) {
        let response = if self.options.canonical {
            design_response(&record.clone().canonical(), rid, true)
        } else {
            design_response(&record, rid, false)
        };
        self.records.push(record);
        self.ready.insert(seq, response);
    }

    /// Writes every response whose turn has come, applying the
    /// slow-client stall fault to the write side only.
    fn emit<W: Write>(&mut self, out: &mut W) -> std::io::Result<()> {
        let mut wrote = false;
        while let Some(line) = self.ready.remove(&self.next_emit) {
            if let Some(stall) = self.plan.slow_client_stall(self.written as usize) {
                std::thread::sleep(stall);
            }
            writeln!(out, "{line}")?;
            self.next_emit += 1;
            self.written += 1;
            wrote = true;
        }
        if wrote {
            out.flush()?;
        }
        Ok(())
    }
}

/// Runs one daemon session over a caller-owned sharded cache: frames
/// in, responses out, until an in-band `shutdown` or input EOF. All
/// in-flight work is drained and answered before the function returns;
/// the `shutdown` acknowledgement is always the session's last line.
pub fn run_daemon_session<R, In, Out>(
    executor: Executor<DesignRequest, R>,
    options: &DaemonOptions,
    cache: &ShardedCache<R>,
    input: In,
    output: &mut Out,
) -> Result<DaemonReport, BatchError>
where
    R: Clone + Send + Serialize + 'static,
    In: BufRead + Send + 'static,
    Out: Write,
{
    let started = Instant::now();
    let plan = options.faults.clone().unwrap_or_default();
    let injector = FaultInjector::new(plan.clone());
    let chaos = injector.wrap_with(
        executor,
        Arc::new(|request: &DesignRequest, seed: u64| synthetic_drift(request, seed)),
    );
    let pool_options = PoolOptions {
        workers: options.workers,
        max_retries: options.max_retries,
        deadline: options.deadline_ms.map(Duration::from_millis),
        trace: options.trace,
    };
    let workers = pool_options.effective_workers();
    let mut pool: WorkerPool<DesignRequest, R> = WorkerPool::new(chaos, pool_options);

    // A reader thread turns the (possibly blocking) input into a
    // channel, so the session loop can interleave frame intake with
    // result draining — required for in-order emission to half-duplex
    // clients that write their whole session before reading.
    let (frame_tx, frame_rx) = mpsc::channel();
    std::thread::spawn(move || {
        for frame in FramedReader::new(input) {
            let stop = frame.is_err();
            if frame_tx.send(frame).is_err() || stop {
                break;
            }
        }
    });

    let mut session = Session {
        options,
        plan,
        cache,
        admission: AdmissionController::new(options.admission, workers),
        meta: HashMap::new(),
        in_flight_keys: HashMap::new(),
        ready: BTreeMap::new(),
        next_seq: 0,
        next_emit: 0,
        written: 0,
        design_index: 0,
        requests: 0,
        records: Vec::new(),
        shutdown: false,
    };
    let mut input_done = false;

    let outcome: Result<(), BatchError> = loop {
        while let Ok(record) = pool.results().try_recv() {
            session.absorb(record);
        }
        if let Err(e) = session.emit(output) {
            break Err(BatchError::Io(e));
        }
        if session.shutdown || input_done {
            if session.meta.is_empty() {
                break Ok(());
            }
            match pool.results().recv_timeout(Duration::from_millis(50)) {
                Ok(record) => session.absorb(record),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break Ok(()),
            }
            continue;
        }
        match frame_rx.recv_timeout(Duration::from_millis(1)) {
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => input_done = true,
            Ok(Err(e)) => break Err(BatchError::Io(e)),
            Ok(Ok(frame)) => {
                session.requests += 1;
                let seq = session.next_seq;
                session.next_seq += 1;
                if let Err(e) = handle_frame(&mut session, &mut pool, seq, &frame, output) {
                    break Err(e);
                }
            }
        }
    };

    if outcome.is_err() {
        pool.abort();
    }
    for record in pool.join() {
        session.absorb(record);
    }
    outcome?;
    session.emit(output).map_err(BatchError::Io)?;

    let shard_stats = cache.shard_stats();
    let mut metrics =
        ServeMetrics::from_records(&session.records, started.elapsed(), Some(cache.stats()))
            .with_admission(session.admission.stats())
            .with_faults(injector.counters());
    if cache.shard_count() > 1 {
        metrics = metrics.with_shards(&session.records, &shard_stats);
    }
    Ok(DaemonReport {
        metrics,
        requests: session.requests,
        responses: session.written,
        shutdown: session.shutdown,
        salvaged_shards: 0,
    })
}

/// Dispatches one accepted frame.
fn handle_frame<R, Out>(
    session: &mut Session<'_, R>,
    pool: &mut WorkerPool<DesignRequest, R>,
    seq: u64,
    frame: &crate::proto::Frame,
    output: &mut Out,
) -> Result<(), BatchError>
where
    R: Clone + Send + Serialize + 'static,
    Out: Write,
{
    let request: DaemonRequest = match serde_json::from_str(&frame.text) {
        Ok(request) => request,
        Err(e) => {
            session.ready.insert(
                seq,
                error_response(None, frame.line, &format!("bad frame: {e}")),
            );
            return Ok(());
        }
    };
    let rid = request.rid.clone();
    match request.op_kind() {
        Err(message) => {
            session
                .ready
                .insert(seq, error_response(rid.as_ref(), frame.line, &message));
        }
        Ok(OpKind::Ping) => {
            session.ready.insert(seq, ping_response(rid.as_ref()));
        }
        Ok(OpKind::Stats) => {
            let response = stats_response(
                rid.as_ref(),
                session.requests,
                &session.admission.stats(),
                &session.cache.stats(),
                session.admission.in_flight(),
                session.options.canonical,
            );
            session.ready.insert(seq, response);
        }
        Ok(OpKind::Shutdown) => {
            // The ack sits at the highest sequence so far; in-order
            // emission makes it the session's last line after every
            // in-flight design drains.
            session.shutdown = true;
            session.ready.insert(seq, shutdown_response(rid.as_ref()));
        }
        Ok(OpKind::Design) => {
            handle_design(session, pool, seq, frame, &request, output)?;
        }
    }
    Ok(())
}

/// Admits, coalesces, sheds, or answers one design frame.
fn handle_design<R, Out>(
    session: &mut Session<'_, R>,
    pool: &mut WorkerPool<DesignRequest, R>,
    seq: u64,
    frame: &crate::proto::Frame,
    request: &DaemonRequest,
    output: &mut Out,
) -> Result<(), BatchError>
where
    R: Clone + Send + Serialize + 'static,
    Out: Write,
{
    let rid = request.rid.clone();
    let Some(payload) = &request.request else {
        session.ready.insert(
            seq,
            error_response(rid.as_ref(), frame.line, "design frame missing `request`"),
        );
        return Ok(());
    };
    let design: DesignRequest = match serde_json::from_value(payload) {
        Ok(design) => design,
        Err(e) => {
            session.ready.insert(
                seq,
                error_response(rid.as_ref(), frame.line, &format!("bad request: {e}")),
            );
            return Ok(());
        }
    };

    let index = session.design_index;
    session.design_index += 1;
    let id = design.display_id(index);
    let key = match design.cache_key() {
        Ok(key) => key,
        Err(e) => {
            // The chip half does not resolve: answer without occupying
            // a worker, exactly like the batch front-end.
            let record = JobRecord::error(
                index,
                id,
                ErrorRecord {
                    kind: ErrorKind::InvalidRequest,
                    message: e.to_string(),
                },
                0,
                0.0,
            );
            session.finish_design(record, seq, rid.as_ref());
            return Ok(());
        }
    };

    // Coalesce: if this key is already being computed, wait for that
    // job instead of racing a duplicate on another worker. This is
    // what keeps cache behaviour — and therefore canonical output —
    // independent of the worker count.
    loop {
        if let Some(result) = session.cache.get(key) {
            let record = JobRecord::ok(index, id, result, 0, 0.0)
                .from_cache()
                .with_shard(session.shard_tag(key));
            session.finish_design(record, seq, rid.as_ref());
            return Ok(());
        }
        if !session.in_flight_keys.contains_key(&key) || session.meta.is_empty() {
            break;
        }
        if let Ok(record) = pool.results().recv_timeout(Duration::from_millis(50)) {
            session.absorb(record);
        }
        session.emit(output).map_err(BatchError::Io)?;
    }

    // Deadline-aware shedding: refuse work whose deadline cannot be
    // met at the current (real + phantom) queue depth. The message
    // carries no depth estimate — that would leak real timing into
    // canonical output.
    let deadline_ms = design.deadline_ms.or(session.options.deadline_ms);
    let phantom = session.plan.overload_phantom(index);
    if session
        .admission
        .should_shed(deadline_ms, phantom)
        .is_some()
    {
        session.admission.note_shed();
        let record = JobRecord::error(
            index,
            id,
            ErrorRecord {
                kind: ErrorKind::Shed,
                message: format!(
                    "deadline of {} ms infeasible at current queue depth",
                    deadline_ms.unwrap_or(0)
                ),
            },
            0,
            0.0,
        );
        session.finish_design(record, seq, rid.as_ref());
        return Ok(());
    }

    // Backpressure: a full queue or a client over its in-flight cap
    // stalls intake until completions free a slot. Never changes what
    // the request computes — only when.
    let client = request.client_name().to_string();
    while session.admission.would_block(&client) && !session.meta.is_empty() {
        session.admission.note_backpressure();
        if let Ok(record) = pool.results().recv_timeout(Duration::from_millis(50)) {
            session.absorb(record);
        }
        session.emit(output).map_err(BatchError::Io)?;
    }

    session.admission.begin(&client);
    session.in_flight_keys.insert(key, index);
    session.meta.insert(
        index,
        PendingJob {
            seq,
            rid,
            client,
            key: Some(key),
        },
    );
    let deadline = design.deadline_ms.map(Duration::from_millis);
    pool.submit(index, id, design, deadline);
    Ok(())
}

/// [`run_daemon_session`] plus cache lifecycle: applies the
/// `shard_loss` fault, loads the sharded cache from
/// `options.cache_path` (salvaging torn shards when opted in), runs
/// the session, and persists every shard back.
pub fn run_daemon<R, In, Out>(
    executor: Executor<DesignRequest, R>,
    options: &DaemonOptions,
    input: In,
    output: &mut Out,
) -> Result<DaemonReport, BatchError>
where
    R: Clone + Send + Serialize + Deserialize + 'static,
    In: BufRead + Send + 'static,
    Out: Write,
{
    let shards = options.shards.max(1);
    let (cache, salvaged) = match &options.cache_path {
        Some(path) => {
            if let Some(lost) = options.faults.as_ref().and_then(|plan| plan.shard_loss) {
                let _ = std::fs::remove_file(shard_file(path, lost, shards));
            }
            ShardedCache::load(path, shards, options.cache_capacity, options.cache_salvage)
                .map_err(|e| BatchError::Cache(e.to_string()))?
        }
        None => (ShardedCache::new(shards, options.cache_capacity), 0),
    };
    let mut report = run_daemon_session(executor, options, &cache, input, output)?;
    report.salvaged_shards = salvaged;
    if let Some(path) = &options.cache_path {
        cache.save_atomic(path)?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ExecError;
    use crate::request::ChipRequest;
    use serde::Value;
    use std::io::Cursor;

    /// The batch tests' cheap executor: "result" is the qubit count.
    fn counting_executor() -> Executor<DesignRequest, u64> {
        Arc::new(|request: &DesignRequest, ctx| {
            ctx.cancel
                .checkpoint()
                .map_err(|_| ExecError::cancelled())?;
            let chip = request
                .chip
                .build()
                .map_err(|e| ExecError::permanent(ErrorKind::InvalidRequest, e.to_string()))?;
            Ok(chip.num_qubits() as u64)
        })
    }

    fn design_line(rows: usize, rid: &str) -> String {
        format!(
            r#"{{"op":"design","rid":"{rid}","request":{{"chip":{{"topology":"square","rows":{rows},"cols":3}}}}}}"#
        )
    }

    fn run_session(input: &str, options: &DaemonOptions) -> (Vec<String>, DaemonReport) {
        let cache = ShardedCache::new(options.shards, options.cache_capacity);
        let mut out = Vec::new();
        let report = run_daemon_session(
            counting_executor(),
            options,
            &cache,
            Cursor::new(input.to_string()),
            &mut out,
        )
        .unwrap();
        let lines = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        (lines, report)
    }

    #[test]
    fn session_answers_in_request_order_and_acks_shutdown_last() {
        let input = format!(
            "{}\n{}\n{}\n{}\n{}\n",
            r#"{"op":"ping","rid":"p1"}"#,
            design_line(2, "d1"),
            design_line(3, "d2"),
            r#"{"op":"stats","rid":"s1"}"#,
            r#"{"op":"shutdown","rid":"bye"}"#,
        );
        let (lines, report) = run_session(&input, &DaemonOptions::default());
        assert_eq!(lines.len(), 5);
        let ops: Vec<String> = lines
            .iter()
            .map(|l| {
                serde_json::from_str::<Value>(l).unwrap()["op"]
                    .as_str()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(ops, ["ping", "design", "design", "stats", "shutdown"]);
        let d1: Value = serde_json::from_str(&lines[1]).unwrap();
        assert_eq!(d1["rid"], "d1");
        assert_eq!(d1["result"], 6);
        let stats: Value = serde_json::from_str(&lines[3]).unwrap();
        assert_eq!(stats["requests"], 4, "stats counts frames seen so far");
        assert!(report.shutdown);
        assert_eq!(report.requests, 5);
        assert_eq!(report.responses, 5);
        assert_eq!(report.metrics.jobs, 2);
        assert_eq!(report.metrics.admission.admitted, 2);
    }

    #[test]
    fn eof_ends_the_session_after_draining() {
        let input = format!("{}\n{}\n", design_line(2, "a"), design_line(2, "b"));
        let (lines, report) = run_session(&input, &DaemonOptions::default());
        assert_eq!(lines.len(), 2);
        assert!(!report.shutdown, "EOF is not an in-band shutdown");
        // The duplicate was coalesced or served from cache; either way
        // both carry the same result.
        for line in &lines {
            let v: Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["result"], 6);
        }
        assert_eq!(report.metrics.ok, 2);
    }

    #[test]
    fn bad_frames_and_bad_requests_get_error_responses_in_order() {
        let input = format!(
            "not json\n{}\n{}\n{}\n",
            r#"{"op":"reboot","rid":"r"}"#,
            r#"{"op":"design","rid":"x"}"#,
            r#"{"op":"design","rid":"k","request":{"chip":{"topology":"klein-bottle"}}}"#,
        );
        let (lines, report) = run_session(&input, &DaemonOptions::default());
        assert_eq!(lines.len(), 4);
        let v: Value = serde_json::from_str(&lines[0]).unwrap();
        assert_eq!(v["op"], "error");
        assert_eq!(v["line"], 1);
        let v: Value = serde_json::from_str(&lines[1]).unwrap();
        assert!(v["error"].as_str().unwrap().contains("reboot"));
        assert_eq!(v["rid"], "r");
        let v: Value = serde_json::from_str(&lines[2]).unwrap();
        assert!(v["error"].as_str().unwrap().contains("missing `request`"));
        // An unresolvable chip is a design *record*, not a protocol error.
        let v: Value = serde_json::from_str(&lines[3]).unwrap();
        assert_eq!(v["op"], "design");
        assert_eq!(v["status"], "Error");
        assert_eq!(v["error"]["kind"], "InvalidRequest");
        assert_eq!(report.metrics.jobs, 1);
        assert_eq!(report.metrics.errors, 1);
    }

    #[test]
    fn equal_seed_sessions_are_byte_identical_across_workers_and_shards() {
        // 12 designs over 3 distinct chips (duplicates exercise the
        // coalescing path) plus interleaved control frames.
        let mut input = String::new();
        for i in 0..12 {
            input.push_str(&design_line(2 + i % 3, &format!("d{i}")));
            input.push('\n');
            if i == 5 {
                input.push_str("{\"op\":\"stats\",\"rid\":\"mid\"}\n");
            }
        }
        input.push_str("{\"op\":\"shutdown\"}\n");

        let mut outputs = Vec::new();
        for (workers, shards) in [(1usize, 1usize), (4, 1), (1, 8), (4, 8), (2, 3)] {
            let options = DaemonOptions {
                workers,
                shards,
                faults: Some(FaultPlan::smoke(2)),
                ..DaemonOptions::default()
            };
            let (lines, _) = run_session(&input, &options);
            outputs.push((workers, shards, lines.join("\n")));
        }
        let (_, _, reference) = &outputs[0];
        for (workers, shards, output) in &outputs[1..] {
            assert_eq!(
                output, reference,
                "canonical session diverged at workers={workers} shards={shards}"
            );
        }
    }

    #[test]
    fn non_canonical_responses_carry_run_fields_and_shard_tags() {
        let input = format!("{}\n{}\n", design_line(2, "a"), design_line(2, "b"));
        let options = DaemonOptions {
            canonical: false,
            shards: 4,
            workers: 1,
            ..DaemonOptions::default()
        };
        let (lines, report) = run_session(&input, &options);
        let first: Value = serde_json::from_str(&lines[0]).unwrap();
        assert_eq!(first["cache_hit"], false);
        assert_eq!(first["attempts"], 1);
        assert!(first.get("shard").is_some(), "sharded runs tag the shard");
        let second: Value = serde_json::from_str(&lines[1]).unwrap();
        assert_eq!(second["cache_hit"], true, "duplicate served from cache");
        assert_eq!(second["attempts"], 0);
        assert_eq!(second["shard"], first["shard"]);
        assert_eq!(report.metrics.shards.len(), 4);
        let jobs: usize = report.metrics.shards.iter().map(|s| s.jobs).sum();
        assert_eq!(jobs, 2);
    }

    #[test]
    fn overload_burst_sheds_deterministically() {
        // est 10ms over 2 workers with 60s deadlines: nothing sheds on
        // real depth, but the burst's million phantom jobs shed indices
        // 3..7 regardless of scheduling. Chips are all distinct — a
        // duplicate is served from cache before the shed check, which
        // is always deadline-feasible.
        let mut input = String::new();
        for i in 0..12 {
            input.push_str(&format!(
                r#"{{"op":"design","rid":"d{i}","request":{{"chip":{{"topology":"square","rows":{},"cols":3}},"deadline_ms":60000}}}}"#,
                2 + i
            ));
            input.push('\n');
        }
        let options = DaemonOptions {
            workers: 2,
            admission: AdmissionConfig {
                max_queue: 64,
                client_inflight: 0,
                est_ms: 10.0,
            },
            faults: Some(FaultPlan {
                overload_burst: Some(crate::fault::OverloadBurst {
                    start: Some(3),
                    count: Some(4),
                    extra: Some(1_000_000),
                }),
                ..FaultPlan::default()
            }),
            ..DaemonOptions::default()
        };
        let (lines, report) = run_session(&input, &options);
        let (lines_again, _) = run_session(&input, &options);
        assert_eq!(lines, lines_again, "pinned overload is reproducible");
        assert_eq!(report.metrics.admission.shed, 4);
        for (i, line) in lines.iter().enumerate() {
            let v: Value = serde_json::from_str(line).unwrap();
            if (3..7).contains(&i) {
                assert_eq!(v["error"]["kind"], "Shed", "index {i}");
                assert!(v["error"]["message"]
                    .as_str()
                    .unwrap()
                    .contains("infeasible"));
            } else {
                assert_eq!(v["status"], "Ok", "index {i}: {v}");
            }
        }
    }

    #[test]
    fn client_inflight_cap_backpressures_without_changing_output() {
        let mut input = String::new();
        for i in 0..8 {
            input.push_str(&design_line(2 + i % 3, &format!("d{i}")));
            input.push('\n');
        }
        let capped = DaemonOptions {
            workers: 4,
            admission: AdmissionConfig {
                max_queue: 64,
                client_inflight: 1,
                est_ms: 0.0,
            },
            ..DaemonOptions::default()
        };
        let (capped_lines, capped_report) = run_session(&input, &capped);
        let (free_lines, free_report) = run_session(&input, &DaemonOptions::default());
        assert_eq!(capped_lines, free_lines, "backpressure never alters bytes");
        assert!(
            capped_report.metrics.admission.backpressure_waits > 0,
            "the cap actually stalled intake"
        );
        assert_eq!(free_report.metrics.admission.backpressure_waits, 0);
        assert!(capped_report.metrics.admission.max_in_flight <= 1);
    }

    #[test]
    fn daemon_cache_persists_and_survives_single_shard_loss() {
        let path = std::env::temp_dir().join(format!(
            "youtiao-daemon-test-{}.cache.json",
            std::process::id()
        ));
        let shards = 4usize;
        for index in 0..shards {
            let _ = std::fs::remove_file(shard_file(&path, index, shards));
        }
        let mut input = String::new();
        for i in 0..6 {
            input.push_str(&design_line(2 + i, &format!("d{i}")));
            input.push('\n');
        }
        let options = DaemonOptions {
            shards,
            cache_path: Some(path.clone()),
            canonical: false,
            ..DaemonOptions::default()
        };
        let run = |options: &DaemonOptions| {
            let mut out = Vec::new();
            let report = run_daemon(
                counting_executor(),
                options,
                Cursor::new(input.clone()),
                &mut out,
            )
            .unwrap();
            (String::from_utf8(out).unwrap(), report)
        };

        let (_, cold) = run(&options);
        assert_eq!(cold.metrics.cache_hits, 0);
        let (_, warm) = run(&options);
        assert_eq!(warm.metrics.cache_hits, 6, "all six keys persisted");

        // Lose one shard via the fault plan: only its keys recompute.
        let keys: Vec<u64> = (0..6)
            .map(|i| {
                let mut r = DesignRequest::new(ChipRequest::grid("square", 2 + i, 3));
                r.id = Some(format!("d{i}"));
                r.cache_key().unwrap()
            })
            .collect();
        let lost_shard = crate::shard::shard_of_key(keys[0], shards);
        let lost = keys
            .iter()
            .filter(|k| crate::shard::shard_of_key(**k, shards) == lost_shard)
            .count() as u64;
        assert!(lost > 0, "the lost shard holds at least the first key");
        let lossy = DaemonOptions {
            faults: Some(FaultPlan {
                shard_loss: Some(lost_shard),
                ..FaultPlan::default()
            }),
            ..options.clone()
        };
        let (_, after_loss) = run(&lossy);
        assert_eq!(after_loss.metrics.cache_hits, 6 - lost);
        assert_eq!(after_loss.metrics.cache_misses, lost);

        for index in 0..shards {
            let _ = std::fs::remove_file(shard_file(&path, index, shards));
        }
    }
}
