//! Deterministic, seeded fault injection for the serving layer.
//!
//! A [`FaultPlan`] is a serde-defined schedule of failures: per-attempt
//! rates for transient errors, permanent errors, executor panics,
//! injected delays (which force deadline expiry) and self-cancellation,
//! plus batch-level faults — a mid-run [`abort_after`](FaultPlan)
//! threshold and a [`CacheFault`] that mangles the persisted plan-cache
//! file. A [`FaultInjector`] wraps any [`Executor`] with the plan and
//! counts what it injected in [`FaultCounters`].
//!
//! The daemon tier adds three more session-level faults, following the
//! `abort_after`/`cache_fault` field precedent rather than the
//! per-attempt schedule (they perturb the *service*, not an attempt):
//! an [`overload_burst`](FaultPlan) that injects phantom queue depth
//! into admission control over a fixed request range (so shed/accept
//! outcomes are pure functions of the plan, independent of real
//! timing), a [`slow_client_ms`](FaultPlan) stall before response
//! writes (exercising backpressure without touching computed bytes),
//! and a [`shard_loss`](FaultPlan) that deletes one cache shard's
//! persistence file before the session loads.
//!
//! # Determinism contract
//!
//! Whether attempt `a` of job `i` faults — and how — is the pure
//! function [`FaultPlan::fault_at`]`(i, a)`: a splitmix64 hash of
//! `(seed, i, a)` mapped to a unit float and compared against the
//! cumulative fault rates, in the fixed order *transient, permanent,
//! panic, delay, cancel, drift* (new kinds append, so a plan that
//! leaves them at rate 0 keeps its historical schedule bit-for-bit).
//! No wall clock, thread id or queue order
//! enters the schedule, so the same seed over the same batch always
//! injects the same faults into the same attempts — and with canonical
//! record emission (latency zeroed, traces dropped) two equal-seed
//! chaos runs produce byte-identical record streams after an index
//! sort. Tests exploit the same property in reverse: given the plan
//! they recompute each job's expected outcome and compare it against
//! the pool's actual record.
//!
//! Two faults are deliberately outside the byte-identical contract:
//! `abort_after` (which jobs are still queued when the abort lands
//! depends on scheduling) and `Delay` raced against a deadline of
//! similar magnitude. Plans that want reproducible *outcomes* from
//! delays pick `delay_ms` well past the deadline, so every delayed job
//! deterministically times out.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::job::{ErrorKind, ExecError};
use crate::pool::Executor;

/// What a scheduled per-attempt fault does to the executor call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FaultKind {
    /// Fail the attempt with a transient [`ExecError`] (the pool
    /// retries it, so a job can fault and still succeed).
    Transient,
    /// Fail the attempt with a permanent [`ExecError`].
    Permanent,
    /// Panic inside the executor (the pool must contain it).
    Panic,
    /// Sleep for [`FaultPlan::delay_ms`] before running the real
    /// executor, so an armed deadline expires mid-attempt.
    Delay,
    /// Cancel the job's own token, as an abort would.
    Cancel,
    /// Mutate the request before running the real executor — a
    /// mid-batch input drift (e.g. a crosstalk-calibration shift) that
    /// exercises the warm repair path. The mutation is a pure function
    /// of the schedule, so the drifted result is itself deterministic;
    /// injectors wrapped without a mutator ([`FaultInjector::wrap`])
    /// count the fault and run the request unchanged.
    Drift,
}

impl FaultKind {
    /// Wire name of the variant, matching the serialized form.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::Transient => "Transient",
            FaultKind::Permanent => "Permanent",
            FaultKind::Panic => "Panic",
            FaultKind::Delay => "Delay",
            FaultKind::Cancel => "Cancel",
            FaultKind::Drift => "Drift",
        }
    }
}

/// A deterministic overload wave for the daemon's admission control:
/// design requests whose session index falls in `[start, start+count)`
/// see `extra` phantom jobs ahead of them in the queue. Phantom depth
/// sheds exactly like real depth, so a plan with an extreme `extra`
/// pins shed/accept outcomes regardless of real scheduling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct OverloadBurst {
    /// First design-request index hit by the burst. Default 0.
    pub start: Option<usize>,
    /// How many consecutive design requests the burst covers. Default 0
    /// (off).
    pub count: Option<usize>,
    /// Phantom jobs injected ahead of each covered request. Default 0.
    pub extra: Option<usize>,
}

impl OverloadBurst {
    /// Phantom queue depth this burst injects for design request
    /// `index` (0 outside the burst window).
    pub fn phantom(&self, index: usize) -> usize {
        let start = self.start.unwrap_or(0);
        let count = self.count.unwrap_or(0);
        if index >= start && index < start.saturating_add(count) {
            self.extra.unwrap_or(0)
        } else {
            0
        }
    }
}

/// Corruption applied to a persisted cache file (torn-write simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CacheFault {
    /// Keep only the first half of the file — a write that died midway.
    Truncate,
    /// Overwrite the first byte with garbage — bit rot / a torn sector.
    Corrupt,
}

/// A seeded fault schedule. All fields are optional in JSON; a missing
/// field means "off" (rate 0) or its documented default, so `{}` is the
/// no-fault plan.
///
/// # Example
///
/// ```
/// use youtiao_serve::FaultPlan;
///
/// let plan: FaultPlan =
///     serde_json::from_str(r#"{"seed": 7, "transient_rate": 1.0}"#).unwrap();
/// plan.validate().unwrap();
/// assert_eq!(plan.seed(), 7);
/// assert!(plan.fault_at(0, 0).is_some());
/// assert_eq!(plan.fault_at(0, 0), plan.fault_at(0, 0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    /// Schedule seed; equal seeds give equal schedules. Default 0.
    pub seed: Option<u64>,
    /// Probability an attempt fails with a transient error.
    pub transient_rate: Option<f64>,
    /// Probability an attempt fails with a permanent error.
    pub permanent_rate: Option<f64>,
    /// Probability an attempt panics.
    pub panic_rate: Option<f64>,
    /// Probability an attempt is delayed by [`Self::delay_ms`].
    pub delay_rate: Option<f64>,
    /// Injected delay length, milliseconds. Default 100.
    pub delay_ms: Option<u64>,
    /// Probability an attempt cancels its own job.
    pub cancel_rate: Option<f64>,
    /// Probability an attempt's request is drifted before execution.
    pub drift_rate: Option<f64>,
    /// Abort the pool after this many pooled records complete, leaving
    /// the rest to finish as `Cancelled` records.
    pub abort_after: Option<usize>,
    /// Mangle the persisted cache file before loading it.
    pub cache_fault: Option<CacheFault>,
    /// Inject phantom queue depth into daemon admission control over a
    /// fixed design-request range.
    pub overload_burst: Option<OverloadBurst>,
    /// Stall this many milliseconds before daemon response writes — a
    /// client that reads slowly. Default 0 (off).
    pub slow_client_ms: Option<u64>,
    /// Apply the slow-client stall to every Nth response (1 = all).
    pub slow_client_every: Option<usize>,
    /// Delete this cache shard's persistence file before the daemon
    /// session loads its cache (shard-loss simulation).
    pub shard_loss: Option<usize>,
}

impl FaultPlan {
    /// A plan that injects nothing (same as `Default`).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A small high-rate preset for smoke tests: over even a handful of
    /// jobs it reliably injects transient errors (some of which retry
    /// into successes), permanent errors, panics and cancellations.
    pub fn smoke(seed: u64) -> Self {
        FaultPlan {
            seed: Some(seed),
            transient_rate: Some(0.35),
            permanent_rate: Some(0.15),
            panic_rate: Some(0.10),
            cancel_rate: Some(0.10),
            ..FaultPlan::default()
        }
    }

    /// Schedule seed (default 0).
    pub fn seed(&self) -> u64 {
        self.seed.unwrap_or(0)
    }

    /// Transient-error rate (default 0).
    pub fn transient_rate(&self) -> f64 {
        self.transient_rate.unwrap_or(0.0)
    }

    /// Permanent-error rate (default 0).
    pub fn permanent_rate(&self) -> f64 {
        self.permanent_rate.unwrap_or(0.0)
    }

    /// Panic rate (default 0).
    pub fn panic_rate(&self) -> f64 {
        self.panic_rate.unwrap_or(0.0)
    }

    /// Delay rate (default 0).
    pub fn delay_rate(&self) -> f64 {
        self.delay_rate.unwrap_or(0.0)
    }

    /// Injected delay length in milliseconds (default 100).
    pub fn delay_ms(&self) -> u64 {
        self.delay_ms.unwrap_or(100)
    }

    /// Self-cancel rate (default 0).
    pub fn cancel_rate(&self) -> f64 {
        self.cancel_rate.unwrap_or(0.0)
    }

    /// Request-drift rate (default 0).
    pub fn drift_rate(&self) -> f64 {
        self.drift_rate.unwrap_or(0.0)
    }

    /// Phantom queue depth the overload burst injects for design
    /// request `index` (0 with no burst configured).
    pub fn overload_phantom(&self, index: usize) -> usize {
        self.overload_burst
            .as_ref()
            .map_or(0, |burst| burst.phantom(index))
    }

    /// The slow-client stall to apply before writing response number
    /// `seq` (0-based), or `None` when this response writes at speed.
    pub fn slow_client_stall(&self, seq: usize) -> Option<Duration> {
        let stall = self.slow_client_ms.unwrap_or(0);
        if stall == 0 {
            return None;
        }
        let every = self.slow_client_every.unwrap_or(1).max(1);
        seq.is_multiple_of(every)
            .then(|| Duration::from_millis(stall))
    }

    /// Checks every rate is a probability and the rates sum to at most
    /// 1 (they partition the unit interval).
    pub fn validate(&self) -> Result<(), String> {
        let rates = [
            ("transient_rate", self.transient_rate()),
            ("permanent_rate", self.permanent_rate()),
            ("panic_rate", self.panic_rate()),
            ("delay_rate", self.delay_rate()),
            ("cancel_rate", self.cancel_rate()),
            ("drift_rate", self.drift_rate()),
        ];
        let mut total = 0.0;
        for (name, rate) in rates {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("{name} must be in [0, 1], got {rate}"));
            }
            total += rate;
        }
        if total > 1.0 + 1e-12 {
            return Err(format!("fault rates sum to {total:.3}, must be <= 1"));
        }
        Ok(())
    }

    /// The schedule itself: which fault (if any) hits attempt `attempt`
    /// of job `index`. Pure in `(self.seed, index, attempt)` — see the
    /// module docs for the determinism contract.
    pub fn fault_at(&self, index: usize, attempt: u32) -> Option<FaultKind> {
        let mixed = splitmix64(
            self.seed()
                .wrapping_add(splitmix64(index as u64).rotate_left(17))
                .wrapping_add(splitmix64(attempt as u64 ^ 0xa5a5_5a5a)),
        );
        // 53 uniform bits -> [0, 1).
        let u = (mixed >> 11) as f64 / (1u64 << 53) as f64;
        let mut edge = 0.0;
        for (rate, kind) in [
            (self.transient_rate(), FaultKind::Transient),
            (self.permanent_rate(), FaultKind::Permanent),
            (self.panic_rate(), FaultKind::Panic),
            (self.delay_rate(), FaultKind::Delay),
            (self.cancel_rate(), FaultKind::Cancel),
            (self.drift_rate(), FaultKind::Drift),
        ] {
            edge += rate;
            if u < edge {
                return Some(kind);
            }
        }
        None
    }
}

/// splitmix64 — a strong, cheap 64-bit mixer (Steele et al.), the same
/// finalizer the planner's seeded RNG family uses. Shared with the
/// request module's deterministic drift synthesis.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Counts of faults actually injected during a run, by kind. Included
/// in [`ServeMetrics`](crate::ServeMetrics) for chaos runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FaultCounters {
    /// Transient errors injected.
    pub transient: u64,
    /// Permanent errors injected.
    pub permanent: u64,
    /// Panics injected.
    pub panics: u64,
    /// Delays injected.
    pub delays: u64,
    /// Self-cancellations injected.
    pub cancels: u64,
    /// Request drifts injected.
    pub drifts: u64,
}

impl FaultCounters {
    /// Total faults injected across all kinds.
    pub fn total(&self) -> u64 {
        self.transient + self.permanent + self.panics + self.delays + self.cancels + self.drifts
    }
}

#[derive(Default)]
struct AtomicCounters {
    transient: AtomicU64,
    permanent: AtomicU64,
    panics: AtomicU64,
    delays: AtomicU64,
    cancels: AtomicU64,
    drifts: AtomicU64,
}

/// A deterministic request mutation for `Drift` faults: maps the
/// original job plus a schedule-derived seed to the drifted job.
pub type RequestMutator<J> = Arc<dyn Fn(&J, u64) -> J + Send + Sync>;

/// Applies a [`FaultPlan`] to executors: [`wrap`](Self::wrap) produces
/// a chaos executor that injects the scheduled faults around the real
/// one and counts what it injected.
///
/// Cloning shares the counters, so the wrapped executor (moved into the
/// pool's threads) and the caller observe the same totals.
#[derive(Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    counters: Arc<AtomicCounters>,
}

impl FaultInjector {
    /// An injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            counters: Arc::new(AtomicCounters::default()),
        }
    }

    /// The plan this injector schedules from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Snapshot of the injected-fault counters.
    pub fn counters(&self) -> FaultCounters {
        FaultCounters {
            transient: self.counters.transient.load(Ordering::Relaxed),
            permanent: self.counters.permanent.load(Ordering::Relaxed),
            panics: self.counters.panics.load(Ordering::Relaxed),
            delays: self.counters.delays.load(Ordering::Relaxed),
            cancels: self.counters.cancels.load(Ordering::Relaxed),
            drifts: self.counters.drifts.load(Ordering::Relaxed),
        }
    }

    /// Wraps `inner` with the fault schedule: each attempt first
    /// consults [`FaultPlan::fault_at`] for the job's index and attempt
    /// number, injects the scheduled fault (recording a `"fault"` trace
    /// event), and only reaches `inner` when the schedule says run.
    /// Scheduled `Drift` faults are counted but leave the job unchanged
    /// — use [`wrap_with`](Self::wrap_with) to supply the mutation.
    pub fn wrap<J, R>(&self, inner: Executor<J, R>) -> Executor<J, R>
    where
        J: 'static,
        R: 'static,
    {
        self.wrap_inner(inner, None)
    }

    /// [`wrap`](Self::wrap) plus a request mutator for `Drift` faults:
    /// when the schedule says an attempt drifts, the job passed to
    /// `inner` is `mutator(job, drift_seed)`, where `drift_seed` is a
    /// pure function of `(plan seed, index, attempt)` — so the mutation
    /// (and therefore the drifted result) is as deterministic as the
    /// schedule itself.
    pub fn wrap_with<J, R>(
        &self,
        inner: Executor<J, R>,
        mutator: RequestMutator<J>,
    ) -> Executor<J, R>
    where
        J: 'static,
        R: 'static,
    {
        self.wrap_inner(inner, Some(mutator))
    }

    fn wrap_inner<J, R>(
        &self,
        inner: Executor<J, R>,
        mutator: Option<RequestMutator<J>>,
    ) -> Executor<J, R>
    where
        J: 'static,
        R: 'static,
    {
        let injector = self.clone();
        Arc::new(move |job, ctx| {
            let Some(kind) = injector.plan.fault_at(ctx.index, ctx.attempt) else {
                return inner(job, ctx);
            };
            ctx.tracer.event(
                "fault",
                format!("injected {} (attempt {})", kind.as_str(), ctx.attempt),
            );
            match kind {
                FaultKind::Transient => {
                    injector.counters.transient.fetch_add(1, Ordering::Relaxed);
                    Err(ExecError::transient(
                        ErrorKind::Internal,
                        format!(
                            "injected transient fault (job {}, attempt {})",
                            ctx.index, ctx.attempt
                        ),
                    ))
                }
                FaultKind::Permanent => {
                    injector.counters.permanent.fetch_add(1, Ordering::Relaxed);
                    Err(ExecError::permanent(
                        ErrorKind::Internal,
                        format!(
                            "injected permanent fault (job {}, attempt {})",
                            ctx.index, ctx.attempt
                        ),
                    ))
                }
                FaultKind::Panic => {
                    injector.counters.panics.fetch_add(1, Ordering::Relaxed);
                    panic!(
                        "injected panic (job {}, attempt {})",
                        ctx.index, ctx.attempt
                    );
                }
                FaultKind::Delay => {
                    injector.counters.delays.fetch_add(1, Ordering::Relaxed);
                    // Sleep in slices so an armed deadline or an abort
                    // cuts the delay short instead of blocking a worker
                    // for the full budget.
                    let budget = Duration::from_millis(injector.plan.delay_ms());
                    let started = Instant::now();
                    while started.elapsed() < budget {
                        if ctx.cancel.is_cancelled() {
                            return Err(ExecError::cancelled());
                        }
                        let left = budget.saturating_sub(started.elapsed());
                        std::thread::sleep(left.min(Duration::from_millis(2)));
                    }
                    if ctx.cancel.is_cancelled() {
                        return Err(ExecError::cancelled());
                    }
                    inner(job, ctx)
                }
                FaultKind::Cancel => {
                    injector.counters.cancels.fetch_add(1, Ordering::Relaxed);
                    ctx.cancel.cancel();
                    Err(ExecError::cancelled())
                }
                FaultKind::Drift => {
                    injector.counters.drifts.fetch_add(1, Ordering::Relaxed);
                    match &mutator {
                        Some(mutator) => {
                            // Pure in (seed, index, attempt), decorrelated
                            // from fault_at's own hash by the tweak.
                            let drift_seed = splitmix64(
                                injector
                                    .plan
                                    .seed()
                                    .wrapping_add(splitmix64(ctx.index as u64 ^ 0xd21f_7d21))
                                    .wrapping_add(splitmix64(ctx.attempt as u64)),
                            );
                            inner(&mutator(job, drift_seed), ctx)
                        }
                        None => inner(job, ctx),
                    }
                }
            }
        })
    }
}

/// Mangles the file at `path` per `fault` — the torn-write / bit-rot
/// injection the crash-safe cache loader must reject cleanly.
pub fn apply_cache_fault(path: &std::path::Path, fault: CacheFault) -> std::io::Result<()> {
    let bytes = std::fs::read(path)?;
    let mangled = match fault {
        CacheFault::Truncate => bytes[..bytes.len() / 2].to_vec(),
        CacheFault::Corrupt => {
            let mut bytes = bytes;
            if let Some(first) = bytes.first_mut() {
                *first = b'@';
            }
            bytes
        }
    };
    std::fs::write(path, mangled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{AttemptCtx, PoolOptions, WorkerPool};
    use crate::CancelToken;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan: FaultPlan = serde_json::from_str("{}").unwrap();
        plan.validate().unwrap();
        assert_eq!(plan.seed(), 0);
        for index in 0..50 {
            for attempt in 0..3 {
                assert_eq!(plan.fault_at(index, attempt), None);
            }
        }
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = FaultPlan {
            seed: Some(9),
            transient_rate: Some(0.25),
            cache_fault: Some(CacheFault::Truncate),
            abort_after: Some(3),
            ..FaultPlan::default()
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.cache_fault, Some(CacheFault::Truncate));
    }

    #[test]
    fn schedule_is_a_pure_function_of_seed_index_attempt() {
        let a = FaultPlan::smoke(42);
        let b = FaultPlan::smoke(42);
        let c = FaultPlan::smoke(43);
        let mut differs = false;
        for index in 0..200 {
            for attempt in 0..3 {
                assert_eq!(a.fault_at(index, attempt), b.fault_at(index, attempt));
                differs |= a.fault_at(index, attempt) != c.fault_at(index, attempt);
            }
        }
        assert!(differs, "different seeds produced identical schedules");
    }

    #[test]
    fn rates_partition_the_unit_interval() {
        let all = FaultPlan {
            transient_rate: Some(1.0),
            ..FaultPlan::default()
        };
        for index in 0..50 {
            assert_eq!(all.fault_at(index, 0), Some(FaultKind::Transient));
        }
        // Rates roughly govern frequency: with 30% transient the hit
        // count over 1000 slots lands well inside [200, 400].
        let third = FaultPlan {
            transient_rate: Some(0.3),
            ..FaultPlan::default()
        };
        let hits = (0..1000)
            .filter(|&i| third.fault_at(i, 0).is_some())
            .count();
        assert!((200..=400).contains(&hits), "{hits} hits");
    }

    #[test]
    fn validate_rejects_bad_rates() {
        let negative = FaultPlan {
            panic_rate: Some(-0.1),
            ..FaultPlan::default()
        };
        assert!(negative.validate().unwrap_err().contains("panic_rate"));
        let oversubscribed = FaultPlan {
            transient_rate: Some(0.7),
            permanent_rate: Some(0.7),
            ..FaultPlan::default()
        };
        assert!(oversubscribed.validate().unwrap_err().contains("sum"));
        FaultPlan::smoke(0).validate().unwrap();
    }

    #[test]
    fn wrapped_executor_matches_the_schedule_mirror() {
        // Inner executor always succeeds; therefore every record's
        // outcome is decided purely by the schedule, and we can mirror
        // it: walk attempts through fault_at exactly as the pool will.
        let plan = FaultPlan::smoke(7);
        let injector = FaultInjector::new(plan.clone());
        let executor: Executor<u32, u32> = injector.wrap(Arc::new(|n, _| Ok(*n)));
        let options = PoolOptions {
            workers: 4,
            max_retries: 2,
            ..Default::default()
        };
        let max_retries = options.max_retries;
        let mut pool = WorkerPool::new(executor, options);
        let jobs = 64usize;
        for index in 0..jobs {
            pool.submit(index, format!("j{index}"), index as u32, None);
        }
        let mut records = pool.join();
        records.sort_by_key(|r| r.index);
        assert_eq!(records.len(), jobs);

        for record in &records {
            // Mirror the retry loop: transient faults retry, everything
            // else is terminal. No deadline is armed, so Delay runs the
            // inner executor after sleeping.
            let mut attempt = 0u32;
            let expected = loop {
                match plan.fault_at(record.index, attempt) {
                    Some(FaultKind::Transient) if attempt < max_retries => attempt += 1,
                    Some(FaultKind::Transient) | Some(FaultKind::Permanent) => {
                        break Some(ErrorKind::Internal)
                    }
                    Some(FaultKind::Panic) => break Some(ErrorKind::Internal),
                    Some(FaultKind::Cancel) => break Some(ErrorKind::Cancelled),
                    Some(FaultKind::Delay) | Some(FaultKind::Drift) | None => break None,
                }
            };
            let id = &record.id;
            match expected {
                None => {
                    assert_eq!(record.result, Some(record.index as u32), "{id}");
                    assert_eq!(record.attempts, attempt + 1, "{id}");
                }
                Some(kind) => {
                    let error = record.error.as_ref().expect(id);
                    assert_eq!(error.kind, kind, "{id}: {error:?}");
                }
            }
        }

        // The counters saw every injection, including mid-retry ones.
        let counters = injector.counters();
        assert!(counters.total() > 0, "smoke plan injected nothing");
        assert_eq!(
            counters.panics,
            records
                .iter()
                .filter(|r| r
                    .error
                    .as_ref()
                    .is_some_and(|e| e.message.contains("panicked")))
                .count() as u64
        );
    }

    #[test]
    fn injected_faults_leave_trace_events() {
        let plan = FaultPlan {
            transient_rate: Some(1.0),
            ..FaultPlan::default()
        };
        let injector = FaultInjector::new(plan);
        let executor: Executor<u32, u32> = injector.wrap(Arc::new(|n, _| Ok(*n)));
        let tracer = youtiao_obs::Tracer::new("j0");
        let ctx = AttemptCtx {
            attempt: 0,
            index: 0,
            cancel: CancelToken::new(),
            tracer: tracer.clone(),
        };
        assert!(executor(&1, &ctx).is_err());
        let trace = tracer.finish();
        let fault = trace.find("fault").unwrap();
        assert_eq!(
            fault.annotations["detail"],
            "injected Transient (attempt 0)"
        );
        assert_eq!(injector.counters().transient, 1);
    }

    #[test]
    fn cancel_fault_cancels_the_jobs_own_token() {
        let plan = FaultPlan {
            cancel_rate: Some(1.0),
            ..FaultPlan::default()
        };
        let injector = FaultInjector::new(plan);
        let executor: Executor<u32, u32> = injector.wrap(Arc::new(|n, _| Ok(*n)));
        let ctx = AttemptCtx::new(0, CancelToken::new());
        let err = executor(&1, &ctx).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Cancelled);
        assert!(ctx.cancel.cancelled_explicitly());
    }

    #[test]
    fn drift_faults_mutate_requests_deterministically() {
        let plan = FaultPlan {
            seed: Some(3),
            drift_rate: Some(1.0),
            ..FaultPlan::default()
        };
        plan.validate().unwrap();
        assert_eq!(plan.fault_at(0, 0), Some(FaultKind::Drift));

        // wrap_with: the inner executor sees job + drift seed, and the
        // same (plan seed, index, attempt) always drifts identically.
        let run = |plan: &FaultPlan| {
            let injector = FaultInjector::new(plan.clone());
            let executor: Executor<u64, u64> = injector.wrap_with(
                Arc::new(|n, _| Ok(*n)),
                Arc::new(|n: &u64, seed: u64| n ^ seed),
            );
            let out = executor(&5, &AttemptCtx::new(0, CancelToken::new())).unwrap();
            (out, injector.counters().drifts)
        };
        let (a, drifts) = run(&plan);
        let (b, _) = run(&plan);
        assert_ne!(a, 5, "drift mutated the request");
        assert_eq!(a, b, "equal schedules drift equally");
        assert_eq!(drifts, 1);
        let reseeded = FaultPlan {
            seed: Some(4),
            ..plan.clone()
        };
        assert_ne!(run(&reseeded).0, a, "different seeds drift differently");

        // Plain wrap counts the fault but runs the job unchanged.
        let injector = FaultInjector::new(plan.clone());
        let executor: Executor<u64, u64> = injector.wrap(Arc::new(|n, _| Ok(*n)));
        let out = executor(&5, &AttemptCtx::new(0, CancelToken::new())).unwrap();
        assert_eq!(out, 5);
        assert_eq!(injector.counters().drifts, 1);

        // Appending Drift at rate 0 leaves historical schedules intact.
        let legacy = FaultPlan::smoke(2);
        for index in 0..64 {
            for attempt in 0..3 {
                assert_ne!(legacy.fault_at(index, attempt), Some(FaultKind::Drift));
            }
        }
    }

    #[test]
    fn session_faults_are_pure_field_accessors() {
        // Overload burst: phantom depth only inside [start, start+count).
        let plan: FaultPlan = serde_json::from_str(
            r#"{"overload_burst": {"start": 3, "count": 4, "extra": 1000000},
                "slow_client_ms": 5, "slow_client_every": 2, "shard_loss": 1}"#,
        )
        .unwrap();
        plan.validate().unwrap();
        assert_eq!(plan.overload_phantom(2), 0);
        assert_eq!(plan.overload_phantom(3), 1_000_000);
        assert_eq!(plan.overload_phantom(6), 1_000_000);
        assert_eq!(plan.overload_phantom(7), 0);
        assert_eq!(plan.shard_loss, Some(1));

        // Slow client: every 2nd response (0-based) stalls 5ms.
        assert_eq!(plan.slow_client_stall(0), Some(Duration::from_millis(5)));
        assert_eq!(plan.slow_client_stall(1), None);
        assert_eq!(plan.slow_client_stall(2), Some(Duration::from_millis(5)));

        // Defaults: everything off, and none of it enters fault_at.
        let off = FaultPlan::none();
        assert_eq!(off.overload_phantom(0), 0);
        assert_eq!(off.slow_client_stall(0), None);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan, "session faults roundtrip");
        assert_eq!(back.fault_at(0, 0), None, "no per-attempt faults scheduled");
    }

    #[test]
    fn cache_faults_mangle_files_deterministically() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("youtiao-fault-test-{}.json", std::process::id()));
        let body =
            r#"{"schema":"youtiao-plan-cache/v1","count":1,"entries":{"00000000000000aa":1}}"#;

        std::fs::write(&path, body).unwrap();
        apply_cache_fault(&path, CacheFault::Truncate).unwrap();
        let torn = std::fs::read_to_string(&path).unwrap();
        assert_eq!(torn.len(), body.len() / 2);
        assert!(serde_json::from_str::<serde::Value>(&torn).is_err());

        std::fs::write(&path, body).unwrap();
        apply_cache_fault(&path, CacheFault::Corrupt).unwrap();
        let rotted = std::fs::read_to_string(&path).unwrap();
        assert!(rotted.starts_with('@'));
        assert!(serde_json::from_str::<serde::Value>(&rotted).is_err());

        let _ = std::fs::remove_file(&path);
    }
}
