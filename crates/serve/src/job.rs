//! Job results and error classification.
//!
//! Executors return [`ExecError`]s whose [`ErrorKind`] and transience
//! flag drive the pool's retry policy; every finished job — success,
//! failure, timeout or cancellation — becomes a [`JobRecord`], the one
//! JSONL line the batch front-end emits per job. A job can only ever
//! *complete with an error record*; nothing in the serving layer aborts
//! the process.

use serde::{Map, Serialize, Value};

/// Where a job failure came from. Structured (not string-matched) so
/// callers and dashboards can aggregate failures by class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ErrorKind {
    /// The request itself was malformed (unknown topology, bad spec).
    InvalidRequest,
    /// The YOUTIAO planner failed (frequency crowding, bad config).
    Plan,
    /// Chip-level routing failed (channel overflow, no pads).
    Route,
    /// The job's deadline expired before the pipeline finished.
    Timeout,
    /// The job was cancelled (pool abort / shutdown).
    Cancelled,
    /// The finished plan violated a wiring invariant (`--validate`).
    Validation,
    /// Admission control rejected the job before it ran: its deadline
    /// was infeasible at the current queue depth.
    Shed,
    /// Anything else the executor raised.
    Internal,
}

impl ErrorKind {
    /// Wire name of the variant, matching the serialized form.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorKind::InvalidRequest => "InvalidRequest",
            ErrorKind::Plan => "Plan",
            ErrorKind::Route => "Route",
            ErrorKind::Timeout => "Timeout",
            ErrorKind::Cancelled => "Cancelled",
            ErrorKind::Validation => "Validation",
            ErrorKind::Shed => "Shed",
            ErrorKind::Internal => "Internal",
        }
    }
}

/// An executor failure: classification plus whether a retry (with a
/// perturbed seed) may plausibly succeed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// Failure class.
    pub kind: ErrorKind,
    /// Retrying with a perturbed seed may succeed.
    pub transient: bool,
    /// Human-readable detail (the source error's `Display`).
    pub message: String,
}

impl ExecError {
    /// A failure worth retrying.
    pub fn transient(kind: ErrorKind, message: impl Into<String>) -> Self {
        ExecError {
            kind,
            transient: true,
            message: message.into(),
        }
    }

    /// A failure that will recur on every retry.
    pub fn permanent(kind: ErrorKind, message: impl Into<String>) -> Self {
        ExecError {
            kind,
            transient: false,
            message: message.into(),
        }
    }

    /// The executor observed its cancel token and stopped.
    pub fn cancelled() -> Self {
        ExecError::permanent(ErrorKind::Cancelled, "job cancelled between stages")
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)
    }
}

impl std::error::Error for ExecError {}

/// The structured error half of a failed [`JobRecord`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ErrorRecord {
    /// Failure class.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

/// Terminal state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum JobStatus {
    /// The pipeline produced a result.
    Ok,
    /// The job failed permanently, timed out, or was cancelled.
    Error,
}

/// One finished job: the JSONL output line of `youtiao batch`.
///
/// Generic over the executor's result type `R`, so `Serialize` is
/// implemented by hand (the vendored derive covers non-generic shapes
/// only).
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord<R> {
    /// Position of the job in the submitted batch (input order).
    pub index: usize,
    /// Caller-supplied id, or `job-<index>`.
    pub id: String,
    /// Terminal state.
    pub status: JobStatus,
    /// The result, when `status` is [`JobStatus::Ok`].
    pub result: Option<R>,
    /// The failure, when `status` is [`JobStatus::Error`].
    pub error: Option<ErrorRecord>,
    /// Executor attempts consumed (0 for a pure cache hit).
    pub attempts: u32,
    /// Wall-clock latency from dequeue to completion, milliseconds.
    pub latency_ms: f64,
    /// Whether the result came from the plan cache.
    pub cache_hit: bool,
    /// Cache shard the job's key maps to, when served by a sharded
    /// front-end. Shard membership depends on the shard count, so
    /// [`JobRecord::canonical`] strips it.
    pub shard: Option<usize>,
    /// The job's span trace, when the pool ran with tracing enabled.
    pub trace: Option<youtiao_obs::Trace>,
}

impl<R> JobRecord<R> {
    /// A successful record.
    pub fn ok(index: usize, id: String, result: R, attempts: u32, latency_ms: f64) -> Self {
        JobRecord {
            index,
            id,
            status: JobStatus::Ok,
            result: Some(result),
            error: None,
            attempts,
            latency_ms,
            cache_hit: false,
            shard: None,
            trace: None,
        }
    }

    /// A failed record.
    pub fn error(
        index: usize,
        id: String,
        error: ErrorRecord,
        attempts: u32,
        latency_ms: f64,
    ) -> Self {
        JobRecord {
            index,
            id,
            status: JobStatus::Error,
            result: None,
            error: Some(error),
            attempts,
            latency_ms,
            cache_hit: false,
            shard: None,
            trace: None,
        }
    }

    /// Marks the record as served from cache.
    pub fn from_cache(mut self) -> Self {
        self.cache_hit = true;
        self
    }

    /// Tags the record with the cache shard its key maps to.
    pub fn with_shard(mut self, shard: Option<usize>) -> Self {
        self.shard = shard;
        self
    }

    /// Attaches the job's finished span trace (`None` leaves the record
    /// unchanged, so disabled tracing costs nothing on the wire).
    pub fn with_trace(mut self, trace: Option<youtiao_obs::Trace>) -> Self {
        self.trace = trace;
        self
    }

    /// Retries beyond the first attempt.
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }

    /// The record with run-dependent noise removed: latency zeroed,
    /// the trace dropped, and the shard tag dropped (it varies with
    /// the shard count). Chaos runs and daemon sessions emit canonical
    /// records so two equal-seed runs compare byte-identical.
    pub fn canonical(mut self) -> Self {
        self.latency_ms = 0.0;
        self.trace = None;
        self.shard = None;
        self
    }
}

impl<R: Serialize> Serialize for JobRecord<R> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("index".into(), self.index.to_value());
        map.insert("id".into(), self.id.to_value());
        map.insert("status".into(), self.status.to_value());
        map.insert("result".into(), self.result.to_value());
        map.insert("error".into(), self.error.to_value());
        map.insert("attempts".into(), self.attempts.to_value());
        map.insert("latency_ms".into(), self.latency_ms.to_value());
        map.insert("cache_hit".into(), self.cache_hit.to_value());
        // Emitted only when present: flat front-ends keep compact lines.
        if let Some(shard) = self.shard {
            map.insert("shard".into(), shard.to_value());
        }
        // Emitted only when present: untraced runs keep compact lines.
        if let Some(trace) = &self.trace {
            map.insert("trace".into(), trace.to_value());
        }
        Value::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_serializes_both_arms() {
        let ok = JobRecord::ok(3, "a".into(), 42u32, 1, 1.5);
        let v = ok.to_value();
        assert_eq!(v["status"], "Ok");
        assert_eq!(v["result"], 42);
        assert!(v["error"].is_null());

        let err = JobRecord::<u32>::error(
            4,
            "b".into(),
            ErrorRecord {
                kind: ErrorKind::Timeout,
                message: "deadline".into(),
            },
            2,
            9.0,
        )
        .from_cache();
        let v = err.to_value();
        assert_eq!(v["status"], "Error");
        assert_eq!(v["error"]["kind"], "Timeout");
        assert_eq!(v["cache_hit"], true);
        assert_eq!(err.retries(), 1);
    }

    #[test]
    fn trace_is_emitted_only_when_attached() {
        let bare = JobRecord::ok(0, "a".into(), 1u32, 1, 1.0);
        assert!(bare.to_value().get("trace").is_none());

        let tracer = youtiao_obs::Tracer::new("a");
        drop(tracer.span("plan"));
        let traced = JobRecord::ok(0, "a".into(), 1u32, 1, 1.0).with_trace(tracer.try_finish());
        let v = traced.to_value();
        assert_eq!(v["trace"]["spans"][0]["name"], "plan");

        assert_eq!(ErrorKind::Validation.as_str(), "Validation");
    }

    #[test]
    fn canonical_strips_latency_trace_and_shard() {
        let tracer = youtiao_obs::Tracer::new("c");
        drop(tracer.span("plan"));
        let record = JobRecord::ok(0, "c".into(), 5u32, 2, 17.3)
            .with_trace(tracer.try_finish())
            .with_shard(Some(3));
        assert_eq!(record.to_value()["shard"], 3);
        let canonical = record.canonical();
        assert_eq!(canonical.latency_ms, 0.0);
        assert!(canonical.trace.is_none());
        assert!(canonical.shard.is_none(), "shard varies with shard count");
        assert!(canonical.to_value().get("shard").is_none());
        assert_eq!(canonical.result, Some(5));
        assert_eq!(canonical.attempts, 2, "outcome fields survive");
    }

    #[test]
    fn exec_error_constructors_classify() {
        assert!(ExecError::transient(ErrorKind::Plan, "crowded").transient);
        assert!(!ExecError::permanent(ErrorKind::InvalidRequest, "bad").transient);
        let c = ExecError::cancelled();
        assert_eq!(c.kind, ErrorKind::Cancelled);
        assert!(c.to_string().contains("Cancelled"));
    }
}
