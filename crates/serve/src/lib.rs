//! The YOUTIAO serving layer: a concurrent batch design service.
//!
//! The one-shot pipeline (`youtiao::flow::design_chip`) answers a single
//! request on a single thread. Real wiring co-optimization runs as large
//! batch sweeps — across chip sizes, θ values, FDM capacities, and DEMUX
//! fan-outs — so this crate turns the pipeline into a multi-tenant,
//! parallel, cache-accelerated service:
//!
//! * [`DesignRequest`]/[`JobRecord`] — serde-serializable job and result
//!   types for the JSONL batch format;
//! * [`WorkerPool`] — a std-only worker pool (threads + channels) with
//!   per-job deadlines (cooperative cancellation between pipeline
//!   stages), bounded retry with seed perturbation on transient errors,
//!   and graceful shutdown that drains in-flight jobs;
//! * [`PlanCache`] — a content-addressed LRU memo of finished reports,
//!   keyed by a stable hash of (chip spec, planner knobs, seed), with
//!   hit/miss/eviction counters and optional JSON persistence;
//! * [`FaultPlan`]/[`FaultInjector`] — deterministic, seeded fault
//!   injection (behind `youtiao chaos`): scheduled errors, panics,
//!   delays, cancellations and cache corruption wrapped around any
//!   executor, reproducible from a seed;
//! * [`run_batch`] — the JSONL front-end behind `youtiao batch`,
//!   streaming one result line per job and summarizing throughput,
//!   latency percentiles, and cache behavior in [`ServeMetrics`].
//!
//! The crate is pipeline-agnostic: jobs produce any `R: Clone + Send +
//! Serialize + Deserialize`, and the executor closure supplies the
//! actual design flow. The `youtiao` facade wires in
//! `flow::design_chip` (see `youtiao::serve`), keeping the dependency
//! graph acyclic.

pub mod batch;
pub mod cache;
pub mod cancel;
pub mod fault;
pub mod job;
pub mod metrics;
pub mod pool;
pub mod request;

pub use batch::{parse_requests, run_batch, run_batch_with_cache, BatchError, BatchOptions};
pub use cache::{content_key, CacheLoadError, CacheStats, PlanCache};
pub use cancel::{CancelToken, Cancelled};
pub use fault::{
    apply_cache_fault, CacheFault, FaultCounters, FaultInjector, FaultKind, FaultPlan,
    RequestMutator,
};
pub use job::{ErrorKind, ErrorRecord, ExecError, JobRecord, JobStatus};
pub use metrics::{RepairStats, ServeMetrics, StageStat};
pub use pool::{AttemptCtx, Executor, PoolOptions, WorkerPool};
pub use request::{
    synthetic_drift, ActivityOverride, ChipRequest, DeltaSpec, DesignRequest, DriftEntry,
    RequestError, DEFAULT_SEED,
};
pub use youtiao_obs::{Trace, TraceSpan, Tracer};
