//! The YOUTIAO serving layer: a concurrent batch design service.
//!
//! The one-shot pipeline (`youtiao::flow::design_chip`) answers a single
//! request on a single thread. Real wiring co-optimization runs as large
//! batch sweeps — across chip sizes, θ values, FDM capacities, and DEMUX
//! fan-outs — so this crate turns the pipeline into a multi-tenant,
//! parallel, cache-accelerated service:
//!
//! * [`DesignRequest`]/[`JobRecord`] — serde-serializable job and result
//!   types for the JSONL batch format;
//! * [`WorkerPool`] — a std-only worker pool (threads + channels) with
//!   per-job deadlines (cooperative cancellation between pipeline
//!   stages), bounded retry with seed perturbation on transient errors,
//!   and graceful shutdown that drains in-flight jobs;
//! * [`PlanCache`] — a content-addressed LRU memo of finished reports,
//!   keyed by a stable hash of (chip spec, planner knobs, seed), with
//!   hit/miss/eviction counters and optional JSON persistence;
//! * [`FaultPlan`]/[`FaultInjector`] — deterministic, seeded fault
//!   injection (behind `youtiao chaos`): scheduled errors, panics,
//!   delays, cancellations and cache corruption wrapped around any
//!   executor, reproducible from a seed;
//! * [`run_batch`] — the JSONL front-end behind `youtiao batch`,
//!   streaming one result line per job and summarizing throughput,
//!   latency percentiles, and cache behavior in [`ServeMetrics`];
//! * [`ShardedCache`] — N content-addressed [`PlanCache`] shards, each
//!   with its own lock, LRU budget and persistence file, so shard loss
//!   or corruption is isolated and salvageable per shard;
//! * [`run_daemon`] — the long-lived `youtiao serve` session: a
//!   newline-framed JSONL protocol ([`proto`]) with request ids and an
//!   in-band `ping`/`stats`/`shutdown` control plane, deterministic
//!   canonical responses, and [`AdmissionController`] policy (bounded
//!   queue, per-client in-flight caps, deadline-aware shedding).
//!
//! The crate is pipeline-agnostic: jobs produce any `R: Clone + Send +
//! Serialize + Deserialize`, and the executor closure supplies the
//! actual design flow. The `youtiao` facade wires in
//! `flow::design_chip` (see `youtiao::serve`), keeping the dependency
//! graph acyclic.

pub mod admission;
pub mod batch;
pub mod cache;
pub mod cancel;
pub mod daemon;
pub mod fault;
pub mod job;
pub mod metrics;
pub mod pool;
pub mod proto;
pub mod request;
pub mod shard;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionStats};
pub use batch::{
    parse_requests, run_batch, run_batch_sharded, run_batch_stream, run_batch_stream_with_cache,
    run_batch_with_cache, BatchError, BatchOptions,
};
pub use cache::{content_key, CacheLoadError, CacheStats, PlanCache};
pub use cancel::{CancelToken, Cancelled};
pub use daemon::{run_daemon, run_daemon_session, DaemonOptions, DaemonReport};
pub use fault::{
    apply_cache_fault, CacheFault, FaultCounters, FaultInjector, FaultKind, FaultPlan,
    OverloadBurst, RequestMutator,
};
pub use job::{ErrorKind, ErrorRecord, ExecError, JobRecord, JobStatus};
pub use metrics::{RepairStats, ServeMetrics, ShardStat, StageStat};
pub use pool::{effective_plan_threads, AttemptCtx, Executor, PoolOptions, WorkerPool};
pub use proto::{DaemonRequest, Frame, FramedReader, OpKind};
pub use request::{
    near_square, synthetic_drift, ActivityOverride, ChipRequest, DeltaSpec, DesignRequest,
    DriftEntry, RequestError, DEFAULT_SEED,
};
pub use shard::{shard_file, shard_of_key, ShardedCache};
pub use youtiao_obs::{Trace, TraceSpan, Tracer};
