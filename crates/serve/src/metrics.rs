//! Batch-run service metrics.
//!
//! [`ServeMetrics`] is the end-of-run summary `youtiao batch` prints:
//! outcome counts, retry volume, cache behavior, throughput, and
//! latency percentiles over per-job wall times.

use std::time::Duration;

use crate::admission::AdmissionStats;
use crate::cache::CacheStats;
use crate::fault::FaultCounters;
use crate::job::{ErrorKind, JobRecord, JobStatus};

/// Summary of one batch run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServeMetrics {
    /// Jobs in the batch.
    pub jobs: usize,
    /// Jobs that produced a result.
    pub ok: usize,
    /// Jobs that failed (including timeouts and cancellations).
    pub errors: usize,
    /// Failed jobs whose final error was a deadline expiry.
    pub timeouts: usize,
    /// Failed jobs cancelled by shutdown/abort.
    pub cancelled: usize,
    /// Executor retries beyond each job's first attempt.
    pub retries: u64,
    /// Jobs answered from the plan cache.
    pub cache_hits: u64,
    /// Cache lookups that missed.
    pub cache_misses: u64,
    /// Cache entries evicted during the run.
    pub cache_evictions: u64,
    /// Cache hit fraction over all lookups.
    pub cache_hit_rate: f64,
    /// Wall-clock duration of the whole batch, milliseconds.
    pub wall_ms: f64,
    /// Completed jobs per second of wall time.
    pub throughput_per_s: f64,
    /// Median per-job latency, milliseconds.
    pub p50_ms: f64,
    /// 90th-percentile per-job latency, milliseconds.
    pub p90_ms: f64,
    /// 99th-percentile per-job latency, milliseconds.
    pub p99_ms: f64,
    /// Slowest job, milliseconds.
    pub max_ms: f64,
    /// Per-stage latency aggregates over every traced job, sorted by
    /// stage name (empty when the run was untraced).
    pub stages: Vec<StageStat>,
    /// Per-shard cache and latency aggregates, indexed by shard (empty
    /// when the run used a flat, unsharded cache).
    pub shards: Vec<ShardStat>,
    /// Admission-control counters (all zero outside daemon sessions).
    pub admission: AdmissionStats,
    /// Faults injected during the run, by kind (all zero outside chaos
    /// runs).
    pub faults: FaultCounters,
    /// Warm-path repair counters (all zero when no request carried a
    /// delta).
    pub repair: RepairStats,
}

/// Counters for the warm repair path: how delta-carrying requests were
/// answered. Included in [`ServeMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RepairStats {
    /// Delta requests whose base plan was already resident, answered by
    /// incremental repair.
    pub hits: u64,
    /// Delta requests whose base plan had to be computed first (then
    /// repaired from).
    pub misses: u64,
    /// Delta requests where repair fell back to a full replan
    /// (structural change, threshold exceeded, or validation failure).
    pub fallbacks: u64,
}

impl RepairStats {
    /// Total delta requests the repair path saw.
    pub fn total(&self) -> u64 {
        self.hits + self.misses + self.fallbacks
    }
}

/// Latency aggregate of one pipeline stage across a batch, built from
/// the span traces of its jobs.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StageStat {
    /// Span/stage name (e.g. `"plan"`, `"tdm_grouping"`).
    pub name: String,
    /// Spans observed with this name (≥ jobs when stages repeat).
    pub count: u64,
    /// Summed wall time, milliseconds.
    pub total_ms: f64,
    /// Mean wall time per span, milliseconds.
    pub mean_ms: f64,
    /// Median span wall time, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile span wall time, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile span wall time, milliseconds.
    pub p99_ms: f64,
    /// Slowest span, milliseconds.
    pub max_ms: f64,
}

/// Per-shard slice of a sharded run: that shard's cache counters plus
/// latency percentiles over the jobs whose keys mapped to it.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ShardStat {
    /// Shard index.
    pub shard: usize,
    /// Jobs whose content key mapped to this shard.
    pub jobs: usize,
    /// Resident cache entries at end of run.
    pub entries: usize,
    /// Cache hits served by this shard.
    pub hits: u64,
    /// Cache misses charged to this shard.
    pub misses: u64,
    /// LRU evictions within this shard's budget.
    pub evictions: u64,
    /// Median latency of this shard's jobs, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency of this shard's jobs, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency of this shard's jobs, milliseconds.
    pub p99_ms: f64,
}

/// Aggregates every span of every traced record by name.
fn stage_stats<R>(records: &[JobRecord<R>]) -> Vec<StageStat> {
    let mut by_name: std::collections::BTreeMap<&str, Vec<f64>> = std::collections::BTreeMap::new();
    for record in records {
        let Some(trace) = &record.trace else { continue };
        for (name, ms) in trace.flatten() {
            by_name.entry(name).or_default().push(ms);
        }
    }
    by_name
        .into_iter()
        .map(|(name, mut samples)| {
            samples.sort_by(f64::total_cmp);
            let count = samples.len() as u64;
            let total_ms: f64 = samples.iter().sum();
            StageStat {
                name: name.to_string(),
                count,
                total_ms,
                mean_ms: total_ms / count as f64,
                p50_ms: percentile(&samples, 50.0),
                p95_ms: percentile(&samples, 95.0),
                p99_ms: percentile(&samples, 99.0),
                max_ms: samples.last().copied().unwrap_or(0.0),
            }
        })
        .collect()
}

/// Nearest-rank percentile of an unsorted sample (q in 0..=100).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl ServeMetrics {
    /// Aggregates the records of a finished batch.
    pub fn from_records<R>(
        records: &[JobRecord<R>],
        wall: Duration,
        cache: Option<CacheStats>,
    ) -> Self {
        let mut latencies: Vec<f64> = records.iter().map(|r| r.latency_ms).collect();
        latencies.sort_by(f64::total_cmp);
        let ok = records.iter().filter(|r| r.status == JobStatus::Ok).count();
        let kind_count = |kind: ErrorKind| {
            records
                .iter()
                .filter(|r| r.error.as_ref().is_some_and(|e| e.kind == kind))
                .count()
        };
        let wall_ms = wall.as_secs_f64() * 1e3;
        let throughput_per_s = if wall_ms > 0.0 {
            records.len() as f64 / (wall_ms / 1e3)
        } else {
            0.0
        };
        let cache = cache.unwrap_or(CacheStats {
            entries: 0,
            capacity: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        });
        ServeMetrics {
            jobs: records.len(),
            ok,
            errors: records.len() - ok,
            timeouts: kind_count(ErrorKind::Timeout),
            cancelled: kind_count(ErrorKind::Cancelled),
            retries: records.iter().map(|r| r.retries() as u64).sum(),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_hit_rate: cache.hit_rate(),
            wall_ms,
            throughput_per_s,
            p50_ms: percentile(&latencies, 50.0),
            p90_ms: percentile(&latencies, 90.0),
            p99_ms: percentile(&latencies, 99.0),
            max_ms: latencies.last().copied().unwrap_or(0.0),
            stages: stage_stats(records),
            shards: Vec::new(),
            admission: AdmissionStats::default(),
            faults: FaultCounters::default(),
            repair: RepairStats::default(),
        }
    }

    /// Attaches per-shard aggregates: `shard_stats[i]` is shard `i`'s
    /// cache counters; latency percentiles come from the records whose
    /// `shard` tag is `i`.
    pub fn with_shards<R>(mut self, records: &[JobRecord<R>], shard_stats: &[CacheStats]) -> Self {
        self.shards = shard_stats
            .iter()
            .enumerate()
            .map(|(shard, cache)| {
                let mut latencies: Vec<f64> = records
                    .iter()
                    .filter(|r| r.shard == Some(shard))
                    .map(|r| r.latency_ms)
                    .collect();
                latencies.sort_by(f64::total_cmp);
                ShardStat {
                    shard,
                    jobs: latencies.len(),
                    entries: cache.entries,
                    hits: cache.hits,
                    misses: cache.misses,
                    evictions: cache.evictions,
                    p50_ms: percentile(&latencies, 50.0),
                    p95_ms: percentile(&latencies, 95.0),
                    p99_ms: percentile(&latencies, 99.0),
                }
            })
            .collect();
        self
    }

    /// Attaches a daemon session's admission-control counters.
    pub fn with_admission(mut self, admission: AdmissionStats) -> Self {
        self.admission = admission;
        self
    }

    /// Attaches a chaos run's injected-fault counters.
    pub fn with_faults(mut self, faults: FaultCounters) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches the warm repair path's counters.
    pub fn with_repair(mut self, repair: RepairStats) -> Self {
        self.repair = repair;
        self
    }

    /// Human-readable multi-line summary (what the CLI prints).
    pub fn render(&self) -> String {
        let mut out = format!(
            "batch: {} jobs in {:.0} ms ({:.1} jobs/s)\n\
             outcome: {} ok, {} errors ({} timeouts, {} cancelled), {} retries\n\
             latency: p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms, max {:.1} ms\n\
             cache: {} hits, {} misses, {} evictions ({:.0}% hit rate)",
            self.jobs,
            self.wall_ms,
            self.throughput_per_s,
            self.ok,
            self.errors,
            self.timeouts,
            self.cancelled,
            self.retries,
            self.p50_ms,
            self.p90_ms,
            self.p99_ms,
            self.max_ms,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_hit_rate * 100.0,
        );
        if self.faults.total() > 0 {
            out.push_str(&format!(
                "\nfaults: {} injected ({} transient, {} permanent, {} panics, {} delays, {} cancels, {} drifts)",
                self.faults.total(),
                self.faults.transient,
                self.faults.permanent,
                self.faults.panics,
                self.faults.delays,
                self.faults.cancels,
                self.faults.drifts,
            ));
        }
        if self.repair.total() > 0 {
            out.push_str(&format!(
                "\nrepair: {} delta jobs ({} base hits, {} base misses, {} replan fallbacks)",
                self.repair.total(),
                self.repair.hits,
                self.repair.misses,
                self.repair.fallbacks,
            ));
        }
        if self.admission.decisions() > 0 || self.admission.backpressure_waits > 0 {
            out.push_str(&format!(
                "\nadmission: {} admitted, {} shed, {} backpressure waits, max {} in flight",
                self.admission.admitted,
                self.admission.shed,
                self.admission.backpressure_waits,
                self.admission.max_in_flight,
            ));
        }
        for stage in &self.stages {
            out.push_str(&format!(
                "\nstage {}: {} spans, mean {:.1} ms, p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms, max {:.1} ms, total {:.0} ms",
                stage.name,
                stage.count,
                stage.mean_ms,
                stage.p50_ms,
                stage.p95_ms,
                stage.p99_ms,
                stage.max_ms,
                stage.total_ms
            ));
        }
        if self.shards.len() > 1 {
            for shard in &self.shards {
                out.push_str(&format!(
                    "\nshard {}: {} jobs, {} entries, {} hits, {} misses, {} evictions, p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms",
                    shard.shard,
                    shard.jobs,
                    shard.entries,
                    shard.hits,
                    shard.misses,
                    shard.evictions,
                    shard.p50_ms,
                    shard.p95_ms,
                    shard.p99_ms
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ErrorRecord;

    fn ok(index: usize, latency: f64) -> JobRecord<u32> {
        JobRecord::ok(index, format!("j{index}"), 1, 1, latency)
    }

    fn failed(index: usize, kind: ErrorKind, attempts: u32) -> JobRecord<u32> {
        JobRecord::error(
            index,
            format!("j{index}"),
            ErrorRecord {
                kind,
                message: "x".into(),
            },
            attempts,
            1.0,
        )
    }

    #[test]
    fn aggregates_counts_and_percentiles() {
        let mut records: Vec<JobRecord<u32>> = (0..98).map(|i| ok(i, (i + 1) as f64)).collect();
        records.push(failed(98, ErrorKind::Timeout, 1));
        records.push(failed(99, ErrorKind::Plan, 3));
        let m = ServeMetrics::from_records(&records, Duration::from_secs(1), None);
        assert_eq!(m.jobs, 100);
        assert_eq!(m.ok, 98);
        assert_eq!(m.errors, 2);
        assert_eq!(m.timeouts, 1);
        assert_eq!(m.cancelled, 0);
        assert_eq!(m.retries, 2);
        assert!((m.throughput_per_s - 100.0).abs() < 1e-9);
        // 98 latencies 1..=98 plus two 1.0s: p50 is the 50th smallest.
        assert!((m.p50_ms - 48.0).abs() < 1e-9, "{}", m.p50_ms);
        assert_eq!(m.max_ms, 98.0);
        let rendered = m.render();
        assert!(rendered.contains("p99"));
        assert!(rendered.contains("100 jobs"));
    }

    #[test]
    fn empty_batch_is_all_zeros() {
        let m = ServeMetrics::from_records::<u32>(&[], Duration::ZERO, None);
        assert_eq!(m.jobs, 0);
        assert_eq!(m.p99_ms, 0.0);
        assert_eq!(m.throughput_per_s, 0.0);
    }

    #[test]
    fn stage_aggregates_come_from_traces() {
        let tracer = youtiao_obs::Tracer::new("j0");
        tracer.record("plan", Duration::from_millis(10));
        tracer.record("route", Duration::from_millis(4));
        let a = ok(0, 14.0).with_trace(tracer.try_finish());
        let tracer = youtiao_obs::Tracer::new("j1");
        tracer.record("plan", Duration::from_millis(20));
        let b = ok(1, 20.0).with_trace(tracer.try_finish());
        let untraced = ok(2, 1.0);

        let m = ServeMetrics::from_records(&[a, b, untraced], Duration::from_secs(1), None);
        assert_eq!(m.stages.len(), 2);
        let plan = &m.stages[0];
        assert_eq!(plan.name, "plan");
        assert_eq!(plan.count, 2);
        assert!((plan.total_ms - 30.0).abs() < 1e-9);
        assert!((plan.mean_ms - 15.0).abs() < 1e-9);
        assert!((plan.max_ms - 20.0).abs() < 1e-9);
        assert_eq!(m.stages[1].name, "route");
        // Percentiles over the two plan samples (10, 20): nearest rank
        // puts p50 on the first, p95/p99 on the last.
        assert!((plan.p50_ms - 10.0).abs() < 1e-9);
        assert!((plan.p95_ms - 20.0).abs() < 1e-9);
        assert!((plan.p99_ms - 20.0).abs() < 1e-9);
        assert!(m.render().contains("stage plan: 2 spans"));
        assert!(m.render().contains("p95"), "{}", m.render());

        let untraced_run = ServeMetrics::from_records(&[ok(0, 1.0)], Duration::from_secs(1), None);
        assert!(untraced_run.stages.is_empty());
        assert!(!untraced_run.render().contains("stage "));
    }

    #[test]
    fn fault_counters_render_only_when_nonzero() {
        let quiet = ServeMetrics::from_records(&[ok(0, 1.0)], Duration::from_secs(1), None);
        assert_eq!(quiet.faults.total(), 0);
        assert!(!quiet.render().contains("faults:"));

        let chaotic = quiet.with_faults(FaultCounters {
            transient: 3,
            panics: 1,
            ..Default::default()
        });
        let rendered = chaotic.render();
        assert!(rendered.contains("faults: 4 injected"), "{rendered}");
        assert!(rendered.contains("3 transient"), "{rendered}");
    }

    #[test]
    fn repair_counters_render_only_when_nonzero() {
        let plain = ServeMetrics::from_records(&[ok(0, 1.0)], Duration::from_secs(1), None);
        assert_eq!(plain.repair.total(), 0);
        assert!(!plain.render().contains("repair:"));

        let repaired = plain.with_repair(RepairStats {
            hits: 4,
            misses: 1,
            fallbacks: 2,
        });
        let rendered = repaired.render();
        assert!(rendered.contains("repair: 7 delta jobs"), "{rendered}");
        assert!(rendered.contains("4 base hits"), "{rendered}");
        assert!(rendered.contains("2 replan fallbacks"), "{rendered}");
    }

    #[test]
    fn shard_and_admission_aggregates_attach_and_render() {
        let records: Vec<JobRecord<u32>> = (0..8)
            .map(|i| ok(i, (i + 1) as f64).with_shard(Some(i % 2)))
            .collect();
        let shard_stats = [
            CacheStats {
                entries: 3,
                capacity: 8,
                hits: 2,
                misses: 2,
                evictions: 0,
            },
            CacheStats {
                entries: 1,
                capacity: 8,
                hits: 0,
                misses: 4,
                evictions: 1,
            },
        ];
        let m = ServeMetrics::from_records(&records, Duration::from_secs(1), None)
            .with_shards(&records, &shard_stats)
            .with_admission(AdmissionStats {
                admitted: 8,
                shed: 2,
                backpressure_waits: 1,
                max_in_flight: 4,
            });
        assert_eq!(m.shards.len(), 2);
        // Shard 0 saw latencies 1,3,5,7; shard 1 saw 2,4,6,8.
        assert_eq!(m.shards[0].jobs, 4);
        assert!((m.shards[0].p50_ms - 3.0).abs() < 1e-9);
        assert!((m.shards[0].p99_ms - 7.0).abs() < 1e-9);
        assert!((m.shards[1].p99_ms - 8.0).abs() < 1e-9);
        assert_eq!(m.shards[1].evictions, 1);
        let rendered = m.render();
        assert!(
            rendered.contains("admission: 8 admitted, 2 shed"),
            "{rendered}"
        );
        assert!(rendered.contains("shard 0: 4 jobs"), "{rendered}");
        assert!(rendered.contains("shard 1: 4 jobs"), "{rendered}");

        // A flat (single-shard) run renders no shard lines, and a
        // batch run with no admission decisions no admission line.
        let flat = ServeMetrics::from_records(&records, Duration::from_secs(1), None)
            .with_shards(&records, &shard_stats[..1]);
        assert_eq!(flat.shards.len(), 1);
        assert!(!flat.render().contains("\nshard 0:"));
        assert!(!flat.render().contains("admission:"));
    }

    #[test]
    fn metrics_serialize() {
        let m = ServeMetrics::from_records(&[ok(0, 2.0)], Duration::from_millis(10), None);
        let json = serde_json::to_string(&m).unwrap();
        let back: ServeMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
