//! The std-only worker pool.
//!
//! One OS thread per core (by default) pulls tasks from a shared
//! `Mutex<VecDeque>` guarded by a condvar, runs them through a
//! caller-supplied [`Executor`], and streams finished [`JobRecord`]s
//! back over an `mpsc` channel. Per-job semantics:
//!
//! * **deadline** — each task gets a [`CancelToken`] armed with its
//!   deadline; the executor polls it between pipeline stages, and an
//!   expiry is reported as [`ErrorKind::Timeout`];
//! * **bounded retry** — a transient [`ExecError`] is retried up to
//!   `max_retries` times, the attempt number flowing back into the
//!   executor so it can perturb the characterization seed; the deadline
//!   spans *all* attempts of a job;
//! * **graceful shutdown** — [`WorkerPool::join`] stops intake, lets
//!   workers drain every queued task, and returns the not-yet-consumed
//!   records; [`WorkerPool::abort`] additionally cancels queued and
//!   in-flight tasks, which then complete as [`ErrorKind::Cancelled`]
//!   records rather than vanishing — even when a job's deadline has
//!   *also* expired, the explicit abort wins the classification.
//!
//! Panics in the executor are caught per job (`catch_unwind`) and
//! surfaced as [`ErrorKind::Internal`] records: a poisoned job never
//! takes the process or the pool down.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use youtiao_obs::Tracer;

use crate::cancel::CancelToken;
use crate::job::{ErrorKind, ErrorRecord, ExecError, JobRecord};

/// The work a pool runs: `(payload, attempt context) -> result`.
///
/// The executor must poll `ctx.cancel` between expensive stages for
/// deadlines and aborts to take effect, and should vary any stochastic
/// seeding by `ctx.attempt` so retries explore different seeds.
pub type Executor<J, R> = Arc<dyn Fn(&J, &AttemptCtx) -> Result<R, ExecError> + Send + Sync>;

/// Per-attempt context handed to the executor.
#[derive(Debug, Clone)]
pub struct AttemptCtx {
    /// 0 for the first attempt, 1.. for retries.
    pub attempt: u32,
    /// The job's batch index, stable across attempts. Deterministic
    /// per-job behaviour (e.g. seeded fault schedules) keys on it.
    pub index: usize,
    /// Deadline/abort flag to poll between stages.
    pub cancel: CancelToken,
    /// The job's tracer (disabled unless [`PoolOptions::trace`] is
    /// set); executors open stage spans on it.
    pub tracer: Tracer,
}

impl AttemptCtx {
    /// An untraced context for job index 0 (tests and simple executors).
    pub fn new(attempt: u32, cancel: CancelToken) -> Self {
        AttemptCtx {
            attempt,
            index: 0,
            cancel,
            tracer: Tracer::disabled(),
        }
    }

    /// The same context for a different job index.
    pub fn with_index(mut self, index: usize) -> Self {
        self.index = index;
        self
    }
}

/// Pool sizing and retry policy.
#[derive(Debug, Clone)]
pub struct PoolOptions {
    /// Worker threads; 0 means one per available core.
    pub workers: usize,
    /// Retries after the first attempt of a transiently failing job.
    pub max_retries: u32,
    /// Default per-job deadline; per-task deadlines override it.
    pub deadline: Option<Duration>,
    /// Record a span trace per job (attempt spans, queue wait, plus
    /// whatever stage spans the executor opens) and attach it to the
    /// job's record.
    pub trace: bool,
}

impl Default for PoolOptions {
    fn default() -> Self {
        PoolOptions {
            workers: 0,
            max_retries: 2,
            deadline: None,
            trace: false,
        }
    }
}

impl PoolOptions {
    /// The worker-thread count this configuration resolves to.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// The `--plan-threads` × `--jobs` oversubscription policy: resolves
/// the intra-plan thread count a serve front-end should hand the
/// planner, given the pool's effective worker count.
///
/// * An explicit request (`requested > 0`) always wins — the operator
///   opted into `workers × requested` threads knowingly.
/// * Auto (`requested == 0`) with more than one pool worker resolves to
///   **1**: the pool already saturates the cores with independent jobs,
///   and nesting per-plan fan-out on top would oversubscribe every one
///   of them.
/// * Auto with a single worker resolves to **0** (one thread per core
///   at the planner level): tail latency of the lone in-flight plan is
///   all that matters, so the plan gets the whole machine.
///
/// Plans are byte-identical across any resolved value, so this policy
/// is pure scheduling — it can never change a served plan.
pub fn effective_plan_threads(requested: usize, workers: usize) -> usize {
    if requested > 0 {
        requested
    } else if workers > 1 {
        1
    } else {
        0
    }
}

struct Task<J> {
    index: usize,
    id: String,
    payload: J,
    deadline: Option<Duration>,
    submitted: Instant,
}

struct Shared<J> {
    queue: Mutex<VecDeque<Task<J>>>,
    available: Condvar,
    closed: AtomicBool,
    aborted: AtomicBool,
    /// Cancel tokens of in-flight tasks, keyed by task index, so
    /// [`WorkerPool::abort`] can reach running jobs.
    in_flight: Mutex<HashMap<usize, CancelToken>>,
}

/// A fixed-size pool of design workers streaming [`JobRecord`]s.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use youtiao_serve::{PoolOptions, WorkerPool};
///
/// let mut pool = WorkerPool::new(
///     Arc::new(|n: &u64, _ctx| Ok(n * 2)),
///     PoolOptions { workers: 2, ..Default::default() },
/// );
/// for n in 0..4u64 {
///     pool.submit(n as usize, format!("job-{n}"), n, None);
/// }
/// let mut records = pool.join();
/// records.sort_by_key(|r| r.index);
/// assert_eq!(records.len(), 4);
/// assert_eq!(records[3].result, Some(6));
/// ```
pub struct WorkerPool<J, R> {
    shared: Arc<Shared<J>>,
    results: Receiver<JobRecord<R>>,
    handles: Vec<JoinHandle<()>>,
    submitted: usize,
}

impl<J, R> WorkerPool<J, R>
where
    J: Send + 'static,
    R: Send + 'static,
{
    /// Spawns the worker threads.
    pub fn new(executor: Executor<J, R>, options: PoolOptions) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            closed: AtomicBool::new(false),
            aborted: AtomicBool::new(false),
            in_flight: Mutex::new(HashMap::new()),
        });
        let (sender, results) = channel::<JobRecord<R>>();
        let handles = (0..options.effective_workers())
            .map(|_| {
                let shared = Arc::clone(&shared);
                let executor = Arc::clone(&executor);
                let options = options.clone();
                let sender = sender.clone();
                std::thread::spawn(move || worker_loop(&shared, &executor, &options, &sender))
            })
            .collect();
        WorkerPool {
            shared,
            results,
            handles,
            submitted: 0,
        }
    }

    /// Enqueues a task. Returns `false` (dropping the task) once the
    /// pool is closed or aborted.
    pub fn submit(
        &mut self,
        index: usize,
        id: String,
        payload: J,
        deadline: Option<Duration>,
    ) -> bool {
        if self.shared.closed.load(Ordering::SeqCst) {
            return false;
        }
        self.shared
            .queue
            .lock()
            .expect("pool queue")
            .push_back(Task {
                index,
                id,
                payload,
                deadline,
                submitted: Instant::now(),
            });
        self.shared.available.notify_one();
        self.submitted += 1;
        true
    }

    /// Tasks accepted so far.
    pub fn submitted(&self) -> usize {
        self.submitted
    }

    /// The stream of finished records, in completion order.
    pub fn results(&self) -> &Receiver<JobRecord<R>> {
        &self.results
    }

    /// Cancels queued and in-flight tasks. Every affected task still
    /// yields a [`JobStatus::Error`](crate::JobStatus::Error) record
    /// with kind [`ErrorKind::Cancelled`].
    pub fn abort(&self) {
        self.shared.aborted.store(true, Ordering::SeqCst);
        self.shared.closed.store(true, Ordering::SeqCst);
        for token in self
            .shared
            .in_flight
            .lock()
            .expect("in-flight set")
            .values()
        {
            token.cancel();
        }
        self.shared.available.notify_all();
    }

    /// Graceful shutdown: stops intake, drains every queued task, joins
    /// the workers, and returns the records not yet consumed through
    /// [`Self::results`].
    pub fn join(self) -> Vec<JobRecord<R>> {
        self.shared.closed.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for handle in self.handles {
            let _ = handle.join();
        }
        // All senders are gone once workers exit; drain what is left.
        self.results.try_iter().collect()
    }
}

fn worker_loop<J, R>(
    shared: &Shared<J>,
    executor: &Executor<J, R>,
    options: &PoolOptions,
    sender: &Sender<JobRecord<R>>,
) {
    loop {
        let task = {
            let mut queue = shared.queue.lock().expect("pool queue");
            loop {
                if let Some(task) = queue.pop_front() {
                    break Some(task);
                }
                if shared.closed.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared.available.wait(queue).expect("pool queue");
            }
        };
        let Some(task) = task else { return };
        let record = run_task(shared, executor, options, task);
        if sender.send(record).is_err() {
            return; // Receiver dropped; nobody wants further results.
        }
    }
}

fn run_task<J, R>(
    shared: &Shared<J>,
    executor: &Executor<J, R>,
    options: &PoolOptions,
    task: Task<J>,
) -> JobRecord<R> {
    let start = Instant::now();
    if shared.aborted.load(Ordering::SeqCst) {
        return JobRecord::error(
            task.index,
            task.id,
            ErrorRecord {
                kind: ErrorKind::Cancelled,
                message: "pool aborted before the job started".into(),
            },
            0,
            0.0,
        );
    }
    let deadline = task.deadline.or(options.deadline);
    let token = CancelToken::with_optional_deadline(deadline);
    {
        // Register the token, then re-check the abort flag while still
        // holding the lock. `abort()` stores `aborted` before locking
        // `in_flight`, so the two interleavings are exhaustive: either
        // the store is visible here (cancel our own token), or the
        // abort's sweep runs after this insert and finds the token in
        // the map. Checking `aborted` only before the insert left a
        // window where an abort cancelled nothing and the job ran to
        // completion.
        let mut in_flight = shared.in_flight.lock().expect("in-flight set");
        in_flight.insert(task.index, token.clone());
        if shared.aborted.load(Ordering::SeqCst) {
            token.cancel();
        }
    }

    let tracer = if options.trace {
        Tracer::new(task.id.clone())
    } else {
        Tracer::disabled()
    };
    tracer.annotate(
        "queue_wait_ms",
        start.duration_since(task.submitted).as_secs_f64() * 1e3,
    );

    let mut attempt: u32 = 0;
    let outcome = loop {
        let ctx = AttemptCtx {
            attempt,
            index: task.index,
            cancel: token.clone(),
            tracer: tracer.clone(),
        };
        let span = tracer.span("attempt");
        let result = catch_unwind(AssertUnwindSafe(|| executor(&task.payload, &ctx)))
            .unwrap_or_else(|panic| {
                Err(ExecError::permanent(
                    ErrorKind::Internal,
                    panic_message(&panic),
                ))
            });
        drop(span);
        match result {
            Ok(value) => break Ok(value),
            Err(e) if e.transient && attempt < options.max_retries && !token.is_cancelled() => {
                attempt += 1;
            }
            Err(e) => break Err(e),
        }
    };
    shared
        .in_flight
        .lock()
        .expect("in-flight set")
        .remove(&task.index);

    let latency_ms = start.elapsed().as_secs_f64() * 1e3;
    let attempts = attempt + 1;
    tracer.annotate("attempts", attempts as u64);
    let trace = tracer.try_finish();
    match outcome {
        Ok(value) => {
            JobRecord::ok(task.index, task.id, value, attempts, latency_ms).with_trace(trace)
        }
        Err(e) => {
            // An executor that stopped at a checkpoint reports Cancelled;
            // whether that was the deadline or an abort is the token's
            // knowledge, not the pipeline's. An explicit abort takes
            // precedence: a job that was both aborted and past its
            // deadline is `Cancelled`, not `Timeout`.
            let (kind, message) = if e.kind == ErrorKind::Cancelled
                && token.deadline_expired()
                && !token.cancelled_explicitly()
            {
                let budget = deadline.unwrap_or_default();
                (
                    ErrorKind::Timeout,
                    format!("deadline of {} ms expired", budget.as_millis()),
                )
            } else {
                (e.kind, e.message)
            };
            JobRecord::error(
                task.index,
                task.id,
                ErrorRecord { kind, message },
                attempts,
                latency_ms,
            )
            .with_trace(trace)
        }
    }
}

/// Best-effort panic payload extraction.
fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("executor panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("executor panicked: {s}")
    } else {
        "executor panicked".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JobStatus;
    use std::sync::atomic::AtomicU32;

    fn doubling_pool(workers: usize) -> WorkerPool<u64, u64> {
        WorkerPool::new(
            Arc::new(|n: &u64, _ctx| Ok(n * 2)),
            PoolOptions {
                workers,
                ..Default::default()
            },
        )
    }

    #[test]
    fn completes_all_jobs_across_workers() {
        let mut pool = doubling_pool(4);
        for n in 0..32u64 {
            assert!(pool.submit(n as usize, format!("j{n}"), n, None));
        }
        let mut records = pool.join();
        records.sort_by_key(|r| r.index);
        assert_eq!(records.len(), 32);
        for (n, record) in records.iter().enumerate() {
            assert_eq!(record.status, JobStatus::Ok);
            assert_eq!(record.result, Some(n as u64 * 2));
            assert_eq!(record.attempts, 1);
        }
    }

    #[test]
    fn transient_errors_retry_with_attempt_numbers() {
        let calls = Arc::new(AtomicU32::new(0));
        let calls_in = Arc::clone(&calls);
        let executor: Executor<u32, u32> = Arc::new(move |_, ctx| {
            calls_in.fetch_add(1, Ordering::SeqCst);
            if ctx.attempt < 2 {
                Err(ExecError::transient(ErrorKind::Plan, "crowded"))
            } else {
                Ok(ctx.attempt)
            }
        });
        let mut pool = WorkerPool::new(
            executor,
            PoolOptions {
                workers: 1,
                max_retries: 2,
                deadline: None,
                trace: false,
            },
        );
        pool.submit(0, "retry".into(), 0, None);
        let records = pool.join();
        assert_eq!(records[0].status, JobStatus::Ok);
        assert_eq!(records[0].result, Some(2));
        assert_eq!(records[0].attempts, 3);
        assert_eq!(records[0].retries(), 2);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn permanent_errors_do_not_retry() {
        let executor: Executor<u32, u32> =
            Arc::new(|_, _| Err(ExecError::permanent(ErrorKind::InvalidRequest, "bad")));
        let mut pool = WorkerPool::new(
            executor,
            PoolOptions {
                workers: 1,
                max_retries: 5,
                deadline: None,
                trace: false,
            },
        );
        pool.submit(0, "perm".into(), 0, None);
        let records = pool.join();
        assert_eq!(records[0].attempts, 1);
        let error = records[0].error.as_ref().unwrap();
        assert_eq!(error.kind, ErrorKind::InvalidRequest);
    }

    #[test]
    fn expired_deadline_reports_timeout() {
        let executor: Executor<u32, u32> = Arc::new(|_, ctx| {
            ctx.cancel
                .checkpoint()
                .map_err(|_| ExecError::cancelled())?;
            Ok(1)
        });
        let mut pool = WorkerPool::new(
            executor,
            PoolOptions {
                workers: 1,
                ..Default::default()
            },
        );
        pool.submit(0, "late".into(), 0, Some(Duration::ZERO));
        let records = pool.join();
        let error = records[0].error.as_ref().unwrap();
        assert_eq!(error.kind, ErrorKind::Timeout, "{error:?}");
        assert!(error.message.contains("deadline"));
    }

    #[test]
    fn abort_cancels_queued_jobs_with_records() {
        let executor: Executor<u32, u32> = Arc::new(|n, ctx| {
            // Busy-wait until cancelled so queued tasks pile up.
            if *n == 0 {
                while ctx.cancel.checkpoint().is_ok() {
                    std::thread::yield_now();
                }
                return Err(ExecError::cancelled());
            }
            Ok(*n)
        });
        let mut pool = WorkerPool::new(
            executor,
            PoolOptions {
                workers: 1,
                ..Default::default()
            },
        );
        for n in 0..8u32 {
            pool.submit(n as usize, format!("j{n}"), n, None);
        }
        // Give the single worker time to start job 0, then abort.
        std::thread::sleep(Duration::from_millis(20));
        pool.abort();
        let mut records = pool.join();
        records.sort_by_key(|r| r.index);
        assert_eq!(records.len(), 8, "every job yields a record");
        assert_eq!(
            records[0].error.as_ref().unwrap().kind,
            ErrorKind::Cancelled
        );
        assert!(records
            .iter()
            .skip(1)
            .all(|r| r.error.as_ref().unwrap().kind == ErrorKind::Cancelled));
    }

    /// Both orderings of abort vs. deadline expiry: the explicit abort
    /// wins the classification either way. The expired-deadline case
    /// reported `Timeout` before the precedence fix.
    #[test]
    fn abort_takes_precedence_over_expired_deadline() {
        let executor: Executor<u32, u32> = Arc::new(|_, ctx| {
            // Wait out the abort, so the deadline is long expired by
            // the time the executor stops at its checkpoint.
            while !ctx.cancel.cancelled_explicitly() {
                std::thread::yield_now();
            }
            Err(ExecError::cancelled())
        });
        let mut pool = WorkerPool::new(
            executor,
            PoolOptions {
                workers: 1,
                ..Default::default()
            },
        );
        pool.submit(0, "both".into(), 0, Some(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(20));
        pool.abort();
        let records = pool.join();
        let error = records[0].error.as_ref().unwrap();
        assert_eq!(
            error.kind,
            ErrorKind::Cancelled,
            "abort must not be reported as a timeout: {error:?}"
        );
    }

    #[test]
    fn abort_before_deadline_expiry_reports_cancelled() {
        let executor: Executor<u32, u32> = Arc::new(|_, ctx| {
            while ctx.cancel.checkpoint().is_ok() {
                std::thread::yield_now();
            }
            Err(ExecError::cancelled())
        });
        let mut pool = WorkerPool::new(
            executor,
            PoolOptions {
                workers: 1,
                ..Default::default()
            },
        );
        pool.submit(0, "aborted".into(), 0, Some(Duration::from_secs(3600)));
        std::thread::sleep(Duration::from_millis(10));
        pool.abort();
        let records = pool.join();
        assert_eq!(
            records[0].error.as_ref().unwrap().kind,
            ErrorKind::Cancelled
        );
    }

    #[test]
    fn attempt_ctx_carries_the_job_index() {
        let executor: Executor<u32, usize> = Arc::new(|_, ctx| Ok(ctx.index));
        let mut pool = WorkerPool::new(
            executor,
            PoolOptions {
                workers: 2,
                ..Default::default()
            },
        );
        for n in 0..6u32 {
            pool.submit(10 + n as usize, format!("j{n}"), n, None);
        }
        let records = pool.join();
        for record in records {
            assert_eq!(record.result, Some(record.index));
        }
        assert_eq!(
            AttemptCtx::new(0, CancelToken::new()).with_index(7).index,
            7
        );
    }

    #[test]
    fn traced_pool_attaches_attempt_spans() {
        let executor: Executor<u32, u32> = Arc::new(|_, ctx| {
            let _work = ctx.tracer.span("work");
            if ctx.attempt == 0 {
                Err(ExecError::transient(ErrorKind::Plan, "first try fails"))
            } else {
                Ok(7)
            }
        });
        let mut pool = WorkerPool::new(
            executor,
            PoolOptions {
                workers: 1,
                trace: true,
                ..Default::default()
            },
        );
        pool.submit(0, "traced".into(), 0, None);
        let records = pool.join();
        let trace = records[0].trace.as_ref().unwrap();
        assert_eq!(trace.job, "traced");
        let attempts: Vec<_> = trace.spans.iter().filter(|s| s.name == "attempt").collect();
        assert_eq!(attempts.len(), 2, "one span per attempt");
        assert!(attempts[1].find("work").is_some());
        assert_eq!(trace.annotations["attempts"], 2u64);
        assert!(trace.annotations["queue_wait_ms"].as_f64().unwrap() >= 0.0);

        // Without the option, records stay bare.
        let mut pool = doubling_pool(1);
        pool.submit(0, "bare".into(), 1, None);
        assert!(pool.join()[0].trace.is_none());
    }

    #[test]
    fn executor_panic_becomes_internal_error() {
        let executor: Executor<u32, u32> = Arc::new(|n, _| {
            if *n == 1 {
                panic!("boom {n}");
            }
            Ok(*n)
        });
        let mut pool = WorkerPool::new(
            executor,
            PoolOptions {
                workers: 2,
                ..Default::default()
            },
        );
        pool.submit(0, "fine".into(), 0, None);
        pool.submit(1, "boom".into(), 1, None);
        let mut records = pool.join();
        records.sort_by_key(|r| r.index);
        assert_eq!(records[0].status, JobStatus::Ok);
        let error = records[1].error.as_ref().unwrap();
        assert_eq!(error.kind, ErrorKind::Internal);
        assert!(error.message.contains("boom"), "{}", error.message);
    }

    #[test]
    fn submit_after_close_is_rejected() {
        let pool = doubling_pool(1);
        pool.abort();
        let mut pool = pool;
        assert!(!pool.submit(0, "late".into(), 1, None));
        assert!(pool.join().is_empty());
    }

    #[test]
    fn plan_thread_policy_resolves_oversubscription() {
        // Explicit requests always win, whatever the pool looks like.
        assert_eq!(effective_plan_threads(4, 1), 4);
        assert_eq!(effective_plan_threads(4, 8), 4);
        assert_eq!(effective_plan_threads(1, 8), 1);
        // Auto: a multi-worker pool keeps plans serial; a lone worker
        // hands the plan one thread per core (planner-level 0).
        assert_eq!(effective_plan_threads(0, 2), 1);
        assert_eq!(effective_plan_threads(0, 16), 1);
        assert_eq!(effective_plan_threads(0, 1), 0);
    }
}
