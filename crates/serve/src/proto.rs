//! The daemon's newline-framed JSONL wire protocol.
//!
//! One frame per line, JSON object per frame, in both directions —
//! the same framing `youtiao batch` files use, so a batch input is a
//! valid daemon session. Blank lines and `#` comment lines are
//! skipped. Request frames carry an `op` (`design`, `ping`, `stats`,
//! `shutdown`; a frame with a `request` and no `op` is a design
//! request, so existing batch JSONL streams work unchanged), an
//! optional caller-chosen `rid` echoed verbatim in the response, and
//! an optional `client` name for per-client admission accounting.
//!
//! Responses are emitted **in request order** regardless of completion
//! order, and every response map is key-sorted (the vendored `Map` is
//! a BTreeMap) — so a session's output is a deterministic function of
//! its input plus the executor. In canonical mode design responses
//! additionally omit every run-dependent field (`latency_ms`,
//! `attempts`, `cache_hit`, `shard`, traces) and stats responses
//! reduce to their deterministic counters, making equal-seed sessions
//! byte-identical across shard counts and worker counts.

use std::io::BufRead;

use serde::{Map, Serialize, Value};

use crate::admission::AdmissionStats;
use crate::cache::CacheStats;
use crate::job::JobRecord;

/// One non-empty, non-comment input line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// 1-based line number in the underlying stream (comment and blank
    /// lines count, so errors point at the real file line).
    pub line: usize,
    /// The line's text, without the trailing newline.
    pub text: String,
}

/// Streaming frame reader over any [`BufRead`]: yields one [`Frame`]
/// per payload line without ever buffering the whole stream — the
/// memory footprint is one line, however long the session runs.
///
/// # Example
///
/// ```
/// use youtiao_serve::proto::FramedReader;
///
/// let input = "# comment\n\n{\"op\":\"ping\"}\n";
/// let frames: Vec<_> = FramedReader::new(input.as_bytes())
///     .map(Result::unwrap)
///     .collect();
/// assert_eq!(frames.len(), 1);
/// assert_eq!(frames[0].line, 3);
/// ```
pub struct FramedReader<R> {
    input: R,
    line: usize,
}

impl<R: BufRead> FramedReader<R> {
    /// A reader over `input`, starting at line 1.
    pub fn new(input: R) -> Self {
        FramedReader { input, line: 0 }
    }
}

impl<R: BufRead> Iterator for FramedReader<R> {
    type Item = std::io::Result<Frame>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let mut buf = String::new();
            match self.input.read_line(&mut buf) {
                Err(e) => return Some(Err(e)),
                Ok(0) => return None,
                Ok(_) => {
                    self.line += 1;
                    let text = buf.trim();
                    if text.is_empty() || text.starts_with('#') {
                        continue;
                    }
                    return Some(Ok(Frame {
                        line: self.line,
                        text: text.to_string(),
                    }));
                }
            }
        }
    }
}

/// What a request frame asks the daemon to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Run (or serve from cache) one design request.
    Design,
    /// Liveness probe; answered immediately, in order.
    Ping,
    /// Session counters so far.
    Stats,
    /// Drain in-flight work, answer everything, ack, end the session.
    Shutdown,
}

/// One parsed request frame. All fields optional, so control frames
/// (`{"op":"ping"}`) and bare batch lines (a `DesignRequest` object
/// under `request`) both parse.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DaemonRequest {
    /// Operation name; absent means `design` when `request` is set.
    pub op: Option<String>,
    /// Caller-chosen request id, echoed in the response.
    pub rid: Option<String>,
    /// Client name for per-client admission accounting (default
    /// `"anon"`).
    pub client: Option<String>,
    /// The design request payload (a `DesignRequest` object), for
    /// `design` frames.
    pub request: Option<Value>,
}

impl DaemonRequest {
    /// Resolves the frame's operation, or a protocol error message.
    pub fn op_kind(&self) -> Result<OpKind, String> {
        match self.op.as_deref() {
            Some("design") => Ok(OpKind::Design),
            Some("ping") => Ok(OpKind::Ping),
            Some("stats") => Ok(OpKind::Stats),
            Some("shutdown") => Ok(OpKind::Shutdown),
            Some(other) => Err(format!("unknown op `{other}`")),
            None if self.request.is_some() => Ok(OpKind::Design),
            None => Err("frame has neither an `op` nor a `request`".to_string()),
        }
    }

    /// The client name for admission accounting.
    pub fn client_name(&self) -> &str {
        self.client.as_deref().unwrap_or("anon")
    }
}

fn render(map: Map) -> String {
    serde_json::to_string(&Value::Object(map)).expect("response maps always serialize")
}

fn base_map(op: &str, rid: Option<&String>) -> Map {
    let mut map = Map::new();
    map.insert("op".into(), op.to_value());
    if let Some(rid) = rid {
        map.insert("rid".into(), rid.to_value());
    }
    map
}

/// The response line for a finished design job. Canonical mode keeps
/// only fields that are pure functions of (session input, executor):
/// run-dependent `latency_ms`, `attempts`, `cache_hit` and `shard` are
/// omitted so equal-seed sessions compare byte-identical across shard
/// and worker counts.
pub fn design_response<R: Serialize>(
    record: &JobRecord<R>,
    rid: Option<&String>,
    canonical: bool,
) -> String {
    let mut map = base_map("design", rid);
    map.insert("index".into(), record.index.to_value());
    map.insert("id".into(), record.id.to_value());
    map.insert("status".into(), record.status.to_value());
    map.insert("result".into(), record.result.to_value());
    map.insert("error".into(), record.error.to_value());
    if !canonical {
        map.insert("attempts".into(), record.attempts.to_value());
        map.insert("latency_ms".into(), record.latency_ms.to_value());
        map.insert("cache_hit".into(), record.cache_hit.to_value());
        if let Some(shard) = record.shard {
            map.insert("shard".into(), shard.to_value());
        }
        if let Some(trace) = &record.trace {
            map.insert("trace".into(), trace.to_value());
        }
    }
    render(map)
}

/// The `ping` acknowledgement.
pub fn ping_response(rid: Option<&String>) -> String {
    let mut map = base_map("ping", rid);
    map.insert("ok".into(), true.to_value());
    render(map)
}

/// The `shutdown` acknowledgement — always the session's last line.
pub fn shutdown_response(rid: Option<&String>) -> String {
    let mut map = base_map("shutdown", rid);
    map.insert("ok".into(), true.to_value());
    render(map)
}

/// A protocol-level error (unparsable frame, unknown op). `line` is
/// the input line the frame came from.
pub fn error_response(rid: Option<&String>, line: usize, message: &str) -> String {
    let mut map = base_map("error", rid);
    map.insert("line".into(), line.to_value());
    map.insert("error".into(), message.to_value());
    render(map)
}

/// The `stats` response. Canonical mode keeps only counters that are
/// deterministic for an equal-seed session — requests seen and
/// requests shed — and drops load-dependent ones (in-flight depth,
/// backpressure stalls, cache hit/miss splits, which all vary with
/// worker and shard counts).
pub fn stats_response(
    rid: Option<&String>,
    requests: u64,
    admission: &AdmissionStats,
    cache: &CacheStats,
    in_flight: usize,
    canonical: bool,
) -> String {
    let mut map = base_map("stats", rid);
    map.insert("requests".into(), requests.to_value());
    map.insert("shed".into(), admission.shed.to_value());
    if !canonical {
        map.insert("admitted".into(), admission.admitted.to_value());
        map.insert(
            "backpressure_waits".into(),
            admission.backpressure_waits.to_value(),
        );
        map.insert("in_flight".into(), in_flight.to_value());
        map.insert("cache_entries".into(), cache.entries.to_value());
        map.insert("cache_hits".into(), cache.hits.to_value());
        map.insert("cache_misses".into(), cache.misses.to_value());
        map.insert("cache_evictions".into(), cache.evictions.to_value());
    }
    render(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{ErrorKind, ErrorRecord};

    #[test]
    fn framed_reader_skips_noise_and_numbers_real_lines() {
        let input = "# session\n\n{\"op\":\"ping\"}\n   \n{\"op\":\"stats\"}\n";
        let frames: Vec<Frame> = FramedReader::new(input.as_bytes())
            .map(Result::unwrap)
            .collect();
        assert_eq!(frames.len(), 2);
        assert_eq!(
            (frames[0].line, frames[0].text.as_str()),
            (3, "{\"op\":\"ping\"}")
        );
        assert_eq!(
            (frames[1].line, frames[1].text.as_str()),
            (5, "{\"op\":\"stats\"}")
        );
        // Final line without a trailing newline still frames.
        let frames: Vec<Frame> = FramedReader::new("{\"op\":\"ping\"}".as_bytes())
            .map(Result::unwrap)
            .collect();
        assert_eq!(frames.len(), 1);
    }

    #[test]
    fn op_resolution_defaults_bare_requests_to_design() {
        let control: DaemonRequest = serde_json::from_str(r#"{"op":"ping","rid":"r1"}"#).unwrap();
        assert_eq!(control.op_kind(), Ok(OpKind::Ping));
        assert_eq!(control.client_name(), "anon");

        let bare: DaemonRequest =
            serde_json::from_str(r#"{"request":{"chip":{"topology":"square"}}}"#).unwrap();
        assert_eq!(bare.op_kind(), Ok(OpKind::Design));

        let named: DaemonRequest =
            serde_json::from_str(r#"{"op":"shutdown","client":"alice"}"#).unwrap();
        assert_eq!(named.op_kind(), Ok(OpKind::Shutdown));
        assert_eq!(named.client_name(), "alice");

        let unknown: DaemonRequest = serde_json::from_str(r#"{"op":"reboot"}"#).unwrap();
        assert!(unknown.op_kind().unwrap_err().contains("reboot"));
        let empty: DaemonRequest = serde_json::from_str("{}").unwrap();
        assert!(empty.op_kind().is_err());
    }

    #[test]
    fn canonical_design_responses_drop_run_dependent_fields() {
        let record = JobRecord::ok(2, "j2".into(), 7u32, 3, 41.5)
            .from_cache()
            .with_shard(Some(5));
        let rid = Some("r-7".to_string());

        let full = design_response(&record, rid.as_ref(), false);
        let v: Value = serde_json::from_str(&full).unwrap();
        assert_eq!(v["op"], "design");
        assert_eq!(v["rid"], "r-7");
        assert_eq!(v["attempts"], 3);
        assert_eq!(v["cache_hit"], true);
        assert_eq!(v["shard"], 5);

        let canon = design_response(&record, rid.as_ref(), true);
        let v: Value = serde_json::from_str(&canon).unwrap();
        assert_eq!(v["result"], 7);
        assert_eq!(v["index"], 2);
        for dropped in ["attempts", "latency_ms", "cache_hit", "shard", "trace"] {
            assert!(v.get(dropped).is_none(), "{dropped} leaked into canonical");
        }
        // Key-sorted map -> stable bytes for equal inputs.
        assert_eq!(canon, design_response(&record, rid.as_ref(), true));

        let failed = JobRecord::<u32>::error(
            0,
            "j0".into(),
            ErrorRecord {
                kind: ErrorKind::Shed,
                message: "deadline infeasible".into(),
            },
            0,
            0.0,
        );
        let v: Value = serde_json::from_str(&design_response(&failed, None, true)).unwrap();
        assert_eq!(v["status"], "Error");
        assert_eq!(v["error"]["kind"], "Shed");
        assert!(v.get("rid").is_none());
    }

    #[test]
    fn control_responses_are_stable_one_liners() {
        let rid = Some("c1".to_string());
        let ping: Value = serde_json::from_str(&ping_response(rid.as_ref())).unwrap();
        assert_eq!(
            (ping["op"].clone(), ping["ok"].clone()),
            ("ping".to_value(), true.to_value())
        );
        let down: Value = serde_json::from_str(&shutdown_response(None)).unwrap();
        assert_eq!(down["op"], "shutdown");
        let err: Value =
            serde_json::from_str(&error_response(rid.as_ref(), 12, "unknown op `x`")).unwrap();
        assert_eq!(err["line"], 12);
        assert_eq!(err["error"], "unknown op `x`");

        let admission = AdmissionStats {
            admitted: 5,
            shed: 2,
            backpressure_waits: 3,
            max_in_flight: 4,
        };
        let cache = CacheStats {
            entries: 1,
            capacity: 8,
            hits: 6,
            misses: 1,
            evictions: 0,
        };
        let full: Value =
            serde_json::from_str(&stats_response(None, 9, &admission, &cache, 2, false)).unwrap();
        assert_eq!(full["requests"], 9);
        assert_eq!(full["shed"], 2);
        assert_eq!(full["cache_hits"], 6);
        assert_eq!(full["in_flight"], 2);

        let canon: Value =
            serde_json::from_str(&stats_response(None, 9, &admission, &cache, 2, true)).unwrap();
        assert_eq!(canon["requests"], 9);
        assert_eq!(canon["shed"], 2);
        for dropped in ["admitted", "backpressure_waits", "in_flight", "cache_hits"] {
            assert!(
                canon.get(dropped).is_none(),
                "{dropped} leaked into canonical"
            );
        }
    }
}
