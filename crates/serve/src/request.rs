//! Serializable design requests.
//!
//! A [`DesignRequest`] is one line of the `youtiao batch` JSONL input:
//! which chip to wire (a named topology generator or an inline
//! [`ChipSpec`]) plus the planner knobs a sweep varies — θ, FDM/readout
//! capacity, DEMUX fan-out, seed — and per-job service parameters
//! (deadline). The serving crate resolves requests to `(Chip,
//! PlannerConfig, seed)` itself so the worker pool and cache stay
//! independent of the facade crate.

use youtiao_chip::multi::{LinkTopology, MultiDieChip};
use youtiao_chip::spec::ChipSpec;
use youtiao_chip::surface::SurfaceCode;
use youtiao_chip::{topology, Chip, ChipError};
use youtiao_core::PlannerConfig;

use crate::cache::content_key;

/// Default characterization seed, matching `DesignOptions::default()`
/// in the facade (`"YOUT"` in ASCII).
pub const DEFAULT_SEED: u64 = 0x594F_5554;

/// Errors resolving a request into a chip.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RequestError {
    /// Neither `topology` nor `spec` was given.
    MissingChip,
    /// `topology` named no built-in generator.
    UnknownTopology(String),
    /// A parameter was out of range for the chosen topology.
    BadParameter(&'static str),
    /// The inline spec failed chip validation.
    Chip(ChipError),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::MissingChip => f.write_str("request needs a `topology` or a `spec`"),
            RequestError::UnknownTopology(name) => write!(f, "unknown topology `{name}`"),
            RequestError::BadParameter(what) => write!(f, "bad parameter: {what}"),
            RequestError::Chip(e) => write!(f, "invalid chip spec: {e}"),
        }
    }
}

impl std::error::Error for RequestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RequestError::Chip(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ChipError> for RequestError {
    fn from(e: ChipError) -> Self {
        RequestError::Chip(e)
    }
}

/// The chip half of a request: a named generator or an inline spec.
///
/// Exactly the shapes the `youtiao` CLI accepts: `topology` is one of
/// the built-in generator names (`square`, `heavy-square`, `hexagon`,
/// `heavy-hexagon`, `low-density`, `sycamore`, `linear`, `ring`,
/// `surface`, `ibm-heavy-hex`) with `rows`/`cols`/`size`/`distance` as
/// applicable; `spec` is a full [`ChipSpec`] and wins when both are set.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChipRequest {
    /// Built-in generator name.
    pub topology: Option<String>,
    /// Grid rows (default 3).
    pub rows: Option<usize>,
    /// Grid columns (default 3).
    pub cols: Option<usize>,
    /// Qubit count for `linear`/`ring`/`ibm-heavy-hex` (default 16).
    pub size: Option<usize>,
    /// Code distance for `surface` (odd, ≥ 3).
    pub distance: Option<usize>,
    /// Inline chip description; overrides `topology`.
    pub spec: Option<ChipSpec>,
    /// Number of chiplet dies: the single-die chip this request
    /// otherwise describes becomes the per-die template, tiled into a
    /// near-square array. Absent or `1` plans monolithically.
    pub chiplets: Option<usize>,
    /// Inter-chiplet link topology (`"grid"`, `"torus"`, `"isolated"`);
    /// default `grid`. Only meaningful with `chiplets` > 1.
    pub link_topology: Option<String>,
}

impl ChipRequest {
    /// A request for a named generator with default dimensions.
    pub fn named(topology: impl Into<String>) -> Self {
        ChipRequest {
            topology: Some(topology.into()),
            rows: None,
            cols: None,
            size: None,
            distance: None,
            spec: None,
            chiplets: None,
            link_topology: None,
        }
    }

    /// A `rows × cols` request for a named grid generator.
    pub fn grid(topology: impl Into<String>, rows: usize, cols: usize) -> Self {
        ChipRequest {
            rows: Some(rows),
            cols: Some(cols),
            ..ChipRequest::named(topology)
        }
    }

    /// Builds the chip this request describes.
    ///
    /// # Errors
    ///
    /// Returns [`RequestError`] for missing/unknown topologies, bad
    /// dimensions, or invalid inline specs.
    pub fn build(&self) -> Result<Chip, RequestError> {
        if let Some(spec) = &self.spec {
            return Ok(spec.to_chip()?);
        }
        let Some(topology_name) = &self.topology else {
            return Err(RequestError::MissingChip);
        };
        let rows = self.rows.unwrap_or(3);
        let cols = self.cols.unwrap_or(3);
        let size = self.size.unwrap_or(16);
        if rows == 0 || cols == 0 || size == 0 {
            return Err(RequestError::BadParameter("dimensions must be positive"));
        }
        let chip = match topology_name.as_str() {
            "square" => topology::square_grid(rows, cols),
            "heavy-square" => topology::heavy_square(rows, cols),
            "hexagon" => topology::hexagon_patch(rows, cols),
            "heavy-hexagon" => topology::heavy_hexagon(rows, cols),
            "low-density" => topology::low_density(rows, cols.max(2)),
            "sycamore" => topology::sycamore(rows, cols),
            "linear" => topology::linear(size),
            "ring" => topology::ring(size.max(3)),
            "ibm-heavy-hex" => topology::ibm_heavy_hex(size.max(12)),
            "surface" => {
                let d = self.distance.unwrap_or(3);
                if d < 3 || d.is_multiple_of(2) {
                    return Err(RequestError::BadParameter("distance must be odd and >= 3"));
                }
                SurfaceCode::rotated(d).into_chip()
            }
            other => return Err(RequestError::UnknownTopology(other.to_string())),
        };
        Ok(chip)
    }

    /// Whether this request describes a multi-die chiplet array.
    pub fn is_multi(&self) -> bool {
        self.chiplets.unwrap_or(1) > 1
    }

    /// The effective link-topology name (default `"grid"`).
    pub fn link_topology_name(&self) -> &str {
        self.link_topology.as_deref().unwrap_or("grid")
    }

    /// Builds the chiplet array this request describes: the single-die
    /// chip ([`build`](Self::build)) as the template, tiled into the
    /// near-square `chiplets`-die array (rows = the largest divisor ≤
    /// √n, so 4 → 2×2, 6 → 2×3, 5 → 1×5).
    ///
    /// # Errors
    ///
    /// Everything [`build`](Self::build) returns, plus
    /// [`RequestError::BadParameter`] for `chiplets` = 0 or an unknown
    /// link-topology name.
    pub fn build_multi(&self) -> Result<MultiDieChip, RequestError> {
        let template = self.build()?;
        let n = self.chiplets.unwrap_or(1);
        if n == 0 {
            return Err(RequestError::BadParameter("chiplets must be positive"));
        }
        let link_topology = LinkTopology::parse(self.link_topology_name()).ok_or(
            RequestError::BadParameter("link_topology must be grid, torus or isolated"),
        )?;
        let (rows, cols) = near_square(n);
        Ok(MultiDieChip::tile(&template, rows, cols, link_topology)?)
    }
}

/// The near-square R×C factorization of `n`: rows is the largest
/// divisor of `n` that is ≤ √n (4 → 2×2, 6 → 2×3, 5 → 1×5). This is
/// the tiling shape used everywhere a bare die count becomes a chiplet
/// array — requests, sweeps and the CLI agree on it.
pub fn near_square(n: usize) -> (usize, usize) {
    let mut rows = 1;
    for r in 2..=n {
        if r * r > n {
            break;
        }
        if n.is_multiple_of(r) {
            rows = r;
        }
    }
    (rows, n / rows)
}

/// One synthetic crosstalk-drift entry in a [`DeltaSpec`]: the
/// crosstalk between qubits `a` and `b` is now `xtalk`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DriftEntry {
    /// First qubit index.
    pub a: u32,
    /// Second qubit index.
    pub b: u32,
    /// New crosstalk value for the pair (replaces the base entry).
    pub xtalk: f64,
}

/// One activity override in a [`DeltaSpec`]: set the round-robin
/// activity mask of a qubit or a coupler. Exactly one of `qubit` /
/// `coupler` should be set; entries with neither are ignored.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ActivityOverride {
    /// Qubit index whose activity mask to override.
    pub qubit: Option<u32>,
    /// Coupler index whose activity mask to override.
    pub coupler: Option<u32>,
    /// New activity bitmask (bit `i` = active in slot `i`).
    pub mask: u32,
}

/// An input delta relative to a base request: the warm-path repair form
/// of a [`DesignRequest`]. A request carrying a `delta` asks the server
/// to plan the *base* inputs (the request without the delta), apply
/// these changes, and answer with an incrementally repaired plan
/// instead of replanning from scratch.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DeltaSpec {
    /// Crosstalk-matrix drift entries (pairwise overwrites).
    pub drift: Option<Vec<DriftEntry>>,
    /// Couplers (by endpoint qubit indices) that died since the base.
    pub dead_couplers: Option<Vec<(u32, u32)>>,
    /// Activity-profile overrides.
    pub activity: Option<Vec<ActivityOverride>>,
}

impl DeltaSpec {
    /// Whether the delta changes nothing (all sections absent or empty).
    pub fn is_empty(&self) -> bool {
        self.drift.as_ref().is_none_or(Vec::is_empty)
            && self.dead_couplers.as_ref().is_none_or(Vec::is_empty)
            && self.activity.as_ref().is_none_or(Vec::is_empty)
    }
}

/// One design job: chip + planner knobs + service parameters.
///
/// # Example
///
/// ```
/// use youtiao_serve::{ChipRequest, DesignRequest};
///
/// let json = r#"{"id":"sq3","chip":{"topology":"square","rows":3,"cols":3},"theta":4.0}"#;
/// let request: DesignRequest = serde_json::from_str(json).unwrap();
/// assert_eq!(request.id.as_deref(), Some("sq3"));
/// assert_eq!(request.chip.build().unwrap().num_qubits(), 9);
/// assert_eq!(request.planner_config().tdm.theta, 4.0);
/// # let _ = DesignRequest::new(ChipRequest::named("square"));
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DesignRequest {
    /// Caller-chosen job id, echoed in the result record.
    pub id: Option<String>,
    /// The chip to wire.
    pub chip: ChipRequest,
    /// Characterization seed (default [`DEFAULT_SEED`]).
    pub seed: Option<u64>,
    /// TDM threshold θ (default 4.0).
    pub theta: Option<f64>,
    /// Qubits per shared FDM XY line.
    pub fdm_capacity: Option<usize>,
    /// Qubits per multiplexed readout feedline.
    pub readout_capacity: Option<usize>,
    /// Allow 1:8 cryo-DEMUXes for low-parallelism groups.
    pub one_to_eight: Option<bool>,
    /// Run local-search refinement of the TDM grouping (default false).
    pub refine: Option<bool>,
    /// Run chip-level channel routing too (default true).
    pub routing: Option<bool>,
    /// Per-job deadline override, milliseconds.
    pub deadline_ms: Option<u64>,
    /// Shared cryostat coax budget to partition across dies (multi-die
    /// requests only; validation flags dies whose requirement exceeds
    /// their allowance).
    pub coax_budget: Option<usize>,
    /// Expected base content-address (the hex form of
    /// [`base_key`](Self::base_key)). Optional guard for delta
    /// requests: when set and it disagrees with the server's computed
    /// base key, the request is rejected instead of silently repairing
    /// from different inputs than the caller assumed.
    pub base: Option<String>,
    /// Input delta relative to the base request; present means "repair
    /// the base plan" rather than "plan these inputs from scratch".
    pub delta: Option<DeltaSpec>,
}

impl DesignRequest {
    /// A request with default knobs for `chip`.
    pub fn new(chip: ChipRequest) -> Self {
        DesignRequest {
            id: None,
            chip,
            seed: None,
            theta: None,
            fdm_capacity: None,
            readout_capacity: None,
            one_to_eight: None,
            refine: None,
            routing: None,
            deadline_ms: None,
            coax_budget: None,
            base: None,
            delta: None,
        }
    }

    /// The effective delta: `Some` only when a non-empty [`DeltaSpec`]
    /// was given (an empty delta is the base request).
    pub fn effective_delta(&self) -> Option<&DeltaSpec> {
        self.delta.as_ref().filter(|delta| !delta.is_empty())
    }

    /// The effective characterization seed.
    pub fn seed(&self) -> u64 {
        self.seed.unwrap_or(DEFAULT_SEED)
    }

    /// Whether chip-level routing was requested.
    pub fn wants_routing(&self) -> bool {
        self.routing.unwrap_or(true)
    }

    /// The job id to report: the caller's, or `job-<index>`.
    pub fn display_id(&self, index: usize) -> String {
        self.id.clone().unwrap_or_else(|| format!("job-{index}"))
    }

    /// The planner configuration the knobs describe (defaults for
    /// everything unset).
    pub fn planner_config(&self) -> PlannerConfig {
        let mut config = PlannerConfig::default();
        if let Some(theta) = self.theta {
            config.tdm.theta = theta;
        }
        if let Some(capacity) = self.fdm_capacity {
            config.fdm_capacity = capacity;
        }
        if let Some(capacity) = self.readout_capacity {
            config.readout_capacity = capacity;
        }
        if let Some(one_to_eight) = self.one_to_eight {
            config.tdm.allow_one_to_eight = one_to_eight;
        }
        if self.refine.unwrap_or(false) {
            config.refine = Some(youtiao_core::RefineConfig::default());
        }
        config
    }

    /// The content-address of the request's *base* computation: a
    /// stable hash of the resolved chip spec, the planner knobs, and
    /// the seed — everything except the delta. For delta-less requests
    /// this is the cache key itself; for delta requests it addresses
    /// the base plan the repair path starts from.
    ///
    /// # Errors
    ///
    /// Returns [`RequestError`] when the chip half does not resolve.
    pub fn base_key(&self) -> Result<u64, RequestError> {
        let spec = ChipSpec::from_chip(&self.chip.build()?);
        let knobs = (
            (
                self.theta.unwrap_or(4.0),
                self.fdm_capacity.unwrap_or(0) as u64,
                self.readout_capacity.unwrap_or(0) as u64,
            ),
            (
                self.one_to_eight.unwrap_or(false),
                self.wants_routing(),
                self.seed(),
            ),
            self.refine.unwrap_or(false),
        );
        let key = content_key(&(spec, knobs));
        // Multi-die parameters fold in only when the request is actually
        // multi-die, so every pre-chiplet request keeps its historical
        // content-address (warm caches and pinned hashes stay valid).
        if self.chip.is_multi() {
            let multi = (
                self.chip.chiplets.unwrap_or(1) as u64,
                self.chip.link_topology_name().to_string(),
                self.coax_budget.map(|b| b as u64),
            );
            return Ok(content_key(&(key, multi)));
        }
        Ok(key)
    }

    /// The content-address of this request's computation: a stable hash
    /// of the *resolved* chip spec, the planner knobs, and the seed —
    /// so two requests that mean the same design share a cache entry
    /// regardless of id, deadline, or how the chip was named. A
    /// non-empty `delta` is folded in on top of [`base_key`](Self::base_key),
    /// so a delta request never collides with its base.
    ///
    /// # Errors
    ///
    /// Returns [`RequestError`] when the chip half does not resolve.
    pub fn cache_key(&self) -> Result<u64, RequestError> {
        let base = self.base_key()?;
        match self.effective_delta() {
            Some(delta) => Ok(content_key(&(base, delta.clone()))),
            None => Ok(base),
        }
    }
}

/// A deterministically drifted variant of `request`: appends one
/// synthetic crosstalk-drift entry — derived from `seed` alone — to the
/// request's delta, turning it into a warm-path repair job over the
/// same base. This is the mutation the chaos harness's `Drift` fault
/// injects mid-batch. The request is returned unchanged when its chip
/// half does not resolve or has fewer than two qubits.
pub fn synthetic_drift(request: &DesignRequest, seed: u64) -> DesignRequest {
    let mut drifted = request.clone();
    let Ok(chip) = request.chip.build() else {
        return drifted;
    };
    let n = chip.num_qubits() as u64;
    if n < 2 {
        return drifted;
    }
    let h1 = crate::fault::splitmix64(seed ^ 0x0059_5245_5041_4952);
    let h2 = crate::fault::splitmix64(h1);
    let h3 = crate::fault::splitmix64(h2);
    let a = h1 % n;
    let b = (a + 1 + h2 % (n - 1)) % n;
    let (a, b) = (a.min(b) as u32, a.max(b) as u32);
    // Drift magnitude in [1e-3, 1e-2): large enough to move kernels,
    // small enough to stay a plausible calibration shift.
    let xtalk = 1e-3 + (h3 % 9_000) as f64 * 1e-6;
    let delta = drifted.delta.get_or_insert_with(DeltaSpec::default);
    delta
        .drift
        .get_or_insert_with(Vec::new)
        .push(DriftEntry { a, b, xtalk });
    drifted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_topologies_build() {
        for name in [
            "square",
            "heavy-square",
            "hexagon",
            "heavy-hexagon",
            "sycamore",
            "linear",
            "ring",
            "surface",
        ] {
            let chip = ChipRequest::named(name).build().unwrap();
            assert!(chip.num_qubits() > 0, "{name}");
        }
    }

    #[test]
    fn bad_requests_are_classified() {
        let missing = ChipRequest {
            topology: None,
            ..ChipRequest::named("")
        };
        assert_eq!(missing.build().unwrap_err(), RequestError::MissingChip);
        assert!(matches!(
            ChipRequest::named("dodecahedron").build().unwrap_err(),
            RequestError::UnknownTopology(_)
        ));
        let mut even = ChipRequest::named("surface");
        even.distance = Some(4);
        assert!(matches!(
            even.build().unwrap_err(),
            RequestError::BadParameter(_)
        ));
        assert!(matches!(
            ChipRequest::grid("square", 0, 3).build().unwrap_err(),
            RequestError::BadParameter(_)
        ));
    }

    #[test]
    fn spec_overrides_topology_and_validates() {
        let spec = ChipSpec::from_chip(&topology::linear(4));
        let mut request = ChipRequest::named("square");
        request.spec = Some(spec);
        assert_eq!(request.build().unwrap().num_qubits(), 4);

        let broken = ChipSpec {
            name: "b".into(),
            qubits: vec![],
            couplers: vec![],
        };
        let mut request = ChipRequest::named("square");
        request.spec = Some(broken);
        let err = request.build().unwrap_err();
        assert!(matches!(err, RequestError::Chip(_)));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn cache_key_ignores_id_and_deadline_but_not_knobs() {
        let base = DesignRequest::new(ChipRequest::grid("square", 3, 3));
        let mut renamed = base.clone();
        renamed.id = Some("x".into());
        renamed.deadline_ms = Some(5);
        assert_eq!(base.cache_key().unwrap(), renamed.cache_key().unwrap());

        let mut hotter = base.clone();
        hotter.theta = Some(6.0);
        assert_ne!(base.cache_key().unwrap(), hotter.cache_key().unwrap());
        let mut reseeded = base.clone();
        reseeded.seed = Some(1);
        assert_ne!(base.cache_key().unwrap(), reseeded.cache_key().unwrap());

        let mut refined = base.clone();
        refined.refine = Some(true);
        assert_ne!(base.cache_key().unwrap(), refined.cache_key().unwrap());
        assert!(refined.planner_config().refine.is_some());
        assert!(base.planner_config().refine.is_none());
    }

    #[test]
    fn delta_requests_get_their_own_cache_key_over_the_base() {
        let base = DesignRequest::new(ChipRequest::grid("square", 3, 3));
        let mut drifted = base.clone();
        drifted.delta = Some(DeltaSpec {
            drift: Some(vec![DriftEntry {
                a: 0,
                b: 4,
                xtalk: 2e-3,
            }]),
            ..DeltaSpec::default()
        });
        // The delta folds into the cache key but not the base key.
        assert_eq!(base.base_key().unwrap(), drifted.base_key().unwrap());
        assert_eq!(base.cache_key().unwrap(), base.base_key().unwrap());
        assert_ne!(base.cache_key().unwrap(), drifted.cache_key().unwrap());
        assert!(drifted.effective_delta().is_some());

        // An empty delta is the base request under both keys.
        let mut noop = base.clone();
        noop.delta = Some(DeltaSpec::default());
        assert!(noop.delta.as_ref().unwrap().is_empty());
        assert!(noop.effective_delta().is_none());
        assert_eq!(noop.cache_key().unwrap(), base.cache_key().unwrap());

        // Different deltas, different keys.
        let mut dead = base.clone();
        dead.delta = Some(DeltaSpec {
            dead_couplers: Some(vec![(0, 1)]),
            ..DeltaSpec::default()
        });
        assert_ne!(dead.cache_key().unwrap(), drifted.cache_key().unwrap());
    }

    #[test]
    fn delta_request_roundtrips_and_old_lines_still_parse() {
        let mut request = DesignRequest::new(ChipRequest::grid("square", 4, 4));
        request.base = Some("00000000000000aa".into());
        request.delta = Some(DeltaSpec {
            drift: Some(vec![DriftEntry {
                a: 1,
                b: 6,
                xtalk: 3e-3,
            }]),
            dead_couplers: Some(vec![(2, 3)]),
            activity: Some(vec![ActivityOverride {
                qubit: Some(5),
                coupler: None,
                mask: 0b101,
            }]),
        });
        let line = serde_json::to_string(&request).unwrap();
        let back: DesignRequest = serde_json::from_str(&line).unwrap();
        assert_eq!(back, request);

        // Pre-delta request lines (no base/delta fields) still parse.
        let old: DesignRequest =
            serde_json::from_str(r#"{"chip":{"topology":"square"},"theta":5.0}"#).unwrap();
        assert!(old.base.is_none() && old.delta.is_none());
        assert!(old.effective_delta().is_none());
    }

    #[test]
    fn synthetic_drift_is_deterministic_and_in_range() {
        let base = DesignRequest::new(ChipRequest::grid("square", 3, 3));
        let a = synthetic_drift(&base, 7);
        let b = synthetic_drift(&base, 7);
        let c = synthetic_drift(&base, 8);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds drift different entries");

        let delta = a.effective_delta().unwrap();
        let entry = &delta.drift.as_ref().unwrap()[0];
        assert!(entry.a < entry.b, "endpoints are normalized");
        assert!((entry.b as usize) < 9, "endpoints index the chip");
        assert!((1e-3..1e-2).contains(&entry.xtalk), "{}", entry.xtalk);

        // Drifting again appends a second entry over the same base.
        let twice = synthetic_drift(&a, 9);
        assert_eq!(
            twice
                .effective_delta()
                .unwrap()
                .drift
                .as_ref()
                .unwrap()
                .len(),
            2
        );
        assert_eq!(twice.base_key().unwrap(), base.base_key().unwrap());

        // Unresolvable chips pass through untouched.
        let bad = DesignRequest::new(ChipRequest::named("klein-bottle"));
        assert_eq!(synthetic_drift(&bad, 7), bad);
    }

    #[test]
    fn chiplet_requests_tile_near_square() {
        assert_eq!(near_square(1), (1, 1));
        assert_eq!(near_square(4), (2, 2));
        assert_eq!(near_square(5), (1, 5));
        assert_eq!(near_square(6), (2, 3));
        assert_eq!(near_square(10), (2, 5));
        assert_eq!(near_square(25), (5, 5));

        let mut request = ChipRequest::grid("heavy-hexagon", 2, 2);
        assert!(!request.is_multi());
        request.chiplets = Some(4);
        assert!(request.is_multi());
        let mdc = request.build_multi().unwrap();
        assert_eq!(mdc.num_dies(), 4);
        assert_eq!((mdc.rows(), mdc.cols()), (2, 2));
        assert_eq!(
            mdc.total_qubits(),
            4 * request.build().unwrap().num_qubits()
        );

        request.link_topology = Some("isolated".into());
        assert!(request.build_multi().unwrap().links().is_empty());
        request.link_topology = Some("mesh".into());
        assert!(matches!(
            request.build_multi().unwrap_err(),
            RequestError::BadParameter(_)
        ));
        request.link_topology = None;
        request.chiplets = Some(0);
        assert!(matches!(
            request.build_multi().unwrap_err(),
            RequestError::BadParameter(_)
        ));
    }

    #[test]
    fn chiplet_knobs_fold_into_the_key_only_when_multi() {
        let mono = DesignRequest::new(ChipRequest::grid("square", 3, 3));
        // chiplets = 1 (explicit or absent) is the monolithic request:
        // identical content-address.
        let mut one = mono.clone();
        one.chip.chiplets = Some(1);
        one.chip.link_topology = Some("grid".into());
        assert_eq!(mono.base_key().unwrap(), one.base_key().unwrap());

        let mut four = mono.clone();
        four.chip.chiplets = Some(4);
        assert_ne!(mono.base_key().unwrap(), four.base_key().unwrap());

        let mut torus = four.clone();
        torus.chip.link_topology = Some("torus".into());
        assert_ne!(four.base_key().unwrap(), torus.base_key().unwrap());

        let mut budgeted = four.clone();
        budgeted.coax_budget = Some(120);
        assert_ne!(four.base_key().unwrap(), budgeted.base_key().unwrap());
        // The budget is a multi-die knob: it does not disturb monolithic
        // keys.
        let mut mono_budget = mono.clone();
        mono_budget.coax_budget = Some(120);
        assert_eq!(mono.base_key().unwrap(), mono_budget.base_key().unwrap());

        // Old request lines without the new fields still parse.
        let old: DesignRequest =
            serde_json::from_str(r#"{"chip":{"topology":"square"},"theta":5.0}"#).unwrap();
        assert!(!old.chip.is_multi());
        assert!(old.coax_budget.is_none());
    }

    #[test]
    fn jsonl_line_roundtrip() {
        let mut request = DesignRequest::new(ChipRequest::grid("hexagon", 2, 2));
        request.id = Some("hex".into());
        request.one_to_eight = Some(true);
        let line = serde_json::to_string(&request).unwrap();
        let back: DesignRequest = serde_json::from_str(&line).unwrap();
        assert_eq!(back, request);
        assert!(back.planner_config().tdm.allow_one_to_eight);
    }
}
