//! Serializable design requests.
//!
//! A [`DesignRequest`] is one line of the `youtiao batch` JSONL input:
//! which chip to wire (a named topology generator or an inline
//! [`ChipSpec`]) plus the planner knobs a sweep varies — θ, FDM/readout
//! capacity, DEMUX fan-out, seed — and per-job service parameters
//! (deadline). The serving crate resolves requests to `(Chip,
//! PlannerConfig, seed)` itself so the worker pool and cache stay
//! independent of the facade crate.

use youtiao_chip::spec::ChipSpec;
use youtiao_chip::surface::SurfaceCode;
use youtiao_chip::{topology, Chip, ChipError};
use youtiao_core::PlannerConfig;

use crate::cache::content_key;

/// Default characterization seed, matching `DesignOptions::default()`
/// in the facade (`"YOUT"` in ASCII).
pub const DEFAULT_SEED: u64 = 0x594F_5554;

/// Errors resolving a request into a chip.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RequestError {
    /// Neither `topology` nor `spec` was given.
    MissingChip,
    /// `topology` named no built-in generator.
    UnknownTopology(String),
    /// A parameter was out of range for the chosen topology.
    BadParameter(&'static str),
    /// The inline spec failed chip validation.
    Chip(ChipError),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::MissingChip => f.write_str("request needs a `topology` or a `spec`"),
            RequestError::UnknownTopology(name) => write!(f, "unknown topology `{name}`"),
            RequestError::BadParameter(what) => write!(f, "bad parameter: {what}"),
            RequestError::Chip(e) => write!(f, "invalid chip spec: {e}"),
        }
    }
}

impl std::error::Error for RequestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RequestError::Chip(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ChipError> for RequestError {
    fn from(e: ChipError) -> Self {
        RequestError::Chip(e)
    }
}

/// The chip half of a request: a named generator or an inline spec.
///
/// Exactly the shapes the `youtiao` CLI accepts: `topology` is one of
/// the built-in generator names (`square`, `heavy-square`, `hexagon`,
/// `heavy-hexagon`, `low-density`, `sycamore`, `linear`, `ring`,
/// `surface`, `ibm-heavy-hex`) with `rows`/`cols`/`size`/`distance` as
/// applicable; `spec` is a full [`ChipSpec`] and wins when both are set.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChipRequest {
    /// Built-in generator name.
    pub topology: Option<String>,
    /// Grid rows (default 3).
    pub rows: Option<usize>,
    /// Grid columns (default 3).
    pub cols: Option<usize>,
    /// Qubit count for `linear`/`ring`/`ibm-heavy-hex` (default 16).
    pub size: Option<usize>,
    /// Code distance for `surface` (odd, ≥ 3).
    pub distance: Option<usize>,
    /// Inline chip description; overrides `topology`.
    pub spec: Option<ChipSpec>,
}

impl ChipRequest {
    /// A request for a named generator with default dimensions.
    pub fn named(topology: impl Into<String>) -> Self {
        ChipRequest {
            topology: Some(topology.into()),
            rows: None,
            cols: None,
            size: None,
            distance: None,
            spec: None,
        }
    }

    /// A `rows × cols` request for a named grid generator.
    pub fn grid(topology: impl Into<String>, rows: usize, cols: usize) -> Self {
        ChipRequest {
            rows: Some(rows),
            cols: Some(cols),
            ..ChipRequest::named(topology)
        }
    }

    /// Builds the chip this request describes.
    ///
    /// # Errors
    ///
    /// Returns [`RequestError`] for missing/unknown topologies, bad
    /// dimensions, or invalid inline specs.
    pub fn build(&self) -> Result<Chip, RequestError> {
        if let Some(spec) = &self.spec {
            return Ok(spec.to_chip()?);
        }
        let Some(topology_name) = &self.topology else {
            return Err(RequestError::MissingChip);
        };
        let rows = self.rows.unwrap_or(3);
        let cols = self.cols.unwrap_or(3);
        let size = self.size.unwrap_or(16);
        if rows == 0 || cols == 0 || size == 0 {
            return Err(RequestError::BadParameter("dimensions must be positive"));
        }
        let chip = match topology_name.as_str() {
            "square" => topology::square_grid(rows, cols),
            "heavy-square" => topology::heavy_square(rows, cols),
            "hexagon" => topology::hexagon_patch(rows, cols),
            "heavy-hexagon" => topology::heavy_hexagon(rows, cols),
            "low-density" => topology::low_density(rows, cols.max(2)),
            "sycamore" => topology::sycamore(rows, cols),
            "linear" => topology::linear(size),
            "ring" => topology::ring(size.max(3)),
            "ibm-heavy-hex" => topology::ibm_heavy_hex(size.max(12)),
            "surface" => {
                let d = self.distance.unwrap_or(3);
                if d < 3 || d.is_multiple_of(2) {
                    return Err(RequestError::BadParameter("distance must be odd and >= 3"));
                }
                SurfaceCode::rotated(d).into_chip()
            }
            other => return Err(RequestError::UnknownTopology(other.to_string())),
        };
        Ok(chip)
    }
}

/// One design job: chip + planner knobs + service parameters.
///
/// # Example
///
/// ```
/// use youtiao_serve::{ChipRequest, DesignRequest};
///
/// let json = r#"{"id":"sq3","chip":{"topology":"square","rows":3,"cols":3},"theta":4.0}"#;
/// let request: DesignRequest = serde_json::from_str(json).unwrap();
/// assert_eq!(request.id.as_deref(), Some("sq3"));
/// assert_eq!(request.chip.build().unwrap().num_qubits(), 9);
/// assert_eq!(request.planner_config().tdm.theta, 4.0);
/// # let _ = DesignRequest::new(ChipRequest::named("square"));
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DesignRequest {
    /// Caller-chosen job id, echoed in the result record.
    pub id: Option<String>,
    /// The chip to wire.
    pub chip: ChipRequest,
    /// Characterization seed (default [`DEFAULT_SEED`]).
    pub seed: Option<u64>,
    /// TDM threshold θ (default 4.0).
    pub theta: Option<f64>,
    /// Qubits per shared FDM XY line.
    pub fdm_capacity: Option<usize>,
    /// Qubits per multiplexed readout feedline.
    pub readout_capacity: Option<usize>,
    /// Allow 1:8 cryo-DEMUXes for low-parallelism groups.
    pub one_to_eight: Option<bool>,
    /// Run local-search refinement of the TDM grouping (default false).
    pub refine: Option<bool>,
    /// Run chip-level channel routing too (default true).
    pub routing: Option<bool>,
    /// Per-job deadline override, milliseconds.
    pub deadline_ms: Option<u64>,
}

impl DesignRequest {
    /// A request with default knobs for `chip`.
    pub fn new(chip: ChipRequest) -> Self {
        DesignRequest {
            id: None,
            chip,
            seed: None,
            theta: None,
            fdm_capacity: None,
            readout_capacity: None,
            one_to_eight: None,
            refine: None,
            routing: None,
            deadline_ms: None,
        }
    }

    /// The effective characterization seed.
    pub fn seed(&self) -> u64 {
        self.seed.unwrap_or(DEFAULT_SEED)
    }

    /// Whether chip-level routing was requested.
    pub fn wants_routing(&self) -> bool {
        self.routing.unwrap_or(true)
    }

    /// The job id to report: the caller's, or `job-<index>`.
    pub fn display_id(&self, index: usize) -> String {
        self.id.clone().unwrap_or_else(|| format!("job-{index}"))
    }

    /// The planner configuration the knobs describe (defaults for
    /// everything unset).
    pub fn planner_config(&self) -> PlannerConfig {
        let mut config = PlannerConfig::default();
        if let Some(theta) = self.theta {
            config.tdm.theta = theta;
        }
        if let Some(capacity) = self.fdm_capacity {
            config.fdm_capacity = capacity;
        }
        if let Some(capacity) = self.readout_capacity {
            config.readout_capacity = capacity;
        }
        if let Some(one_to_eight) = self.one_to_eight {
            config.tdm.allow_one_to_eight = one_to_eight;
        }
        if self.refine.unwrap_or(false) {
            config.refine = Some(youtiao_core::RefineConfig::default());
        }
        config
    }

    /// The content-address of this request's computation: a stable hash
    /// of the *resolved* chip spec, the planner knobs, and the seed —
    /// so two requests that mean the same design share a cache entry
    /// regardless of id, deadline, or how the chip was named.
    ///
    /// # Errors
    ///
    /// Returns [`RequestError`] when the chip half does not resolve.
    pub fn cache_key(&self) -> Result<u64, RequestError> {
        let spec = ChipSpec::from_chip(&self.chip.build()?);
        let knobs = (
            (
                self.theta.unwrap_or(4.0),
                self.fdm_capacity.unwrap_or(0) as u64,
                self.readout_capacity.unwrap_or(0) as u64,
            ),
            (
                self.one_to_eight.unwrap_or(false),
                self.wants_routing(),
                self.seed(),
            ),
            self.refine.unwrap_or(false),
        );
        Ok(content_key(&(spec, knobs)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_topologies_build() {
        for name in [
            "square",
            "heavy-square",
            "hexagon",
            "heavy-hexagon",
            "sycamore",
            "linear",
            "ring",
            "surface",
        ] {
            let chip = ChipRequest::named(name).build().unwrap();
            assert!(chip.num_qubits() > 0, "{name}");
        }
    }

    #[test]
    fn bad_requests_are_classified() {
        let missing = ChipRequest {
            topology: None,
            rows: None,
            cols: None,
            size: None,
            distance: None,
            spec: None,
        };
        assert_eq!(missing.build().unwrap_err(), RequestError::MissingChip);
        assert!(matches!(
            ChipRequest::named("dodecahedron").build().unwrap_err(),
            RequestError::UnknownTopology(_)
        ));
        let mut even = ChipRequest::named("surface");
        even.distance = Some(4);
        assert!(matches!(
            even.build().unwrap_err(),
            RequestError::BadParameter(_)
        ));
        assert!(matches!(
            ChipRequest::grid("square", 0, 3).build().unwrap_err(),
            RequestError::BadParameter(_)
        ));
    }

    #[test]
    fn spec_overrides_topology_and_validates() {
        let spec = ChipSpec::from_chip(&topology::linear(4));
        let mut request = ChipRequest::named("square");
        request.spec = Some(spec);
        assert_eq!(request.build().unwrap().num_qubits(), 4);

        let broken = ChipSpec {
            name: "b".into(),
            qubits: vec![],
            couplers: vec![],
        };
        let mut request = ChipRequest::named("square");
        request.spec = Some(broken);
        let err = request.build().unwrap_err();
        assert!(matches!(err, RequestError::Chip(_)));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn cache_key_ignores_id_and_deadline_but_not_knobs() {
        let base = DesignRequest::new(ChipRequest::grid("square", 3, 3));
        let mut renamed = base.clone();
        renamed.id = Some("x".into());
        renamed.deadline_ms = Some(5);
        assert_eq!(base.cache_key().unwrap(), renamed.cache_key().unwrap());

        let mut hotter = base.clone();
        hotter.theta = Some(6.0);
        assert_ne!(base.cache_key().unwrap(), hotter.cache_key().unwrap());
        let mut reseeded = base.clone();
        reseeded.seed = Some(1);
        assert_ne!(base.cache_key().unwrap(), reseeded.cache_key().unwrap());

        let mut refined = base.clone();
        refined.refine = Some(true);
        assert_ne!(base.cache_key().unwrap(), refined.cache_key().unwrap());
        assert!(refined.planner_config().refine.is_some());
        assert!(base.planner_config().refine.is_none());
    }

    #[test]
    fn jsonl_line_roundtrip() {
        let mut request = DesignRequest::new(ChipRequest::grid("hexagon", 2, 2));
        request.id = Some("hex".into());
        request.one_to_eight = Some(true);
        let line = serde_json::to_string(&request).unwrap();
        let back: DesignRequest = serde_json::from_str(&line).unwrap();
        assert_eq!(back, request);
        assert!(back.planner_config().tdm.allow_one_to_eight);
    }
}
