//! Sharded content-addressed plan cache.
//!
//! The flat [`PlanCache`] serializes every lookup behind one mutex and
//! persists to a single snapshot file — one torn write loses the whole
//! cache. A [`ShardedCache`] splits the key space across N independent
//! [`PlanCache`] shards selected by the existing 64-bit content key
//! (the `{key:016x}` plan hash), each with its own lock, its own LRU
//! budget, and its own `save_atomic` persistence file. Shard loss or
//! corruption is therefore isolated: deleting (or tearing) one shard's
//! file loses only that shard's entries, and salvage restarts that one
//! shard cold while the others load warm.
//!
//! Shard selection is `key % shards` — a pure function of the content
//! key, so a request maps to the same shard in every process and every
//! session. With `shards == 1` the persistence file is the caller's
//! path itself, byte-compatible with the flat cache's snapshots.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::cache::{CacheLoadError, CacheStats, PlanCache};

/// Which shard a content key lives in: a pure function of the key and
/// the shard count, stable across processes and sessions.
pub fn shard_of_key(key: u64, shards: usize) -> usize {
    (key % shards.max(1) as u64) as usize
}

/// The persistence file of shard `index` of a `shards`-way cache rooted
/// at `path`. A single-shard cache uses `path` itself, so `--shards 1`
/// reads and writes the flat cache's snapshot format in place.
pub fn shard_file(path: &Path, index: usize, shards: usize) -> PathBuf {
    if shards <= 1 {
        path.to_path_buf()
    } else {
        PathBuf::from(format!("{}.shard{index}-of-{shards}", path.display()))
    }
}

/// A content-addressed LRU cache split across independently locked,
/// independently persisted [`PlanCache`] shards.
///
/// # Example
///
/// ```
/// use youtiao_serve::shard::{shard_of_key, ShardedCache};
///
/// let cache: ShardedCache<String> = ShardedCache::new(4, 64);
/// cache.insert(7, "seven".into());
/// assert_eq!(cache.get(7), Some("seven".into()));
/// assert_eq!(cache.len(), 1);
/// assert_eq!(shard_of_key(7, 4), 3);
/// ```
pub struct ShardedCache<R> {
    shards: Vec<PlanCache<R>>,
}

impl<R> ShardedCache<R> {
    /// A cache of `shards` shards (min 1) holding at most `capacity`
    /// entries in total; the budget is split evenly, each shard keeping
    /// at least one entry.
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards).max(1);
        ShardedCache {
            shards: (0..shards).map(|_| PlanCache::new(per_shard)).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` maps to.
    pub fn shard_of(&self, key: u64) -> usize {
        shard_of_key(key, self.shards.len())
    }

    /// Looks up `key` in its shard, counting a hit or miss there.
    pub fn get(&self, key: u64) -> Option<R>
    where
        R: Clone,
    {
        self.shards[self.shard_of(key)].get(key)
    }

    /// Inserts (or refreshes) `key` in its shard, evicting that shard's
    /// least recently used entry when its budget is full.
    pub fn insert(&self, key: u64, value: R) {
        self.shards[self.shard_of(key)].insert(key, value);
    }

    /// Resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(PlanCache::len).sum()
    }

    /// `true` when nothing is cached in any shard.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Aggregate counters over all shards (capacity is the summed
    /// per-shard budget).
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats {
            entries: 0,
            capacity: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        };
        for shard in &self.shards {
            let s = shard.stats();
            total.entries += s.entries;
            total.capacity += s.capacity;
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
        }
        total
    }

    /// Per-shard counter snapshots, indexed by shard.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(PlanCache::stats).collect()
    }

    /// Loads a sharded cache persisted under `path`: shard `i` reads
    /// [`shard_file`]`(path, i, shards)`. A missing shard file starts
    /// that shard cold. A torn or corrupted shard file fails the load
    /// with its [`CacheLoadError`] — unless `salvage` is set, which
    /// restarts *only that shard* cold and keeps loading the rest; the
    /// second return is how many shards were salvaged.
    pub fn load(
        path: &Path,
        shards: usize,
        capacity: usize,
        salvage: bool,
    ) -> Result<(Self, usize), CacheLoadError>
    where
        R: Deserialize,
    {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards).max(1);
        let mut loaded = Vec::with_capacity(shards);
        let mut salvaged = 0usize;
        for index in 0..shards {
            let file = shard_file(path, index, shards);
            let shard = match std::fs::read_to_string(&file) {
                Err(_) => PlanCache::new(per_shard),
                Ok(text) => match PlanCache::from_json(&text, per_shard) {
                    Ok(shard) => shard,
                    Err(_) if salvage => {
                        salvaged += 1;
                        PlanCache::new(per_shard)
                    }
                    Err(e) => return Err(e),
                },
            };
            loaded.push(shard);
        }
        Ok((ShardedCache { shards: loaded }, salvaged))
    }

    /// Persists every shard crash-safely to its own [`shard_file`]
    /// (same-directory temp + rename, like [`PlanCache::save_atomic`]).
    /// A crash between shard writes leaves each file either old or new
    /// — never torn — and loses at most the shards not yet written.
    pub fn save_atomic(&self, path: &Path) -> std::io::Result<()>
    where
        R: Serialize,
    {
        let count = self.shards.len();
        for (index, shard) in self.shards.iter().enumerate() {
            shard.save_atomic(&shard_file(path, index, count))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{apply_cache_fault, CacheFault};

    fn temp_base(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "youtiao-shard-test-{}-{tag}.json",
            std::process::id()
        ))
    }

    fn cleanup(path: &Path, shards: usize) {
        for index in 0..shards {
            let _ = std::fs::remove_file(shard_file(path, index, shards));
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn keys_spread_across_shards_and_aggregate_like_a_flat_cache() {
        let cache: ShardedCache<u64> = ShardedCache::new(4, 64);
        for key in 0..32u64 {
            cache.insert(key, key * 10);
        }
        assert_eq!(cache.len(), 32);
        for key in 0..32u64 {
            assert_eq!(cache.get(key), Some(key * 10));
            assert_eq!(cache.shard_of(key), (key % 4) as usize);
        }
        assert_eq!(cache.get(999), None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (32, 1));
        let per_shard = cache.shard_stats();
        assert_eq!(per_shard.len(), 4);
        assert_eq!(per_shard.iter().map(|s| s.entries).sum::<usize>(), 32);
        assert_eq!(per_shard.iter().map(|s| s.hits).sum::<u64>(), 32);
        // Every shard saw its even share of the sequential keys.
        for s in &per_shard {
            assert_eq!(s.entries, 8);
        }
    }

    #[test]
    fn per_shard_lru_budgets_evict_independently() {
        // Total budget 4 over 2 shards -> 2 entries per shard. Keys
        // 0,2,4 land in shard 0, keys 1,3 in shard 1: the third even
        // key evicts within shard 0 only.
        let cache: ShardedCache<u32> = ShardedCache::new(2, 4);
        for key in 0..5u64 {
            cache.insert(key, key as u32);
        }
        assert_eq!(cache.get(0), None, "shard 0 evicted its LRU entry");
        assert_eq!(cache.get(1), Some(1), "shard 1 was untouched");
        assert_eq!(cache.get(3), Some(3));
        let per_shard = cache.shard_stats();
        assert_eq!(per_shard[0].evictions, 1);
        assert_eq!(per_shard[1].evictions, 0);
    }

    #[test]
    fn single_shard_persistence_is_the_flat_snapshot_in_place() {
        let path = temp_base("flat");
        cleanup(&path, 1);
        assert_eq!(shard_file(&path, 0, 1), path);

        let cache: ShardedCache<String> = ShardedCache::new(1, 8);
        cache.insert(7, "seven".into());
        cache.save_atomic(&path).unwrap();
        // The file is a plain PlanCache snapshot the flat loader reads.
        let text = std::fs::read_to_string(&path).unwrap();
        let flat: PlanCache<String> = PlanCache::from_json(&text, 8).unwrap();
        assert_eq!(flat.get(7), Some("seven".into()));
        cleanup(&path, 1);
    }

    #[test]
    fn sharded_persistence_roundtrips_per_shard() {
        let path = temp_base("roundtrip");
        cleanup(&path, 4);
        let cache: ShardedCache<u64> = ShardedCache::new(4, 64);
        for key in 0..16u64 {
            cache.insert(key, key + 100);
        }
        cache.save_atomic(&path).unwrap();
        for index in 0..4 {
            assert!(shard_file(&path, index, 4).exists(), "shard {index} file");
        }
        let (back, salvaged) = ShardedCache::<u64>::load(&path, 4, 64, false).unwrap();
        assert_eq!(salvaged, 0);
        assert_eq!(back.len(), 16);
        for key in 0..16u64 {
            assert_eq!(back.get(key), Some(key + 100));
        }
        // Loading resets runtime counters, like the flat cache.
        assert_eq!(back.stats().misses, 0);
        cleanup(&path, 4);
    }

    #[test]
    fn losing_one_shard_file_loses_only_that_shards_entries() {
        let path = temp_base("loss");
        cleanup(&path, 4);
        let cache: ShardedCache<u64> = ShardedCache::new(4, 64);
        for key in 0..20u64 {
            cache.insert(key, key);
        }
        let lost_shard = 2usize;
        let lost: u64 = (0..20u64)
            .filter(|k| shard_of_key(*k, 4) == lost_shard)
            .count() as u64;
        cache.save_atomic(&path).unwrap();
        std::fs::remove_file(shard_file(&path, lost_shard, 4)).unwrap();

        let (back, salvaged) = ShardedCache::<u64>::load(&path, 4, 64, false).unwrap();
        assert_eq!(salvaged, 0, "a missing file is a cold shard, not salvage");
        assert_eq!(back.len(), 20 - lost as usize);
        for key in 0..20u64 {
            let expected = (shard_of_key(key, 4) != lost_shard).then_some(key);
            assert_eq!(back.get(key), expected, "key {key}");
        }
        cleanup(&path, 4);
    }

    #[test]
    fn torn_shard_fails_loudly_or_salvages_alone() {
        let path = temp_base("torn");
        cleanup(&path, 2);
        let cache: ShardedCache<u64> = ShardedCache::new(2, 64);
        for key in 0..10u64 {
            cache.insert(key, key);
        }
        cache.save_atomic(&path).unwrap();
        apply_cache_fault(&shard_file(&path, 1, 2), CacheFault::Truncate).unwrap();

        // Default: the torn shard fails the whole load, structurally.
        let err = ShardedCache::<u64>::load(&path, 2, 64, false)
            .err()
            .unwrap();
        assert!(matches!(err, CacheLoadError::Parse(_)), "{err}");

        // Salvage: only the torn shard restarts cold.
        let (back, salvaged) = ShardedCache::<u64>::load(&path, 2, 64, true).unwrap();
        assert_eq!(salvaged, 1);
        for key in 0..10u64 {
            let expected = (shard_of_key(key, 2) == 0).then_some(key);
            assert_eq!(back.get(key), expected, "key {key}");
        }
        cleanup(&path, 2);
    }
}
