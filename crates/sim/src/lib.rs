//! State-vector circuit simulation for YOUTIAO.
//!
//! Substitutes for the paper's Qiskit-based noisy-execution simulation:
//! a dense state-vector backend ([`state`]) plus Monte-Carlo Pauli-noise
//! trajectories ([`noise`]) that turn calibrated gate-error rates and T1
//! idle decay into empirical circuit fidelities. It cross-validates the
//! first-order analytic estimator in
//! [`youtiao_circuit::fidelity`] — see the
//! `validate` experiment binary.
//!
//! The backend is exact up to ~20 qubits (2²⁰ amplitudes), which covers
//! every fidelity experiment in the paper's evaluation.
//!
//! # Example
//!
//! ```
//! use youtiao_circuit::{Circuit, Gate};
//! use youtiao_sim::state::StateVector;
//!
//! // A Bell pair: H(0) then CX(0, 1) via H-CZ-H.
//! let mut c = Circuit::new(2);
//! c.push1(Gate::H, 0u32.into())?;
//! c.push1(Gate::H, 1u32.into())?;
//! c.push2(Gate::Cz, 0u32.into(), 1u32.into())?;
//! c.push1(Gate::H, 1u32.into())?;
//! let state = StateVector::run(&c)?;
//! assert!((state.probability_of(0b00) - 0.5).abs() < 1e-12);
//! assert!((state.probability_of(0b11) - 0.5).abs() < 1e-12);
//! # Ok::<(), youtiao_circuit::CircuitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod noise;
pub mod state;

pub use crate::noise::{simulate_fidelity_mc, NoiseParams};
pub use crate::state::StateVector;
