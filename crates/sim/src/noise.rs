//! Monte-Carlo Pauli-noise trajectories over a schedule.
//!
//! Noise model (the standard Pauli-twirled approximation Qiskit's basic
//! device models use):
//!
//! * each non-virtual gate injects a uniform random Pauli on each of its
//!   operands with the calibrated per-gate error probability;
//! * during every layer, every qubit suffers a uniform random Pauli with
//!   probability `1 − exp(−dt/T1)` (idle decay, twirled);
//! * measurement injects X with the readout-error probability.
//!
//! The empirical circuit fidelity is the trajectory average of
//! `|⟨ψ_ideal|ψ_noisy⟩|²`.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use youtiao_circuit::schedule::Schedule;
use youtiao_circuit::{FidelityEstimator, Gate};
use youtiao_pulse::Complex;

use crate::state::{gate_matrix, StateVector};

/// Calibrated stochastic-noise parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseParams {
    /// Pauli-error probability per single-qubit gate.
    pub p1: f64,
    /// Pauli-error probability per operand of a two-qubit gate.
    pub p2: f64,
    /// Bit-flip probability at measurement.
    pub readout: f64,
    /// Relaxation time in microseconds driving idle decay.
    pub t1_us: f64,
}

impl NoiseParams {
    /// Mirrors the analytic estimator's calibration so the two models
    /// are comparable.
    pub fn from_estimator(est: &FidelityEstimator) -> Self {
        NoiseParams {
            p1: est.gate_error_1q,
            p2: est.gate_error_2q / 2.0, // split over the two operands
            readout: est.readout_error,
            t1_us: est.t1_us,
        }
    }

    /// The paper's calibration (§5.1).
    pub fn paper() -> Self {
        NoiseParams::from_estimator(&FidelityEstimator::paper())
    }
}

/// Simulates `trials` noisy trajectories of `schedule` over `width`
/// qubits and returns the mean fidelity against the ideal state.
///
/// # Panics
///
/// Panics if `width` is 0, exceeds the dense-simulation cap, or
/// `trials == 0`.
pub fn simulate_fidelity_mc(
    schedule: &Schedule,
    width: usize,
    params: &NoiseParams,
    trials: usize,
    seed: u64,
) -> f64 {
    assert!(trials > 0, "need at least one trajectory");
    let ideal = run_layers(schedule, width, None);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut total = 0.0;
    for _ in 0..trials {
        let noisy = run_layers(schedule, width, Some((params, &mut rng)));
        total += ideal.fidelity(&noisy);
    }
    total / trials as f64
}

/// Runs the schedule's layers, optionally injecting noise.
fn run_layers(
    schedule: &Schedule,
    width: usize,
    mut noise: Option<(&NoiseParams, &mut ChaCha8Rng)>,
) -> StateVector {
    let mut state = StateVector::zero(width.max(1));
    for layer in schedule.layers() {
        for op in layer.ops() {
            state.apply(op);
            if let Some((params, rng)) = noise.as_mut() {
                let p = match op.gate {
                    Gate::Cz => params.p2,
                    Gate::Measure => params.readout,
                    Gate::Rz(_) => 0.0,
                    _ => params.p1,
                };
                for q in op.qubits() {
                    if p > 0.0 && rng.gen_bool(p.min(1.0)) {
                        if op.gate == Gate::Measure {
                            state.apply_single(q.index(), gate_matrix(Gate::X));
                        } else {
                            apply_random_pauli(&mut state, q.index(), rng);
                        }
                    }
                }
            }
        }
        if let Some((params, rng)) = noise.as_mut() {
            // Idle decay across the layer for every qubit.
            let dt_us = layer.duration_ns() / 1000.0;
            let p_idle = 1.0 - (-dt_us / params.t1_us).exp();
            if p_idle > 0.0 {
                for q in 0..width {
                    if rng.gen_bool(p_idle.min(1.0)) {
                        apply_random_pauli(&mut state, q, rng);
                    }
                }
            }
        }
    }
    state
}

fn apply_random_pauli(state: &mut StateVector, q: usize, rng: &mut ChaCha8Rng) {
    match rng.gen_range(0..3) {
        0 => state.apply_single(q, gate_matrix(Gate::X)),
        1 => {
            // Y = [[0, -i], [i, 0]]
            state.apply_single(
                q,
                [
                    Complex::ZERO,
                    Complex::new(0.0, -1.0),
                    Complex::new(0.0, 1.0),
                    Complex::ZERO,
                ],
            );
        }
        _ => state.apply_single(q, gate_matrix(Gate::Rz(std::f64::consts::PI))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtiao_chip::topology;
    use youtiao_circuit::schedule::schedule_asap;
    use youtiao_circuit::{benchmarks, Circuit};

    fn scheduled(circuit: &Circuit, n: usize) -> Schedule {
        let chip = topology::linear(n);
        schedule_asap(circuit, &chip).unwrap()
    }

    #[test]
    fn zero_noise_gives_unit_fidelity() {
        let circuit = benchmarks::vqc(4, 2);
        let s = scheduled(&circuit, 4);
        let params = NoiseParams {
            p1: 0.0,
            p2: 0.0,
            readout: 0.0,
            t1_us: 1e12,
        };
        let f = simulate_fidelity_mc(&s, 4, &params, 5, 1);
        assert!((f - 1.0).abs() < 1e-9, "{f}");
    }

    #[test]
    fn fidelity_decreases_with_noise() {
        let circuit = benchmarks::vqc(4, 3);
        let s = scheduled(&circuit, 4);
        let low = NoiseParams {
            p1: 1e-4,
            p2: 1e-3,
            readout: 0.0,
            t1_us: 90.0,
        };
        let high = NoiseParams {
            p1: 1e-2,
            p2: 5e-2,
            readout: 0.0,
            t1_us: 90.0,
        };
        let f_low = simulate_fidelity_mc(&s, 4, &low, 60, 2);
        let f_high = simulate_fidelity_mc(&s, 4, &high, 60, 2);
        assert!(f_low > f_high, "{f_low} vs {f_high}");
        assert!(f_low > 0.85);
    }

    #[test]
    fn deterministic_per_seed() {
        let circuit = benchmarks::ising(4, 2);
        let s = scheduled(&circuit, 4);
        let params = NoiseParams::paper();
        let a = simulate_fidelity_mc(&s, 4, &params, 20, 7);
        let b = simulate_fidelity_mc(&s, 4, &params, 20, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn mc_matches_analytic_estimator_to_first_order() {
        // On a short circuit the analytic product model and the MC
        // trajectories should agree within a few percent.
        let chip = topology::linear(5);
        let circuit = benchmarks::vqc(5, 2);
        let schedule = schedule_asap(&circuit, &chip).unwrap();
        let est = FidelityEstimator::paper();
        let analytic = est.estimate(&schedule, &chip).total();
        let mc = simulate_fidelity_mc(&schedule, 5, &NoiseParams::from_estimator(&est), 400, 3);
        assert!(
            (mc - analytic).abs() < 0.05,
            "mc {mc} vs analytic {analytic}"
        );
    }

    #[test]
    fn readout_errors_hurt() {
        let mut circuit = Circuit::new(2);
        circuit.push1(Gate::Measure, 0u32.into()).unwrap();
        circuit.push1(Gate::Measure, 1u32.into()).unwrap();
        let s = scheduled(&circuit, 2);
        let params = NoiseParams {
            p1: 0.0,
            p2: 0.0,
            readout: 0.5,
            t1_us: 1e12,
        };
        let f = simulate_fidelity_mc(&s, 2, &params, 300, 5);
        assert!(f < 0.6, "{f}");
        assert!(f > 0.1);
    }
}
