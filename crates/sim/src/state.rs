//! Dense state-vector backend.

use youtiao_circuit::{Circuit, CircuitError, Gate, Operation};
use youtiao_pulse::Complex;

/// Hard cap on simulated qubit count (2²⁴ amplitudes ≈ 256 MiB).
pub const MAX_QUBITS: usize = 24;

/// A pure quantum state over `n` qubits (little-endian basis indexing:
/// qubit 0 is the least significant bit of the basis index).
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n: usize,
    amps: Vec<Complex>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > MAX_QUBITS`.
    pub fn zero(n: usize) -> Self {
        assert!(n > 0, "state needs at least one qubit");
        assert!(n <= MAX_QUBITS, "state too large to simulate densely");
        let mut amps = vec![Complex::ZERO; 1 << n];
        amps[0] = Complex::ONE;
        StateVector { n, amps }
    }

    /// Runs every unitary operation of `circuit` on `|0…0⟩`
    /// (measurements are skipped — use [`probability_of`] on the final
    /// state).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] when the circuit is
    /// wider than [`MAX_QUBITS`] allows.
    ///
    /// [`probability_of`]: StateVector::probability_of
    pub fn run(circuit: &Circuit) -> Result<Self, CircuitError> {
        if circuit.num_qubits() > MAX_QUBITS {
            return Err(CircuitError::ChipTooSmall {
                needed: circuit.num_qubits(),
                available: MAX_QUBITS,
            });
        }
        let mut state = StateVector::zero(circuit.num_qubits().max(1));
        for op in circuit.operations() {
            state.apply(op);
        }
        Ok(state)
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Applies one circuit operation (measurements are ignored).
    ///
    /// # Panics
    ///
    /// Panics if an operand index exceeds the state width.
    pub fn apply(&mut self, op: &Operation) {
        match (op.gate, op.q1) {
            (Gate::Cz, Some(q1)) => self.apply_cz(op.q0.index(), q1.index()),
            (Gate::Measure, _) => {}
            (gate, None) => self.apply_single(op.q0.index(), gate_matrix(gate)),
            (gate, Some(_)) => unreachable!("unsupported two-qubit gate {gate}"),
        }
    }

    /// Applies a 2×2 unitary `[[m00, m01], [m10, m11]]` to qubit `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the state width.
    pub fn apply_single(&mut self, k: usize, m: [Complex; 4]) {
        assert!(k < self.n, "qubit index out of range");
        let bit = 1usize << k;
        for base in 0..self.amps.len() {
            if base & bit != 0 {
                continue;
            }
            let a0 = self.amps[base];
            let a1 = self.amps[base | bit];
            self.amps[base] = m[0] * a0 + m[1] * a1;
            self.amps[base | bit] = m[2] * a0 + m[3] * a1;
        }
    }

    /// Applies CZ between qubits `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if an index exceeds the state width or `a == b`.
    pub fn apply_cz(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n && a != b, "bad cz operands");
        let mask = (1usize << a) | (1usize << b);
        for (idx, amp) in self.amps.iter_mut().enumerate() {
            if idx & mask == mask {
                *amp = -*amp;
            }
        }
    }

    /// Probability of measuring the computational basis state `basis`.
    ///
    /// # Panics
    ///
    /// Panics if `basis` exceeds the state dimension.
    pub fn probability_of(&self, basis: usize) -> f64 {
        self.amps[basis].norm_sqr()
    }

    /// State overlap fidelity `|⟨self|other⟩|²`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.n, other.n, "state width mismatch");
        let mut inner = Complex::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            inner += a.conj() * *b;
        }
        inner.norm_sqr()
    }

    /// Total probability (1 for any unitary evolution; useful as a
    /// numerical check).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Marginal probability that qubit `k` measures `|1⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the state width.
    pub fn probability_of_one(&self, k: usize) -> f64 {
        assert!(k < self.n, "qubit index out of range");
        let bit = 1usize << k;
        self.amps
            .iter()
            .enumerate()
            .filter(|(idx, _)| idx & bit != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Samples `shots` full-register measurement outcomes, returning a
    /// basis-index → count histogram.
    ///
    /// # Panics
    ///
    /// Panics if the state is not normalized to within 10⁻⁶.
    pub fn sample_counts<R: rand::Rng>(
        &self,
        shots: usize,
        rng: &mut R,
    ) -> std::collections::HashMap<usize, usize> {
        assert!((self.norm() - 1.0).abs() < 1e-6, "state is not normalized");
        let mut counts = std::collections::HashMap::new();
        for _ in 0..shots {
            let mut r: f64 = rng.gen_range(0.0..1.0);
            let mut outcome = self.amps.len() - 1;
            for (idx, amp) in self.amps.iter().enumerate() {
                r -= amp.norm_sqr();
                if r <= 0.0 {
                    outcome = idx;
                    break;
                }
            }
            *counts.entry(outcome).or_insert(0) += 1;
        }
        counts
    }
}

/// The 2×2 matrix of a single-qubit gate.
///
/// # Panics
///
/// Panics for two-qubit gates and measurement.
pub fn gate_matrix(gate: Gate) -> [Complex; 4] {
    let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
    match gate {
        Gate::X => [Complex::ZERO, Complex::ONE, Complex::ONE, Complex::ZERO],
        Gate::H => [
            Complex::from(inv_sqrt2),
            Complex::from(inv_sqrt2),
            Complex::from(inv_sqrt2),
            Complex::from(-inv_sqrt2),
        ],
        Gate::Rx(t) => {
            let c = Complex::from((t / 2.0).cos());
            let s = Complex::new(0.0, -(t / 2.0).sin());
            [c, s, s, c]
        }
        Gate::Ry(t) => {
            let c = Complex::from((t / 2.0).cos());
            let s = (t / 2.0).sin();
            [c, Complex::from(-s), Complex::from(s), c]
        }
        Gate::Rz(t) => [
            Complex::from_polar(1.0, -t / 2.0),
            Complex::ZERO,
            Complex::ZERO,
            Complex::from_polar(1.0, t / 2.0),
        ],
        Gate::Cz | Gate::Measure => panic!("{gate} has no single-qubit matrix"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtiao_circuit::Gate;

    const EPS: f64 = 1e-12;

    fn c(n: usize) -> Circuit {
        Circuit::new(n)
    }

    #[test]
    fn zero_state_is_normalized() {
        let s = StateVector::zero(3);
        assert!((s.norm() - 1.0).abs() < EPS);
        assert!((s.probability_of(0) - 1.0).abs() < EPS);
    }

    #[test]
    fn hadamard_superposition() {
        let mut circ = c(1);
        circ.push1(Gate::H, 0u32.into()).unwrap();
        let s = StateVector::run(&circ).unwrap();
        assert!((s.probability_of(0) - 0.5).abs() < EPS);
        assert!((s.probability_of(1) - 0.5).abs() < EPS);
    }

    #[test]
    fn x_flips() {
        let mut circ = c(2);
        circ.push1(Gate::X, 1u32.into()).unwrap();
        let s = StateVector::run(&circ).unwrap();
        assert!((s.probability_of(0b10) - 1.0).abs() < EPS);
    }

    #[test]
    fn rx_pi_is_x_up_to_phase() {
        let mut a = c(1);
        a.push1(Gate::Rx(std::f64::consts::PI), 0u32.into())
            .unwrap();
        let s = StateVector::run(&a).unwrap();
        assert!((s.probability_of(1) - 1.0).abs() < EPS);
    }

    #[test]
    fn bell_pair_via_h_cz_h() {
        let mut circ = c(2);
        circ.push1(Gate::H, 0u32.into()).unwrap();
        circ.push1(Gate::H, 1u32.into()).unwrap();
        circ.push2(Gate::Cz, 0u32.into(), 1u32.into()).unwrap();
        circ.push1(Gate::H, 1u32.into()).unwrap();
        let s = StateVector::run(&circ).unwrap();
        assert!((s.probability_of(0b00) - 0.5).abs() < EPS);
        assert!((s.probability_of(0b11) - 0.5).abs() < EPS);
        assert!(s.probability_of(0b01) < EPS);
    }

    #[test]
    fn cz_phase_only_on_11() {
        let mut circ = c(2);
        circ.push1(Gate::H, 0u32.into()).unwrap();
        circ.push1(Gate::H, 1u32.into()).unwrap();
        circ.push2(Gate::Cz, 0u32.into(), 1u32.into()).unwrap();
        let s = StateVector::run(&circ).unwrap();
        // Probabilities unchanged by the diagonal phase.
        for b in 0..4 {
            assert!((s.probability_of(b) - 0.25).abs() < EPS);
        }
    }

    #[test]
    fn rz_is_virtual_on_probabilities() {
        let mut circ = c(1);
        circ.push1(Gate::H, 0u32.into()).unwrap();
        circ.push1(Gate::Rz(1.234), 0u32.into()).unwrap();
        let s = StateVector::run(&circ).unwrap();
        assert!((s.probability_of(0) - 0.5).abs() < EPS);
        // ...but changes the relative phase, visible after another H.
        let mut circ2 = c(1);
        circ2.push1(Gate::H, 0u32.into()).unwrap();
        circ2
            .push1(Gate::Rz(std::f64::consts::PI), 0u32.into())
            .unwrap();
        circ2.push1(Gate::H, 0u32.into()).unwrap();
        let s2 = StateVector::run(&circ2).unwrap();
        assert!((s2.probability_of(1) - 1.0).abs() < EPS);
    }

    #[test]
    fn unitarity_preserves_norm() {
        let circ = youtiao_circuit::benchmarks::qft(6);
        let s = StateVector::run(&circ).unwrap();
        assert!((s.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fidelity_of_identical_states_is_one() {
        let circ = youtiao_circuit::benchmarks::vqc(5, 2);
        let a = StateVector::run(&circ).unwrap();
        let b = StateVector::run(&circ).unwrap();
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let a = StateVector::zero(1);
        let mut circ = c(1);
        circ.push1(Gate::X, 0u32.into()).unwrap();
        let b = StateVector::run(&circ).unwrap();
        assert!(a.fidelity(&b) < EPS);
    }

    #[test]
    fn measurement_is_a_no_op_here() {
        let mut circ = c(1);
        circ.push1(Gate::H, 0u32.into()).unwrap();
        circ.push1(Gate::Measure, 0u32.into()).unwrap();
        let s = StateVector::run(&circ).unwrap();
        assert!((s.norm() - 1.0).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_state_panics() {
        let _ = StateVector::zero(MAX_QUBITS + 1);
    }
}
