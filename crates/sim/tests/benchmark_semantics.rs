//! Semantic correctness of the benchmark generators, verified by exact
//! state-vector simulation: the circuits do not just *look* like their
//! algorithms, they compute them.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use youtiao_circuit::benchmarks;
use youtiao_circuit::{Circuit, Gate};
use youtiao_sim::state::StateVector;

/// Deutsch–Jozsa with the balanced parity oracle: the input register
/// must *never* measure all-zeros (all-zeros ⟺ constant oracle).
#[test]
fn dj_detects_balanced_oracle() {
    for n in [3usize, 5, 8] {
        let circuit = benchmarks::dj(n);
        let state = StateVector::run(&circuit).unwrap();
        // Probability that all n-1 input qubits read 0 (any ancilla value).
        let mut p_all_zero_inputs = 0.0;
        for ancilla in 0..2usize {
            p_all_zero_inputs += state.probability_of(ancilla << (n - 1));
        }
        assert!(
            p_all_zero_inputs < 1e-9,
            "n={n}: balanced oracle must never yield all-zero inputs (p={p_all_zero_inputs})"
        );
    }
}

/// A constant oracle (no CX at all) must always measure all-zeros.
#[test]
fn dj_constant_oracle_control() {
    let n = 5;
    let mut circuit = Circuit::new(n);
    let ancilla = (n as u32 - 1).into();
    circuit.push1(Gate::X, ancilla).unwrap();
    for i in 0..n {
        circuit.push1(Gate::H, (i as u32).into()).unwrap();
    }
    // constant oracle: nothing
    for i in 0..n - 1 {
        circuit.push1(Gate::H, (i as u32).into()).unwrap();
    }
    let state = StateVector::run(&circuit).unwrap();
    let mut p_all_zero = 0.0;
    for ancilla_bit in 0..2usize {
        p_all_zero += state.probability_of(ancilla_bit << (n - 1));
    }
    assert!((p_all_zero - 1.0).abs() < 1e-9);
}

/// QFT on |0…0⟩ is the uniform superposition: every basis state equally
/// likely.
#[test]
fn qft_of_zero_is_uniform() {
    for n in [2usize, 4, 6] {
        let circuit = benchmarks::qft(n);
        let state = StateVector::run(&circuit).unwrap();
        let expect = 1.0 / (1 << n) as f64;
        for b in 0..(1usize << n) {
            let p = state.probability_of(b);
            assert!(
                (p - expect).abs() < 1e-9,
                "n={n} basis {b}: {p} vs {expect}"
            );
        }
    }
}

/// The QKNN swap test: the ancilla's P(|0⟩) equals `(1 + |⟨a|b⟩|²) / 2`
/// for the loaded feature states.
#[test]
fn qknn_swap_test_statistics() {
    let n = 5; // ancilla + two 2-qubit registers
    let circuit = benchmarks::qknn(n);
    let state = StateVector::run(&circuit).unwrap();
    let p0 = 1.0 - state.probability_of_one(0);

    // Compute |<a|b>|^2 from the loading angles in benchmarks::qknn:
    // register a gets RY(0.4 + 0.2 k), register b RY(0.9 - 0.1 k).
    let m = (n - 1) / 2;
    let mut overlap: f64 = 1.0;
    for k in 0..m {
        let ta: f64 = 0.4 + 0.2 * k as f64;
        let tb: f64 = 0.9 - 0.1 * k as f64;
        // |<RY(ta)0|RY(tb)0>| = cos((ta - tb)/2)
        overlap *= ((ta - tb) / 2.0).cos();
    }
    let expect = (1.0 + overlap * overlap) / 2.0;
    assert!(
        (p0 - expect).abs() < 1e-9,
        "swap test p0 {p0} vs expected {expect}"
    );
}

/// Sampling matches the exact distribution (chi-squared-ish sanity).
#[test]
fn sampling_matches_probabilities() {
    let mut circuit = Circuit::new(2);
    circuit.push1(Gate::H, 0u32.into()).unwrap();
    let state = StateVector::run(&circuit).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let counts = state.sample_counts(20_000, &mut rng);
    let p0 = *counts.get(&0).unwrap_or(&0) as f64 / 20_000.0;
    let p1 = *counts.get(&1).unwrap_or(&0) as f64 / 20_000.0;
    assert!((p0 - 0.5).abs() < 0.02, "{p0}");
    assert!((p1 - 0.5).abs() < 0.02, "{p1}");
    assert!(counts.keys().all(|&b| b < 4));
}

/// Transpilation preserves semantics: the physical DJ circuit computes
/// the same outcome distribution on the physical qubits holding the
/// logical register.
#[test]
fn transpiled_dj_is_equivalent() {
    use youtiao_chip::topology;
    use youtiao_circuit::transpile::transpile_snake;

    let chip = topology::square_grid(3, 3);
    let logical = benchmarks::dj(6);
    let t = transpile_snake(&logical, &chip).unwrap();
    let physical_state = StateVector::run(&t.circuit).unwrap();

    // All-zero *logical inputs* probability, reading through the final
    // layout (logical input i lives on physical t.final_layout[i]).
    let mut p_all_zero = 0.0;
    for basis in 0..(1usize << chip.num_qubits()) {
        let inputs_zero = (0..5).all(|logical_q| {
            let phys = t.final_layout[logical_q].index();
            basis & (1 << phys) == 0
        });
        if inputs_zero {
            p_all_zero += physical_state.probability_of(basis);
        }
    }
    assert!(
        p_all_zero < 1e-9,
        "balanced DJ must not yield all-zero inputs"
    );
}
