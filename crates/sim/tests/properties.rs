//! Property-based tests for the state-vector simulator.

use proptest::prelude::*;
use youtiao_circuit::{Circuit, Gate};
use youtiao_sim::state::{gate_matrix, StateVector};

fn random_unitary_circuit(n: usize, ops: &[(u8, u8, u8, u16)]) -> Circuit {
    let mut c = Circuit::new(n);
    for &(kind, a, b, angle) in ops {
        let qa = ((a as usize) % n).into();
        let qb = ((b as usize) % n).into();
        let theta = angle as f64 / 100.0;
        match kind % 6 {
            0 => c.push1(Gate::H, qa).unwrap(),
            1 => c.push1(Gate::X, qa).unwrap(),
            2 => c.push1(Gate::Rx(theta), qa).unwrap(),
            3 => c.push1(Gate::Ry(theta), qa).unwrap(),
            4 => c.push1(Gate::Rz(theta), qa).unwrap(),
            _ => {
                if qa != qb {
                    c.push2(Gate::Cz, qa, qb).unwrap();
                }
            }
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any circuit of basis gates preserves the norm exactly.
    #[test]
    fn unitarity(n in 1usize..7, ops in proptest::collection::vec((0u8..6, 0u8..8, 0u8..8, 0u16..620), 0..60)) {
        let c = random_unitary_circuit(n, &ops);
        let s = StateVector::run(&c).unwrap();
        prop_assert!((s.norm() - 1.0).abs() < 1e-9);
    }

    /// Basis probabilities always sum to one and lie in [0, 1].
    #[test]
    fn probabilities_are_a_distribution(n in 1usize..6, ops in proptest::collection::vec((0u8..6, 0u8..8, 0u8..8, 0u16..620), 0..40)) {
        let c = random_unitary_circuit(n, &ops);
        let s = StateVector::run(&c).unwrap();
        let mut sum = 0.0;
        for b in 0..(1usize << n) {
            let p = s.probability_of(b);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
            sum += p;
        }
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    /// Applying a gate then its inverse returns to the original state
    /// (fidelity 1).
    #[test]
    fn rotation_inverses(n in 1usize..5, q in 0u8..8, theta in 0.0f64..6.2) {
        let q = ((q as usize) % n).into();
        let mut fwd = Circuit::new(n);
        fwd.push1(Gate::H, q).unwrap();
        fwd.push1(Gate::Rx(theta), q).unwrap();
        fwd.push1(Gate::Rx(-theta), q).unwrap();
        let s = StateVector::run(&fwd).unwrap();
        let mut href = Circuit::new(n);
        href.push1(Gate::H, q).unwrap();
        let r = StateVector::run(&href).unwrap();
        prop_assert!((s.fidelity(&r) - 1.0).abs() < 1e-9);
    }

    /// Gate matrices are unitary: M†M = I.
    #[test]
    fn matrices_are_unitary(kind in 0u8..5, theta in -6.2f64..6.2) {
        let gate = match kind {
            0 => Gate::H,
            1 => Gate::X,
            2 => Gate::Rx(theta),
            3 => Gate::Ry(theta),
            _ => Gate::Rz(theta),
        };
        let m = gate_matrix(gate);
        // columns are orthonormal
        let c0 = (m[0].norm_sqr() + m[2].norm_sqr() - 1.0).abs();
        let c1 = (m[1].norm_sqr() + m[3].norm_sqr() - 1.0).abs();
        let cross = (m[0].conj() * m[1] + m[2].conj() * m[3]).norm();
        prop_assert!(c0 < 1e-12 && c1 < 1e-12 && cross < 1e-12);
    }

    /// CZ is an involution: applying it twice is the identity.
    #[test]
    fn cz_involution(ops in proptest::collection::vec((0u8..6, 0u8..4, 0u8..4, 0u16..620), 0..20)) {
        let base = random_unitary_circuit(4, &ops);
        let s0 = StateVector::run(&base).unwrap();
        let mut twice = base.clone();
        twice.push2(Gate::Cz, 0u32.into(), 1u32.into()).unwrap();
        twice.push2(Gate::Cz, 0u32.into(), 1u32.into()).unwrap();
        let s1 = StateVector::run(&twice).unwrap();
        prop_assert!((s0.fidelity(&s1) - 1.0).abs() < 1e-9);
    }
}
