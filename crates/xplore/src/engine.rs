//! The parallel sweep engine.
//!
//! [`run_sweep`] turns a [`SweepSpec`] into the full cartesian grid of
//! design points and plans them over scoped worker threads:
//!
//! * **Shared planning context** — the expensive per-chip precomputation
//!   (equivalent-distance matrix, crosstalk matrix, fitted noise model)
//!   is built **once** per (chip, seed) axis value into a
//!   [`PlanContext`] and shared by reference across every worker that
//!   plans a point on that chip; the planner skips its internal
//!   matrices stage entirely.
//! * **Deterministic output** — workers pull grid indices from an
//!   atomic counter and send `(index, record)` pairs back over a
//!   channel; the main thread reorders them through a buffer and
//!   streams JSONL strictly in grid order, so the byte stream is
//!   identical no matter how many threads raced to produce it (with
//!   timings off, the default).
//! * **Plan cache reuse** — results are memoized in a serving-layer
//!   [`PlanCache`] under a content key of the full point parameters, so
//!   overlapping sweeps (and re-runs via `--cache`) skip replanning.
//! * **Pareto + marginals** — after the grid drains, the engine
//!   extracts the dominance-based Pareto front over the configured
//!   objectives and per-axis marginal means for every swept axis.

use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use youtiao_chip::{Chip, ChipSpec, QubitId};
use youtiao_core::fdm::FdmLine;
use youtiao_core::freq::{allocate_frequencies, FreqConfig};
use youtiao_core::tdm::DemuxLevel;
use youtiao_core::{
    die_seed, plan_multi, MultiPlanConfig, PairKernels, ParallelExec, PartitionConfig, PlanContext,
    PlannerConfig, YoutiaoPlanner,
};
use youtiao_cost::WiringTally;
use youtiao_noise::CrosstalkModel;
use youtiao_serve::cache::content_key;
use youtiao_serve::{ChipRequest, PlanCache};

use crate::eval::{characterize_xy, default_simulator, per_qubit_gate_error, FdmScenario};
use crate::grid::{GridPoint, SweepGrid};
use crate::pareto::{pareto_front, Objective, ObjectiveKind, ParetoEntry};
use crate::record::{PointResult, StageMs, SweepRecord};
use crate::spec::{SpecError, SweepMode, SweepSpec};

/// How [`run_sweep`] executes a spec.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads; `0` spawns one per available core.
    pub threads: usize,
    /// Intra-plan threads injected into every point's planner config
    /// (`0` = one per core, resolved against the worker count by
    /// [`effective_plan_threads`]). Plans are byte-identical across any
    /// value, so sweep records and the plan cache are unaffected — the
    /// knob is excluded from point cache keys.
    ///
    /// [`effective_plan_threads`]: youtiao_serve::effective_plan_threads
    pub plan_threads: usize,
    /// Pareto objectives (conventional directions).
    pub objectives: Vec<Objective>,
    /// Record per-point latency and per-stage timings. Timings are
    /// wall-clock and vary run to run — leave off (the default) for
    /// byte-deterministic output.
    pub timings: bool,
    /// Plan-cache capacity (entries).
    pub cache_capacity: usize,
    /// Load/save the plan cache at this path across runs.
    pub cache_path: Option<PathBuf>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: 0,
            plan_threads: 0,
            objectives: vec![
                Objective::conventional(ObjectiveKind::Cost),
                Objective::conventional(ObjectiveKind::Fidelity),
            ],
            timings: false,
            cache_capacity: 1024,
            cache_path: None,
        }
    }
}

/// Errors running a sweep.
#[derive(Debug)]
#[non_exhaustive]
pub enum SweepError {
    /// The spec did not validate into a grid.
    Spec(SpecError),
    /// The objective list is unusable (e.g. latency without timings).
    Objective(String),
    /// Writing records or cache files failed.
    Io(std::io::Error),
    /// A persisted cache file did not parse.
    Cache(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Spec(e) => write!(f, "invalid sweep spec: {e}"),
            SweepError::Objective(msg) => write!(f, "invalid objectives: {msg}"),
            SweepError::Io(e) => write!(f, "sweep I/O failed: {e}"),
            SweepError::Cache(msg) => write!(f, "plan cache unusable: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Spec(e) => Some(e),
            SweepError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpecError> for SweepError {
    fn from(e: SpecError) -> Self {
        SweepError::Spec(e)
    }
}

impl From<std::io::Error> for SweepError {
    fn from(e: std::io::Error) -> Self {
        SweepError::Io(e)
    }
}

/// Marginal means of the effective objectives for one value of one
/// swept axis.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AxisMarginal {
    /// Axis name (`theta`, `chip`, …).
    pub axis: String,
    /// The axis value, rendered.
    pub value: String,
    /// Successful records at this value.
    pub points: usize,
    /// Mean objective values (parallel to the effective objective
    /// list); `None` when no record at this value carries the metric.
    pub means: Vec<Option<f64>>,
}

/// What a sweep did, beyond the record stream.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SweepSummary {
    /// Spec name, if any.
    pub name: Option<String>,
    /// Grid points executed.
    pub points: usize,
    /// Successful records.
    pub ok: usize,
    /// Failed records.
    pub errors: usize,
    /// Worker threads actually used.
    pub threads: usize,
    /// Shared planning contexts built (one per chip × characterization
    /// seed — the probe for "matrices built once, not per point").
    pub contexts_built: usize,
    /// Pairwise grouping kernels built during the run (process-global
    /// probe delta). In a dedicated sweep process this equals
    /// `contexts_built`: every point reuses its context's kernels
    /// instead of rebuilding the pairwise tables per plan.
    pub kernels_built: usize,
    /// Plan-cache hits during this run.
    pub cache_hits: u64,
    /// Plan-cache misses during this run.
    pub cache_misses: u64,
    /// The effective objective list, rendered (`min(cost)`, …).
    pub objectives: Vec<String>,
    /// The Pareto front over the effective objectives.
    pub pareto: Vec<ParetoEntry>,
    /// Per-axis marginal means for every swept (multi-valued) axis.
    pub marginals: Vec<AxisMarginal>,
    /// Wall time of the whole sweep, milliseconds.
    pub elapsed_ms: f64,
}

impl SweepSummary {
    /// Human-readable multi-line rendering (the `youtiao sweep` stderr
    /// report).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let name = self.name.as_deref().unwrap_or("sweep");
        s.push_str(&format!(
            "{name}: {} points ({} ok, {} errors) on {} threads in {:.0} ms\n",
            self.points, self.ok, self.errors, self.threads, self.elapsed_ms
        ));
        s.push_str(&format!(
            "contexts built: {} ({} kernel builds); cache: {} hits / {} misses\n",
            self.contexts_built, self.kernels_built, self.cache_hits, self.cache_misses
        ));
        if self.objectives.is_empty() {
            s.push_str("pareto front: no usable objectives\n");
        } else {
            s.push_str(&format!(
                "pareto front over [{}]: {} points\n",
                self.objectives.join(", "),
                self.pareto.len()
            ));
            for entry in &self.pareto {
                let values: Vec<String> = entry.values.iter().map(|v| format!("{v:.4}")).collect();
                s.push_str(&format!(
                    "  #{:<4} {}  [{}]\n",
                    entry.index,
                    entry.id,
                    values.join(", ")
                ));
            }
        }
        for m in &self.marginals {
            let means: Vec<String> = m
                .means
                .iter()
                .map(|v| match v {
                    Some(v) => format!("{v:.4}"),
                    None => "-".into(),
                })
                .collect();
            s.push_str(&format!(
                "  {}={} ({} ok): [{}]\n",
                m.axis,
                m.value,
                m.points,
                means.join(", ")
            ));
        }
        s
    }
}

/// A finished sweep: every record (in grid order) plus the summary.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// All records, sorted by grid index.
    pub records: Vec<SweepRecord>,
    /// Front, marginals and counters.
    pub summary: SweepSummary,
}

/// The shared per-(chip, seed) planning context: everything expensive
/// that does not depend on the planner knobs being swept.
struct ChipCtx {
    label: String,
    chip: Chip,
    request: ChipRequest,
    spec_key: u64,
    model: Option<CrosstalkModel>,
    plan_ctx: PlanContext,
}

/// Runs a sweep with a private or persisted cache (per
/// [`SweepOptions::cache_path`]), streaming JSONL records to `out`.
///
/// # Errors
///
/// [`SweepError::Spec`] for invalid specs, [`SweepError::Objective`]
/// for unusable objective lists, [`SweepError::Io`]/
/// [`SweepError::Cache`] for record or cache file problems. Planner
/// failures at individual grid points do **not** fail the sweep — they
/// become `status: "Error"` records.
pub fn run_sweep<W: Write>(
    spec: &SweepSpec,
    options: &SweepOptions,
    out: &mut W,
) -> Result<SweepOutcome, SweepError> {
    let cache = match &options.cache_path {
        Some(path) if path.exists() => {
            let text = std::fs::read_to_string(path)?;
            PlanCache::from_json(&text, options.cache_capacity)
                .map_err(|e| SweepError::Cache(e.to_string()))?
        }
        _ => PlanCache::new(options.cache_capacity),
    };
    let outcome = run_sweep_with_cache(spec, options, &cache, out)?;
    if let Some(path) = &options.cache_path {
        // Temp-and-rename, so a crash mid-save never tears the file.
        cache.save_atomic(path)?;
    }
    Ok(outcome)
}

/// [`run_sweep`] against a caller-owned [`PlanCache`] (e.g. one shared
/// with a `youtiao-serve` batch service).
pub fn run_sweep_with_cache<W: Write>(
    spec: &SweepSpec,
    options: &SweepOptions,
    cache: &PlanCache<PointResult>,
    out: &mut W,
) -> Result<SweepOutcome, SweepError> {
    let started = Instant::now();
    let grid = SweepGrid::resolve(spec)?;
    if !options.timings
        && options
            .objectives
            .iter()
            .any(|o| o.kind == ObjectiveKind::Latency)
    {
        return Err(SweepError::Objective(
            "the latency objective needs timings enabled (`--timings`)".into(),
        ));
    }

    // Phase 1 (serial): one shared context per (chip, characterization
    // seed) — the whole point of the exercise. Matrices, model fits and
    // grouping kernels happen here, once, not inside the per-point loop.
    let kernels_before = PairKernels::build_count();
    let mut chips = Vec::with_capacity(grid.chips.len());
    for (index, request) in grid.chips.iter().enumerate() {
        if request.is_multi() {
            return Err(SweepError::Spec(SpecError::Chip {
                index,
                message: "per-chip `chiplets` is not a sweep input; use the top-level \
                          `chiplets`/`link_topologies` axes"
                    .into(),
            }));
        }
        let chip = request.build().map_err(|e| {
            SweepError::Spec(SpecError::Chip {
                index,
                message: e.to_string(),
            })
        })?;
        let spec_key = content_key(&ChipSpec::from_chip(&chip));
        chips.push((chip, spec_key));
    }
    let fallback = PlannerConfig::default().weights;
    let ctx_seeds: Vec<u64> = if spec.uses_model() {
        let mut seeds = Vec::new();
        for &seed in &grid.seeds {
            if !seeds.contains(&seed) {
                seeds.push(seed);
            }
        }
        seeds
    } else {
        vec![0]
    };
    let mut contexts: HashMap<(usize, u64), ChipCtx> = HashMap::new();
    for (chip_idx, (chip, spec_key)) in chips.iter().enumerate() {
        for &seed in &ctx_seeds {
            let model = spec.uses_model().then(|| characterize_xy(chip, seed));
            let plan_ctx = PlanContext::build(chip, model.as_ref(), fallback);
            contexts.insert(
                (chip_idx, seed),
                ChipCtx {
                    label: chip.name().to_string(),
                    chip: chip.clone(),
                    request: grid.chips[chip_idx].clone(),
                    spec_key: *spec_key,
                    model,
                    plan_ctx,
                },
            );
        }
    }
    let contexts_built = contexts.len();
    let cache_before = cache.stats();

    // Phase 2 (parallel): workers pull grid indices from an atomic
    // counter; the main thread reorders completions and streams JSONL
    // strictly in index order.
    let total = grid.len();
    let threads = if options.threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        options.threads
    }
    .clamp(1, total);

    // Intra-plan threads compose with the point-level pool: the same
    // oversubscription policy as `youtiao serve` (auto = serial plans
    // when points already fan out across workers).
    let plan_threads = youtiao_serve::effective_plan_threads(options.plan_threads, threads);

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, SweepRecord)>();
    let mut records: Vec<SweepRecord> = Vec::with_capacity(total);
    let mut io_error: Option<std::io::Error> = None;
    {
        let grid = &grid;
        let contexts = &contexts;
        let next = &next;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let tx = tx.clone();
                s.spawn(move || loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= total {
                        break;
                    }
                    let point = grid.point(index);
                    let seed_key = if spec.uses_model() { point.seed } else { 0 };
                    let ctx = &contexts[&(point.chip_idx, seed_key)];
                    let record = run_point(&point, ctx, spec, options, plan_threads, cache);
                    if tx.send((index, record)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            let mut pending: BTreeMap<usize, SweepRecord> = BTreeMap::new();
            let mut next_write = 0usize;
            for (index, record) in rx {
                pending.insert(index, record);
                while let Some(record) = pending.remove(&next_write) {
                    let line = serde_json::to_string(&record).expect("records always serialize");
                    if let Err(e) = writeln!(out, "{line}") {
                        io_error = Some(e);
                        break;
                    }
                    records.push(record);
                    next_write += 1;
                }
                if io_error.is_some() {
                    break;
                }
            }
        });
    }
    if let Some(e) = io_error {
        return Err(SweepError::Io(e));
    }

    // Phase 3: front + marginals + counters.
    let (effective, pareto) = pareto_front(&records, &options.objectives);
    let marginals = axis_marginals(&grid, &records, &effective);
    let cache_delta = cache.stats().since(&cache_before);
    let ok = records.iter().filter(|r| r.is_ok()).count();
    let summary = SweepSummary {
        name: spec.name.clone(),
        points: records.len(),
        ok,
        errors: records.len() - ok,
        threads,
        contexts_built,
        kernels_built: usize::try_from(PairKernels::build_count() - kernels_before)
            .unwrap_or(usize::MAX),
        cache_hits: cache_delta.hits,
        cache_misses: cache_delta.misses,
        objectives: effective.iter().map(Objective::to_string).collect(),
        pareto,
        marginals,
        elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
    };
    Ok(SweepOutcome { records, summary })
}

/// Plans (or recalls) one grid point and fills its record.
fn run_point(
    point: &GridPoint,
    ctx: &ChipCtx,
    spec: &SweepSpec,
    options: &SweepOptions,
    plan_threads: usize,
    cache: &PlanCache<PointResult>,
) -> SweepRecord {
    let started = Instant::now();
    let skeleton = SweepRecord::skeleton(point, &ctx.label, ctx.chip.num_qubits() * point.chiplets);
    let key = point_key(point, ctx, spec);
    let mut record = if let Some(hit) = cache.get(key) {
        skeleton.with_result(&hit)
    } else {
        match catch_unwind(AssertUnwindSafe(|| {
            compute_point(point, ctx, spec, options.timings, plan_threads)
        })) {
            Ok(Ok((result, stages))) => {
                cache.insert(key, result.clone());
                let mut record = skeleton.with_result(&result);
                if options.timings {
                    record.stages = Some(stages);
                }
                record
            }
            Ok(Err(message)) => skeleton.with_error(message),
            Err(_) => skeleton.with_error("panic while planning this point"),
        }
    };
    if options.timings {
        record.latency_ms = Some(started.elapsed().as_secs_f64() * 1e3);
    }
    record
}

/// The content key a point's result is memoized under: every input
/// that can change the [`PointResult`]. (Nested ≤3-tuples — the
/// vendored serde's tuple arity limit.)
fn point_key(point: &GridPoint, ctx: &ChipCtx, spec: &SweepSpec) -> u64 {
    let key = content_key(&(
        ("xplore-v1", ctx.spec_key, point.mode.to_string()),
        (
            (
                point.theta,
                point.max_shared_slots,
                point.fdm_capacity as u64,
            ),
            (
                point.readout_capacity as u64,
                point.one_to_eight,
                if spec.uses_model() { point.seed } else { 0 },
            ),
        ),
        (
            spec.uses_model(),
            spec.wants_fidelity(),
            spec.partition_target.unwrap_or(0) as u64,
        ),
    ));
    // Chiplet knobs fold in only for multi-die points, so every
    // monolithic key (and any cache persisted before the chiplet axes
    // existed) stays stable.
    if point.chiplets > 1 {
        content_key(&(
            key,
            point.chiplets as u64,
            point.link_topology.name().to_string(),
        ))
    } else {
        key
    }
}

/// Per-qubit error evaluation shared by both modes: all-driven
/// processor fidelity and mean gate fidelity.
fn evaluate_fidelity(
    scenario: &FdmScenario<'_>,
    timings: bool,
    stages: &mut Vec<StageMs>,
) -> (Option<f64>, Option<f64>) {
    let started = Instant::now();
    let errs = per_qubit_gate_error(scenario, &default_simulator());
    let fidelity: f64 = errs.iter().map(|e| 1.0 - e).product();
    let mean = 1.0 - errs.iter().sum::<f64>() / errs.len() as f64;
    if timings {
        stages.push(StageMs {
            name: "fidelity".into(),
            ms: started.elapsed().as_secs_f64() * 1e3,
        });
    }
    (Some(fidelity), Some(mean))
}

/// The actual work at one grid point.
fn compute_point(
    point: &GridPoint,
    ctx: &ChipCtx,
    spec: &SweepSpec,
    timings: bool,
    plan_threads: usize,
) -> Result<(PointResult, Vec<StageMs>), String> {
    if point.chiplets > 1 {
        return compute_multi_point(point, ctx, spec, timings, plan_threads);
    }
    let chip = &ctx.chip;
    let mut stages = Vec::new();
    let dedicated = WiringTally::google(chip);

    match point.mode {
        SweepMode::Dedicated => {
            let (fidelity, mean) = if spec.wants_fidelity() {
                let model = ctx.model.as_ref().expect("fidelity implies a model");
                // Dedicated wiring: one XY line per qubit.
                let lines: Vec<FdmLine> = (0..chip.num_qubits())
                    .map(|i| FdmLine::new(vec![QubitId::from(i)]))
                    .collect();
                let freqs = allocate_frequencies(
                    chip,
                    &lines,
                    ctx.plan_ctx.crosstalk(),
                    &FreqConfig::default(),
                )
                .map_err(|e| e.to_string())?;
                let scenario = FdmScenario {
                    chip,
                    lines: &lines,
                    freqs: &freqs,
                    model,
                };
                evaluate_fidelity(&scenario, timings, &mut stages)
            } else {
                (None, None)
            };
            Ok((
                PointResult {
                    qubits: chip.num_qubits(),
                    xy_lines: dedicated.xy_lines,
                    z_lines: dedicated.z_lines,
                    readout_feedlines: dedicated.readout_feedlines,
                    coax_lines: dedicated.coax_lines(),
                    cost_kusd: dedicated.cost_kusd(),
                    dedicated_coax: dedicated.coax_lines(),
                    dedicated_cost_kusd: dedicated.cost_kusd(),
                    demux_deep: 0,
                    demux_one_to_two: 0,
                    demux_direct: chip.num_z_devices(),
                    fidelity,
                    mean_gate_fidelity: mean,
                },
                stages,
            ))
        }
        SweepMode::Youtiao => {
            let mut config = PlannerConfig::default();
            config.tdm.theta = point.theta;
            config.tdm.max_shared_slots = point.max_shared_slots;
            config.tdm.allow_one_to_eight = point.one_to_eight;
            config.fdm_capacity = point.fdm_capacity;
            config.readout_capacity = point.readout_capacity;
            // Intra-plan parallelism: byte-identical plans at any
            // count, so this never enters `point_key`.
            config.plan_threads = plan_threads;
            if let Some(target) = spec.partition_target {
                config.partition = Some(PartitionConfig::for_target_size(chip, target));
            }
            let mut planner = YoutiaoPlanner::new(chip)
                .with_config(config)
                .with_context(&ctx.plan_ctx);
            if let Some(model) = &ctx.model {
                planner = planner.with_crosstalk_model(model);
            }
            let plan = planner
                .plan_with_hook(&mut |stage, elapsed| {
                    if timings {
                        stages.push(StageMs {
                            name: stage.to_string(),
                            ms: elapsed.as_secs_f64() * 1e3,
                        });
                    }
                })
                .map_err(|e| e.to_string())?;

            let tally = WiringTally::youtiao(&plan);
            let (mut deep, mut one_to_two, mut direct) = (0, 0, 0);
            for group in plan.tdm_groups() {
                match group.level() {
                    DemuxLevel::OneToEight | DemuxLevel::OneToFour => deep += group.len(),
                    DemuxLevel::OneToTwo => one_to_two += group.len(),
                    _ => direct += group.len(),
                }
            }
            let (fidelity, mean) = if spec.wants_fidelity() {
                let model = ctx.model.as_ref().expect("fidelity implies a model");
                let scenario = FdmScenario {
                    chip,
                    lines: plan.fdm_lines(),
                    freqs: plan.frequency_plan(),
                    model,
                };
                evaluate_fidelity(&scenario, timings, &mut stages)
            } else {
                (None, None)
            };
            Ok((
                PointResult {
                    qubits: chip.num_qubits(),
                    xy_lines: tally.xy_lines,
                    z_lines: tally.z_lines,
                    readout_feedlines: tally.readout_feedlines,
                    coax_lines: tally.coax_lines(),
                    cost_kusd: tally.cost_kusd(),
                    dedicated_coax: dedicated.coax_lines(),
                    dedicated_cost_kusd: dedicated.cost_kusd(),
                    demux_deep: deep,
                    demux_one_to_two: one_to_two,
                    demux_direct: direct,
                    fidelity,
                    mean_gate_fidelity: mean,
                },
                stages,
            ))
        }
    }
}

/// Folds per-qubit gate errors into the all-driven processor fidelity
/// and the mean gate fidelity.
fn fold_errors(errs: &[f64]) -> (Option<f64>, Option<f64>) {
    let fidelity: f64 = errs.iter().map(|e| 1.0 - e).product();
    let mean = 1.0 - errs.iter().sum::<f64>() / errs.len() as f64;
    (Some(fidelity), Some(mean))
}

/// The actual work at a multi-die grid point: tile the chip into a
/// chiplet array, plan every die (per-die characterization seeds, link
/// reconciliation), and report cryostat-level totals. Fidelity is the
/// product over dies of the per-die all-driven fidelity — each die
/// evaluated against its own characterization.
fn compute_multi_point(
    point: &GridPoint,
    ctx: &ChipCtx,
    spec: &SweepSpec,
    timings: bool,
    plan_threads: usize,
) -> Result<(PointResult, Vec<StageMs>), String> {
    let mut stages = Vec::new();
    let mut chip_request = ctx.request.clone();
    chip_request.chiplets = Some(point.chiplets);
    chip_request.link_topology = Some(point.link_topology.name().to_string());
    let mdc = chip_request.build_multi().map_err(|e| e.to_string())?;
    let dedicated = WiringTally::sum(mdc.dies().iter().map(WiringTally::google));
    let seed = if spec.uses_model() { point.seed } else { 0 };

    match point.mode {
        SweepMode::Dedicated => {
            let (fidelity, mean) = if spec.wants_fidelity() {
                let started = Instant::now();
                // Dedicated wiring: one XY line per qubit, identical on
                // every die; only the per-die characterization differs.
                let lines: Vec<FdmLine> = (0..ctx.chip.num_qubits())
                    .map(|i| FdmLine::new(vec![QubitId::from(i)]))
                    .collect();
                let freqs = allocate_frequencies(
                    &ctx.chip,
                    &lines,
                    ctx.plan_ctx.crosstalk(),
                    &FreqConfig::default(),
                )
                .map_err(|e| e.to_string())?;
                let mut errs = Vec::with_capacity(mdc.total_qubits());
                for die in 0..mdc.num_dies() {
                    let model = characterize_xy(&ctx.chip, die_seed(seed, die));
                    let scenario = FdmScenario {
                        chip: &ctx.chip,
                        lines: &lines,
                        freqs: &freqs,
                        model: &model,
                    };
                    errs.extend(per_qubit_gate_error(&scenario, &default_simulator()));
                }
                if timings {
                    stages.push(StageMs {
                        name: "fidelity".into(),
                        ms: started.elapsed().as_secs_f64() * 1e3,
                    });
                }
                fold_errors(&errs)
            } else {
                (None, None)
            };
            Ok((
                PointResult {
                    qubits: mdc.total_qubits(),
                    xy_lines: dedicated.xy_lines,
                    z_lines: dedicated.z_lines,
                    readout_feedlines: dedicated.readout_feedlines,
                    coax_lines: dedicated.coax_lines(),
                    cost_kusd: dedicated.cost_kusd(),
                    dedicated_coax: dedicated.coax_lines(),
                    dedicated_cost_kusd: dedicated.cost_kusd(),
                    demux_deep: 0,
                    demux_one_to_two: 0,
                    demux_direct: mdc.total_z_devices(),
                    fidelity,
                    mean_gate_fidelity: mean,
                },
                stages,
            ))
        }
        SweepMode::Youtiao => {
            let mut config = PlannerConfig::default();
            config.tdm.theta = point.theta;
            config.tdm.max_shared_slots = point.max_shared_slots;
            config.tdm.allow_one_to_eight = point.one_to_eight;
            config.fdm_capacity = point.fdm_capacity;
            config.readout_capacity = point.readout_capacity;
            config.plan_threads = plan_threads;
            if let Some(target) = spec.partition_target {
                config.partition = Some(PartitionConfig::for_target_size(&ctx.chip, target));
            }
            let multi_config = MultiPlanConfig {
                planner: config,
                use_model: spec.uses_model(),
                seed,
                budget: None,
            };
            let exec = ParallelExec::new(plan_threads);
            let started = Instant::now();
            let outcome = plan_multi(&mdc, &multi_config, &exec).map_err(|e| e.to_string())?;
            if timings {
                stages.push(StageMs {
                    name: "plan_multi".into(),
                    ms: started.elapsed().as_secs_f64() * 1e3,
                });
            }

            let tally =
                WiringTally::sum(outcome.dies.iter().map(|d| WiringTally::youtiao(&d.plan)));
            let (mut deep, mut one_to_two, mut direct) = (0, 0, 0);
            for die in &outcome.dies {
                for group in die.plan.tdm_groups() {
                    match group.level() {
                        DemuxLevel::OneToEight | DemuxLevel::OneToFour => deep += group.len(),
                        DemuxLevel::OneToTwo => one_to_two += group.len(),
                        _ => direct += group.len(),
                    }
                }
            }
            let (fidelity, mean) = if spec.wants_fidelity() {
                let started = Instant::now();
                let mut errs = Vec::with_capacity(mdc.total_qubits());
                for (chip, die) in mdc.dies().iter().zip(&outcome.dies) {
                    let model = die.model.as_ref().expect("fidelity implies a model");
                    let scenario = FdmScenario {
                        chip,
                        lines: die.plan.fdm_lines(),
                        freqs: die.plan.frequency_plan(),
                        model,
                    };
                    errs.extend(per_qubit_gate_error(&scenario, &default_simulator()));
                }
                if timings {
                    stages.push(StageMs {
                        name: "fidelity".into(),
                        ms: started.elapsed().as_secs_f64() * 1e3,
                    });
                }
                fold_errors(&errs)
            } else {
                (None, None)
            };
            Ok((
                PointResult {
                    qubits: mdc.total_qubits(),
                    xy_lines: tally.xy_lines,
                    z_lines: tally.z_lines,
                    readout_feedlines: tally.readout_feedlines,
                    coax_lines: tally.coax_lines(),
                    cost_kusd: tally.cost_kusd(),
                    dedicated_coax: dedicated.coax_lines(),
                    dedicated_cost_kusd: dedicated.cost_kusd(),
                    demux_deep: deep,
                    demux_one_to_two: one_to_two,
                    demux_direct: direct,
                    fidelity,
                    mean_gate_fidelity: mean,
                },
                stages,
            ))
        }
    }
}

/// Per-axis marginal means of the effective objectives, for every axis
/// the spec actually sweeps (more than one value).
fn axis_marginals(
    grid: &SweepGrid,
    records: &[SweepRecord],
    objectives: &[Objective],
) -> Vec<AxisMarginal> {
    type Extract = fn(&SweepRecord) -> String;
    let axes: [(&str, usize, Extract); 10] = [
        ("chip", grid.chips.len(), |r| r.chip.clone()),
        ("mode", grid.modes.len(), |r| r.mode.to_string()),
        ("theta", grid.thetas.len(), |r| r.theta.to_string()),
        ("max_shared_slots", grid.max_shared_slots.len(), |r| {
            r.max_shared_slots.to_string()
        }),
        ("fdm_capacity", grid.fdm_capacities.len(), |r| {
            r.fdm_capacity.to_string()
        }),
        ("readout_capacity", grid.readout_capacities.len(), |r| {
            r.readout_capacity.to_string()
        }),
        ("one_to_eight", grid.one_to_eight.len(), |r| {
            r.one_to_eight.to_string()
        }),
        ("chiplets", grid.chiplets.len(), |r| r.chiplets.to_string()),
        ("link_topology", grid.link_topologies.len(), |r| {
            r.link_topology.clone()
        }),
        ("seed", grid.seeds.len(), |r| r.seed.to_string()),
    ];

    let mut marginals = Vec::new();
    for (axis, cardinality, extract) in axes {
        if cardinality < 2 {
            continue;
        }
        // Group Ok records by axis value, preserving first-seen order
        // (which is grid order, hence spec order).
        let mut order: Vec<String> = Vec::new();
        let mut groups: HashMap<String, Vec<&SweepRecord>> = HashMap::new();
        for record in records.iter().filter(|r| r.is_ok()) {
            let value = extract(record);
            if !groups.contains_key(&value) {
                order.push(value.clone());
            }
            groups.entry(value).or_default().push(record);
        }
        for value in order {
            let group = &groups[&value];
            let means = objectives
                .iter()
                .map(|o| {
                    let values: Vec<f64> = group.iter().filter_map(|r| o.value(r)).collect();
                    if values.is_empty() {
                        None
                    } else {
                        Some(values.iter().sum::<f64>() / values.len() as f64)
                    }
                })
                .collect();
            marginals.push(AxisMarginal {
                axis: axis.to_string(),
                value,
                points: group.len(),
                means,
            });
        }
    }
    marginals
}
