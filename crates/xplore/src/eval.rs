//! Per-qubit gate-error evaluation for FDM wiring schemes.
//!
//! During a dense random-XY layer (Figures 12–13), every qubit is driven
//! through its FDM line. Qubit `i`'s error per layer is:
//!
//! * its own calibrated-gate error (pulse-level, RK4);
//! * in-line leakage: off-resonant excitation from every other channel
//!   of the same line, attenuated by the per-channel band-pass filter;
//! * cross-line leakage: spatial XY crosstalk towards every other qubit,
//!   scaled by the Lorentzian spectral-proximity factor — the term the
//!   noise-aware grouping and allocation minimize.
//!
//! This module lives in the exploration crate so that both the sweep
//! engine (per-point fidelity objectives) and the figure binaries in
//! `youtiao-bench` evaluate schemes with the same physics.

use youtiao_chip::{Chip, QubitId};
use youtiao_core::fdm::FdmLine;
use youtiao_core::freq::FrequencyPlan;
use youtiao_noise::model::frequency_scaling;
use youtiao_noise::CrosstalkModel;
use youtiao_pulse::fdm::{FdmLineSimulator, LineSimConfig};

/// An FDM wiring scheme under evaluation.
#[derive(Debug, Clone, Copy)]
pub struct FdmScenario<'a> {
    /// The chip.
    pub chip: &'a Chip,
    /// The FDM line grouping.
    pub lines: &'a [FdmLine],
    /// The frequency assignment.
    pub freqs: &'a FrequencyPlan,
    /// The fitted crosstalk model.
    pub model: &'a CrosstalkModel,
}

/// Per-qubit single-gate error for one dense XY layer.
pub fn per_qubit_gate_error(scenario: &FdmScenario<'_>, sim: &FdmLineSimulator) -> Vec<f64> {
    let chip = scenario.chip;
    let n = chip.num_qubits();
    // Calibration floor is qubit-independent: compute once.
    let floor = sim.x_gate_on_line(&[5.0], 0).target_error();

    let line_of: Vec<Option<usize>> = (0..n)
        .map(|i| {
            scenario
                .lines
                .iter()
                .position(|l| l.contains(QubitId::from(i)))
        })
        .collect();

    (0..n)
        .map(|i| {
            let qi = QubitId::from(i);
            let fi = scenario.freqs.frequency_ghz(qi);
            let mut err = floor;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let qj = QubitId::from(j);
                let fj = scenario.freqs.frequency_ghz(qj);
                if line_of[i].is_some() && line_of[i] == line_of[j] {
                    // Shared line: the drive for q_j reaches q_i through
                    // the band-pass filter at full line amplitude.
                    err += sim.spectator_excitation(fi, fj, 1.0);
                } else {
                    // Different lines: spatial crosstalk scaled by
                    // spectral proximity.
                    err += scenario.model.predict_pair(chip, qi, qj) * frequency_scaling(fj - fi);
                }
            }
            err
        })
        .collect()
}

/// Mean single-qubit gate fidelity across the chip for one dense layer.
pub fn mean_gate_fidelity(scenario: &FdmScenario<'_>, sim: &FdmLineSimulator) -> f64 {
    let errs = per_qubit_gate_error(scenario, sim);
    1.0 - errs.iter().sum::<f64>() / errs.len() as f64
}

/// All-qubit-driven processor fidelity for a single dense XY layer:
/// `Π_i (1 − err_i)` (the Figure 17 (b) headline number).
pub fn processor_fidelity(scenario: &FdmScenario<'_>, sim: &FdmLineSimulator) -> f64 {
    processor_fidelity_after_layers(scenario, sim, 1)
}

/// Whole-processor fidelity after `layers` dense random-XY layers
/// (the Figure 13 (b) decay curve): `Π_i (1 − err_i)^layers`.
pub fn processor_fidelity_after_layers(
    scenario: &FdmScenario<'_>,
    sim: &FdmLineSimulator,
    layers: usize,
) -> f64 {
    let errs = per_qubit_gate_error(scenario, sim);
    errs.iter()
        .map(|e| (1.0 - e).max(0.0).powi(layers as i32))
        .product()
}

/// Convenience: the default pulse simulator used by all FDM experiments.
pub fn default_simulator() -> FdmLineSimulator {
    FdmLineSimulator::new(LineSimConfig::default())
}

/// Fits the XY crosstalk model for a chip from synthesized measurements,
/// using the paper's 5-fold CV procedure. This is the characterization
/// step shared by the sweep engine and the experiment binaries.
pub fn characterize_xy(chip: &Chip, seed: u64) -> CrosstalkModel {
    let samples = youtiao_noise::data::synthesize(
        chip,
        youtiao_noise::data::CrosstalkKind::Xy,
        &youtiao_noise::data::SynthConfig::xy(),
        seed,
    );
    youtiao_noise::fit::fit_crosstalk_model(&samples, &youtiao_noise::fit::FitConfig::paper())
        .expect("synthesized data always fits")
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtiao_chip::distance::equivalent_matrix;
    use youtiao_chip::topology;
    use youtiao_core::baselines::NaiveFdm;
    use youtiao_core::fdm::group_fdm;
    use youtiao_core::freq::{allocate_frequencies, FreqConfig};
    use youtiao_core::plan::crosstalk_matrix;

    #[test]
    fn optimized_scheme_beats_naive() {
        let chip = topology::square_grid(4, 4);
        let model = characterize_xy(&chip, 3);
        let eq = equivalent_matrix(&chip, model.weights());
        let xtalk = crosstalk_matrix(&chip, &eq, Some(&model));
        let lines = group_fdm(&chip, &eq, 4);
        let freqs = allocate_frequencies(&chip, &lines, &xtalk, &FreqConfig::default()).unwrap();
        let naive = NaiveFdm::for_chip(&chip, 4, &FreqConfig::default());

        let sim = default_simulator();
        let opt = FdmScenario {
            chip: &chip,
            lines: &lines,
            freqs: &freqs,
            model: &model,
        };
        let nai = FdmScenario {
            chip: &chip,
            lines: naive.fdm_lines(),
            freqs: naive.frequency_plan(),
            model: &model,
        };
        let f_opt = mean_gate_fidelity(&opt, &sim);
        let f_nai = mean_gate_fidelity(&nai, &sim);
        assert!(f_opt > f_nai, "optimized {f_opt} vs naive {f_nai}");
        assert!(f_opt > 0.999);
    }

    #[test]
    fn fidelity_decays_with_layers() {
        let chip = topology::square_grid(3, 3);
        let model = characterize_xy(&chip, 4);
        let eq = equivalent_matrix(&chip, model.weights());
        let xtalk = crosstalk_matrix(&chip, &eq, Some(&model));
        let lines = group_fdm(&chip, &eq, 4);
        let freqs = allocate_frequencies(&chip, &lines, &xtalk, &FreqConfig::default()).unwrap();
        let s = FdmScenario {
            chip: &chip,
            lines: &lines,
            freqs: &freqs,
            model: &model,
        };
        let sim = default_simulator();
        let f10 = processor_fidelity_after_layers(&s, &sim, 10);
        let f100 = processor_fidelity_after_layers(&s, &sim, 100);
        assert!(f10 > f100);
        assert!(f100 > 0.0);
    }
}
