//! Cartesian sweep grids with stable mixed-radix indexing.
//!
//! The grid assigns every parameter combination a dense index in a
//! fixed axis order (chips outermost; seeds innermost), so results are
//! keyed by grid index and the output stream is deterministic no matter
//! how many worker threads raced to produce it.

use youtiao_chip::multi::LinkTopology;
use youtiao_core::plan::{DEFAULT_FDM_CAPACITY, DEFAULT_READOUT_CAPACITY};
use youtiao_serve::{ChipRequest, DesignRequest, DEFAULT_SEED};

use crate::spec::{SpecError, SweepMode, SweepSpec, DEFAULT_MAX_POINTS};

/// A validated sweep grid: every axis resolved to a non-empty list.
///
/// Axis order (outermost → innermost): chips, modes, thetas,
/// max_shared_slots, fdm_capacities, readout_capacities, one_to_eight,
/// chiplets, link_topologies, seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// Chip axis.
    pub chips: Vec<ChipRequest>,
    /// Wiring-mode axis.
    pub modes: Vec<SweepMode>,
    /// θ axis.
    pub thetas: Vec<f64>,
    /// `max_shared_slots` axis.
    pub max_shared_slots: Vec<u32>,
    /// FDM capacity axis.
    pub fdm_capacities: Vec<usize>,
    /// Readout capacity axis.
    pub readout_capacities: Vec<usize>,
    /// 1:8 DEMUX permission axis.
    pub one_to_eight: Vec<bool>,
    /// Chiplet-count axis.
    pub chiplets: Vec<usize>,
    /// Inter-die link topology axis.
    pub link_topologies: Vec<LinkTopology>,
    /// Seed axis.
    pub seeds: Vec<u64>,
}

/// One decoded grid point: the parameter tuple at a grid index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// Dense grid index (row-major over the axis order).
    pub index: usize,
    /// Index into the chip axis.
    pub chip_idx: usize,
    /// Wiring mode.
    pub mode: SweepMode,
    /// TDM threshold θ.
    pub theta: f64,
    /// TDM shared-slot budget.
    pub max_shared_slots: u32,
    /// FDM XY-line capacity.
    pub fdm_capacity: usize,
    /// Readout feedline capacity.
    pub readout_capacity: usize,
    /// Whether 1:8 cryo-DEMUXes are allowed.
    pub one_to_eight: bool,
    /// Chiplet count (`1` = monolithic).
    pub chiplets: usize,
    /// Inter-die link topology (only meaningful when `chiplets > 1`).
    pub link_topology: LinkTopology,
    /// Characterization seed.
    pub seed: u64,
}

impl GridPoint {
    /// The equivalent serving-layer [`DesignRequest`] for this point —
    /// interop with `youtiao batch` and its cache. `max_shared_slots`
    /// and partitioning have no request field and are dropped; routing
    /// is off (sweeps compare plans, not layouts). Multi-die points
    /// carry their chiplet knobs on the request's chip.
    pub fn to_design_request(&self, chip: &ChipRequest) -> DesignRequest {
        let mut chip = chip.clone();
        if self.chiplets > 1 {
            chip.chiplets = Some(self.chiplets);
            chip.link_topology = Some(self.link_topology.name().to_string());
        }
        let mut request = DesignRequest::new(chip);
        request.seed = Some(self.seed);
        request.theta = Some(self.theta);
        request.fdm_capacity = Some(self.fdm_capacity);
        request.readout_capacity = Some(self.readout_capacity);
        request.one_to_eight = Some(self.one_to_eight);
        request.routing = Some(false);
        request
    }
}

fn axis<T: Clone>(
    given: &Option<Vec<T>>,
    default: T,
    name: &'static str,
) -> Result<Vec<T>, SpecError> {
    match given {
        Some(values) if values.is_empty() => Err(SpecError::EmptyAxis(name)),
        Some(values) => Ok(values.clone()),
        None => Ok(vec![default]),
    }
}

/// Resolves the link-topology axis, parsing names into
/// [`LinkTopology`] values.
fn link_axis(given: &Option<Vec<String>>) -> Result<Vec<LinkTopology>, SpecError> {
    let names = axis(
        given,
        LinkTopology::Grid.name().to_string(),
        "link_topologies",
    )?;
    names
        .iter()
        .map(|name| {
            LinkTopology::parse(name).ok_or_else(|| SpecError::BadAxisValue {
                axis: "link_topologies",
                message: format!("unknown link topology `{name}` (grid, torus or isolated)"),
            })
        })
        .collect()
}

impl SweepGrid {
    /// Resolves a spec's axes (filling defaults), rejecting empty axes
    /// and absurd cartesian products.
    ///
    /// # Errors
    ///
    /// [`SpecError::EmptyAxis`] for any explicitly empty axis,
    /// [`SpecError::GridTooLarge`] when the product exceeds the guard,
    /// [`SpecError::FidelityNeedsModel`] for fidelity without a model.
    pub fn resolve(spec: &SweepSpec) -> Result<Self, SpecError> {
        if spec.chips.is_empty() {
            return Err(SpecError::EmptyAxis("chips"));
        }
        if spec.wants_fidelity() && !spec.uses_model() {
            return Err(SpecError::FidelityNeedsModel);
        }
        let grid = SweepGrid {
            chips: spec.chips.clone(),
            modes: axis(&spec.modes, SweepMode::Youtiao, "modes")?,
            thetas: axis(&spec.thetas, 4.0, "thetas")?,
            max_shared_slots: axis(&spec.max_shared_slots, 0, "max_shared_slots")?,
            fdm_capacities: axis(&spec.fdm_capacities, DEFAULT_FDM_CAPACITY, "fdm_capacities")?,
            readout_capacities: axis(
                &spec.readout_capacities,
                DEFAULT_READOUT_CAPACITY,
                "readout_capacities",
            )?,
            one_to_eight: axis(&spec.one_to_eight, false, "one_to_eight")?,
            chiplets: axis(&spec.chiplets, 1, "chiplets")?,
            link_topologies: link_axis(&spec.link_topologies)?,
            seeds: axis(&spec.seeds, DEFAULT_SEED, "seeds")?,
        };
        if grid.chiplets.contains(&0) {
            return Err(SpecError::BadAxisValue {
                axis: "chiplets",
                message: "chiplet counts must be at least 1".into(),
            });
        }
        let limit = spec.max_points.unwrap_or(DEFAULT_MAX_POINTS);
        match grid.checked_len() {
            Some(points) if points <= limit => Ok(grid),
            Some(points) => Err(SpecError::GridTooLarge { points, limit }),
            None => Err(SpecError::GridTooLarge {
                points: usize::MAX,
                limit,
            }),
        }
    }

    fn radices(&self) -> [usize; 10] {
        [
            self.chips.len(),
            self.modes.len(),
            self.thetas.len(),
            self.max_shared_slots.len(),
            self.fdm_capacities.len(),
            self.readout_capacities.len(),
            self.one_to_eight.len(),
            self.chiplets.len(),
            self.link_topologies.len(),
            self.seeds.len(),
        ]
    }

    fn checked_len(&self) -> Option<usize> {
        self.radices()
            .iter()
            .try_fold(1usize, |acc, &r| acc.checked_mul(r))
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.radices().iter().product()
    }

    /// `true` when the grid has no points (cannot happen for a resolved
    /// grid — every axis is non-empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes the parameter tuple at `index` (mixed-radix, row-major
    /// in the documented axis order).
    ///
    /// # Panics
    ///
    /// Panics when `index >= self.len()`.
    pub fn point(&self, index: usize) -> GridPoint {
        assert!(index < self.len(), "grid index {index} out of range");
        let radices = self.radices();
        let mut digits = [0usize; 10];
        let mut rest = index;
        for axis in (0..10).rev() {
            digits[axis] = rest % radices[axis];
            rest /= radices[axis];
        }
        GridPoint {
            index,
            chip_idx: digits[0],
            mode: self.modes[digits[1]],
            theta: self.thetas[digits[2]],
            max_shared_slots: self.max_shared_slots[digits[3]],
            fdm_capacity: self.fdm_capacities[digits[4]],
            readout_capacity: self.readout_capacities[digits[5]],
            one_to_eight: self.one_to_eight[digits[6]],
            chiplets: self.chiplets[digits[7]],
            link_topology: self.link_topologies[digits[8]],
            seed: self.seeds[digits[9]],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_spec() -> SweepSpec {
        SweepSpec::new(vec![
            ChipRequest::grid("square", 3, 3),
            ChipRequest::named("linear"),
        ])
    }

    #[test]
    fn defaults_give_one_point_per_chip() {
        let grid = SweepGrid::resolve(&base_spec()).unwrap();
        assert_eq!(grid.len(), 2);
        let p = grid.point(1);
        assert_eq!(p.chip_idx, 1);
        assert_eq!(p.theta, 4.0);
        assert_eq!(p.fdm_capacity, DEFAULT_FDM_CAPACITY);
        assert_eq!(p.seed, DEFAULT_SEED);
    }

    #[test]
    fn indexing_is_row_major_with_chips_outermost() {
        let mut spec = base_spec();
        spec.thetas = Some(vec![2.0, 8.0]);
        spec.seeds = Some(vec![1, 2, 3]);
        let grid = SweepGrid::resolve(&spec).unwrap();
        assert_eq!(grid.len(), 12);
        // index = ((chip * thetas + theta) * seeds) + seed
        let p = grid.point(7);
        assert_eq!((p.chip_idx, p.theta, p.seed), (1, 2.0, 2));
        // Every index decodes to a unique tuple.
        let mut seen = std::collections::HashSet::new();
        for i in 0..grid.len() {
            let p = grid.point(i);
            assert_eq!(p.index, i);
            assert!(seen.insert((p.chip_idx, p.theta.to_bits(), p.seed)));
        }
    }

    #[test]
    fn empty_axes_are_rejected() {
        let mut spec = base_spec();
        spec.chips.clear();
        assert_eq!(
            SweepGrid::resolve(&spec).unwrap_err(),
            SpecError::EmptyAxis("chips")
        );
        let mut spec = base_spec();
        spec.thetas = Some(vec![]);
        assert_eq!(
            SweepGrid::resolve(&spec).unwrap_err(),
            SpecError::EmptyAxis("thetas")
        );
        let mut spec = base_spec();
        spec.seeds = Some(vec![]);
        assert_eq!(
            SweepGrid::resolve(&spec).unwrap_err(),
            SpecError::EmptyAxis("seeds")
        );
    }

    #[test]
    fn grid_size_guard_errors_instead_of_oom() {
        let mut spec = base_spec();
        spec.thetas = Some((0..100).map(|i| i as f64).collect());
        spec.seeds = Some((0..100).collect());
        assert!(matches!(
            SweepGrid::resolve(&spec).unwrap_err(),
            SpecError::GridTooLarge { points: 20_000, .. }
        ));
        // Raising max_points admits the same grid.
        spec.max_points = Some(20_000);
        assert_eq!(SweepGrid::resolve(&spec).unwrap().len(), 20_000);
    }

    #[test]
    fn overflowing_product_is_caught() {
        let mut spec = base_spec();
        let huge: Vec<u64> = (0..1 << 17).collect();
        spec.seeds = Some(huge.clone());
        spec.thetas = Some((0..1 << 16).map(f64::from).collect());
        spec.fdm_capacities = Some((1..(1 << 16) + 1).collect());
        spec.max_shared_slots = Some((0..1 << 16).collect());
        assert!(matches!(
            SweepGrid::resolve(&spec).unwrap_err(),
            SpecError::GridTooLarge { .. }
        ));
    }

    #[test]
    fn fidelity_without_model_is_rejected() {
        let mut spec = base_spec();
        spec.fidelity = Some(true);
        spec.use_model = Some(false);
        assert_eq!(
            SweepGrid::resolve(&spec).unwrap_err(),
            SpecError::FidelityNeedsModel
        );
    }

    #[test]
    fn chiplet_axes_resolve_and_decode() {
        let mut spec = base_spec();
        spec.chiplets = Some(vec![1, 4]);
        spec.link_topologies = Some(vec!["grid".into(), "torus".into()]);
        let grid = SweepGrid::resolve(&spec).unwrap();
        assert_eq!(grid.len(), 8);
        // Chiplets vary slower than link topologies, which vary slower
        // than seeds (the innermost axis).
        let p = grid.point(3);
        assert_eq!(p.chip_idx, 0);
        assert_eq!(p.chiplets, 4);
        assert_eq!(p.link_topology, LinkTopology::Torus);
        // Defaults: one monolithic grid-linked point per chip.
        let grid = SweepGrid::resolve(&base_spec()).unwrap();
        let p = grid.point(0);
        assert_eq!(p.chiplets, 1);
        assert_eq!(p.link_topology, LinkTopology::Grid);
    }

    #[test]
    fn bad_chiplet_axis_values_are_rejected() {
        let mut spec = base_spec();
        spec.chiplets = Some(vec![2, 0]);
        assert!(matches!(
            SweepGrid::resolve(&spec).unwrap_err(),
            SpecError::BadAxisValue {
                axis: "chiplets",
                ..
            }
        ));
        let mut spec = base_spec();
        spec.link_topologies = Some(vec!["ring".into()]);
        assert!(matches!(
            SweepGrid::resolve(&spec).unwrap_err(),
            SpecError::BadAxisValue {
                axis: "link_topologies",
                ..
            }
        ));
    }

    #[test]
    fn multi_points_carry_chiplet_knobs_into_requests() {
        let mut spec = base_spec();
        spec.chiplets = Some(vec![4]);
        spec.link_topologies = Some(vec!["torus".into()]);
        let grid = SweepGrid::resolve(&spec).unwrap();
        let p = grid.point(0);
        let request = p.to_design_request(&grid.chips[p.chip_idx]);
        assert_eq!(request.chip.chiplets, Some(4));
        assert_eq!(request.chip.link_topology.as_deref(), Some("torus"));
        // Monolithic points leave the chip request untouched.
        let grid = SweepGrid::resolve(&base_spec()).unwrap();
        let p = grid.point(0);
        let request = p.to_design_request(&grid.chips[p.chip_idx]);
        assert_eq!(request.chip.chiplets, None);
        assert_eq!(request.chip.link_topology, None);
    }

    #[test]
    fn design_request_interop() {
        let mut spec = base_spec();
        spec.thetas = Some(vec![6.0]);
        spec.seeds = Some(vec![9]);
        let grid = SweepGrid::resolve(&spec).unwrap();
        let p = grid.point(0);
        let request = p.to_design_request(&grid.chips[p.chip_idx]);
        assert_eq!(request.theta, Some(6.0));
        assert_eq!(request.seed(), 9);
        assert!(!request.wants_routing());
        assert_eq!(request.planner_config().tdm.theta, 6.0);
    }
}
