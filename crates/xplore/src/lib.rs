//! # youtiao-xplore — parallel design-space exploration
//!
//! Turns a declarative [`SweepSpec`] (JSON axes over chips, θ,
//! `max_shared_slots`, FDM/readout capacity, DEMUX fan-out, wiring
//! mode and characterization seeds) into the cartesian grid of design
//! points, plans every point in parallel against a **shared planning
//! context** (matrices and noise fit built once per chip × seed, not
//! per point), and streams one JSONL [`SweepRecord`] per point in grid
//! order — byte-identical output no matter the thread count.
//!
//! After the grid drains, the engine extracts a dominance-based Pareto
//! front over configurable [`Objective`]s (minimize cost/coax/latency,
//! maximize fidelity) plus per-axis marginal means, and can memoize
//! point results in a `youtiao-serve` [`PlanCache`] across runs.
//!
//! The `youtiao sweep` CLI subcommand and the Figure 16/17 experiment
//! binaries in `youtiao-bench` are thin wrappers over [`run_sweep`].
//!
//! ```
//! use youtiao_serve::ChipRequest;
//! use youtiao_xplore::{run_sweep, SweepOptions, SweepSpec};
//!
//! let mut spec = SweepSpec::new(vec![ChipRequest::grid("square", 3, 3)]);
//! spec.thetas = Some(vec![2.0, 8.0]);
//! spec.use_model = Some(false);
//! let mut jsonl = Vec::new();
//! let outcome = run_sweep(&spec, &SweepOptions::default(), &mut jsonl).unwrap();
//! assert_eq!(outcome.records.len(), 2);
//! assert!(outcome.records.iter().all(|r| r.is_ok()));
//! assert!(!outcome.summary.pareto.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod eval;
pub mod grid;
pub mod pareto;
pub mod record;
pub mod spec;

pub use crate::engine::{
    run_sweep, run_sweep_with_cache, AxisMarginal, SweepError, SweepOptions, SweepOutcome,
    SweepSummary,
};
pub use crate::grid::{GridPoint, SweepGrid};
pub use crate::pareto::{pareto_front, parse_objectives, Objective, ObjectiveKind, ParetoEntry};
pub use crate::record::{write_csv, PointResult, StageMs, SweepRecord, SweepStatus};
pub use crate::spec::{SpecError, SweepMode, SweepSpec, DEFAULT_MAX_POINTS};

// Re-exported so sweep callers can build chip axes without importing
// the serving crate.
pub use youtiao_serve::{ChipRequest, PlanCache};
