//! Dominance-based Pareto-front extraction over sweep records.
//!
//! Objectives are named metrics with an optimization direction. A record
//! dominates another when it is no worse on every objective and strictly
//! better on at least one (after normalizing everything to
//! minimization). Ties and exact duplicates are mutually
//! non-dominating, so both stay on the front.

use crate::record::SweepRecord;

/// A metric a sweep can optimize over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ObjectiveKind {
    /// Wiring cost in kUSD (minimize).
    Cost,
    /// Total coax lines into the cryostat (minimize).
    Coax,
    /// All-qubit-driven XY fidelity (maximize).
    Fidelity,
    /// Per-point planning wall time (minimize; needs timings mode).
    Latency,
}

/// An objective: a metric plus its optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Objective {
    /// Which metric.
    pub kind: ObjectiveKind,
    /// `true` to maximize, `false` to minimize.
    pub maximize: bool,
}

impl Objective {
    /// The conventional direction for `kind` (fidelity up, rest down).
    pub fn conventional(kind: ObjectiveKind) -> Self {
        Objective {
            kind,
            maximize: matches!(kind, ObjectiveKind::Fidelity),
        }
    }

    /// The objective's value on a record, if present. Error records and
    /// records missing the metric yield `None` (and are never on the
    /// front).
    pub fn value(&self, record: &SweepRecord) -> Option<f64> {
        if !record.is_ok() {
            return None;
        }
        match self.kind {
            ObjectiveKind::Cost => record.cost_kusd,
            ObjectiveKind::Coax => record.coax_lines.map(|c| c as f64),
            ObjectiveKind::Fidelity => record.fidelity,
            ObjectiveKind::Latency => record.latency_ms,
        }
    }

    /// The value folded to minimization (maximize → negate).
    fn score(&self, record: &SweepRecord) -> Option<f64> {
        self.value(record)
            .map(|v| if self.maximize { -v } else { v })
    }

    /// The objective's CLI/summary name.
    pub fn name(&self) -> &'static str {
        match self.kind {
            ObjectiveKind::Cost => "cost",
            ObjectiveKind::Coax => "coax",
            ObjectiveKind::Fidelity => "fidelity",
            ObjectiveKind::Latency => "latency",
        }
    }
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let arrow = if self.maximize { "max" } else { "min" };
        write!(f, "{}({})", arrow, self.name())
    }
}

/// Parses a comma-separated objective list (`"cost,fidelity"`) with
/// conventional directions.
///
/// # Errors
///
/// Returns the offending token for unknown names.
pub fn parse_objectives(list: &str) -> Result<Vec<Objective>, String> {
    let mut objectives = Vec::new();
    for token in list.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let kind = match token {
            "cost" => ObjectiveKind::Cost,
            "coax" => ObjectiveKind::Coax,
            "fidelity" => ObjectiveKind::Fidelity,
            "latency" => ObjectiveKind::Latency,
            other => {
                return Err(format!(
                    "unknown objective `{other}` (expected cost, coax, fidelity or latency)"
                ))
            }
        };
        let objective = Objective::conventional(kind);
        if !objectives.contains(&objective) {
            objectives.push(objective);
        }
    }
    Ok(objectives)
}

/// One point on the extracted Pareto front.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ParetoEntry {
    /// The record's grid index.
    pub index: usize,
    /// The record's human-readable id.
    pub id: String,
    /// Objective values in the order of the effective objective list
    /// (raw values, not minimize-normalized).
    pub values: Vec<f64>,
}

/// `a` dominates `b`: no worse everywhere, strictly better somewhere.
fn dominates(a: &[f64], b: &[f64]) -> bool {
    let mut strictly = false;
    for (&x, &y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Extracts the Pareto front of `records` over `objectives`.
///
/// Objectives that no successful record carries a value for (e.g.
/// `fidelity` on a sweep that never evaluated it) are dropped before
/// extraction; the effective objective list is returned alongside the
/// front. Records missing a value for any *effective* objective are
/// excluded. Front entries come back sorted by grid index; duplicates
/// and ties survive (neither dominates the other).
pub fn pareto_front(
    records: &[SweepRecord],
    objectives: &[Objective],
) -> (Vec<Objective>, Vec<ParetoEntry>) {
    let effective: Vec<Objective> = objectives
        .iter()
        .copied()
        .filter(|o| records.iter().any(|r| o.value(r).is_some()))
        .collect();
    if effective.is_empty() {
        return (effective, Vec::new());
    }

    // (record position, minimize-normalized scores)
    let scored: Vec<(usize, Vec<f64>)> = records
        .iter()
        .enumerate()
        .filter_map(|(pos, r)| {
            effective
                .iter()
                .map(|o| o.score(r))
                .collect::<Option<Vec<f64>>>()
                .map(|scores| (pos, scores))
        })
        .collect();

    let mut front: Vec<ParetoEntry> = scored
        .iter()
        .filter(|(_, scores)| !scored.iter().any(|(_, other)| dominates(other, scores)))
        .map(|&(pos, _)| {
            let r = &records[pos];
            ParetoEntry {
                index: r.index,
                id: r.id.clone(),
                values: effective.iter().map(|o| o.value(r).unwrap()).collect(),
            }
        })
        .collect();
    front.sort_by_key(|e| e.index);
    (effective, front)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridPoint;
    use crate::record::{PointResult, SweepRecord};
    use crate::spec::SweepMode;

    fn record(index: usize, cost: f64, fidelity: Option<f64>) -> SweepRecord {
        let point = GridPoint {
            index,
            chip_idx: 0,
            mode: SweepMode::Youtiao,
            theta: 4.0,
            max_shared_slots: 0,
            fdm_capacity: 5,
            readout_capacity: 8,
            one_to_eight: false,
            chiplets: 1,
            link_topology: youtiao_chip::multi::LinkTopology::Grid,
            seed: 0,
        };
        let result = PointResult {
            qubits: 9,
            xy_lines: 2,
            z_lines: 7,
            readout_feedlines: 2,
            coax_lines: 11 + index,
            cost_kusd: cost,
            dedicated_coax: 32,
            dedicated_cost_kusd: 216.2,
            demux_deep: 0,
            demux_one_to_two: 0,
            demux_direct: 0,
            fidelity,
            mean_gate_fidelity: None,
        };
        SweepRecord::skeleton(&point, "square-3x3", 9).with_result(&result)
    }

    fn objectives(list: &str) -> Vec<Objective> {
        parse_objectives(list).unwrap()
    }

    #[test]
    fn parse_rejects_unknown_and_dedupes() {
        assert!(parse_objectives("cost,bogus").is_err());
        let objs = objectives("cost, fidelity, cost");
        assert_eq!(objs.len(), 2);
        assert!(!objs[0].maximize);
        assert!(objs[1].maximize);
        assert_eq!(objs[1].to_string(), "max(fidelity)");
    }

    #[test]
    fn tradeoff_front_keeps_both_extremes() {
        // Cheap/low-fidelity and expensive/high-fidelity are both on the
        // front; the dominated middle point (pricier AND worse) is not.
        let records = vec![
            record(0, 50.0, Some(0.99)),
            record(1, 80.0, Some(0.95)), // dominated by 0 and 2
            record(2, 60.0, Some(0.999)),
        ];
        let (eff, front) = pareto_front(&records, &objectives("cost,fidelity"));
        assert_eq!(eff.len(), 2);
        let idx: Vec<usize> = front.iter().map(|e| e.index).collect();
        assert_eq!(idx, vec![0, 2]);
        assert_eq!(front[0].values, vec![50.0, 0.99]);
    }

    #[test]
    fn single_objective_degenerates_to_argmin() {
        let records = vec![
            record(0, 70.0, None),
            record(1, 50.0, None),
            record(2, 60.0, None),
        ];
        let (_, front) = pareto_front(&records, &objectives("cost"));
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].index, 1);
    }

    #[test]
    fn duplicates_and_ties_all_survive() {
        // Exact duplicates.
        let records = vec![record(0, 50.0, Some(0.99)), record(1, 50.0, Some(0.99))];
        let (_, front) = pareto_front(&records, &objectives("cost,fidelity"));
        assert_eq!(front.len(), 2);

        // Tie on one objective, trade-off on the other.
        let records = vec![record(0, 50.0, Some(0.99)), record(1, 50.0, Some(0.999))];
        let (_, front) = pareto_front(&records, &objectives("cost,fidelity"));
        assert_eq!(front.iter().map(|e| e.index).collect::<Vec<_>>(), vec![1]);

        // Tie on cost only — with cost the sole objective both tie.
        let (_, front) = pareto_front(&records, &objectives("cost"));
        assert_eq!(front.len(), 2);
    }

    #[test]
    fn all_dominated_by_one_point() {
        let mut records = vec![
            record(0, 90.0, Some(0.91)),
            record(1, 80.0, Some(0.92)),
            record(2, 70.0, Some(0.93)),
        ];
        records.push(record(3, 10.0, Some(0.999)));
        let (_, front) = pareto_front(&records, &objectives("cost,fidelity"));
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].index, 3);
    }

    #[test]
    fn error_records_and_missing_values_stay_off_the_front() {
        let failed = SweepRecord::skeleton(
            &GridPoint {
                index: 0,
                chip_idx: 0,
                mode: SweepMode::Youtiao,
                theta: 4.0,
                max_shared_slots: 0,
                fdm_capacity: 5,
                readout_capacity: 8,
                one_to_eight: false,
                chiplets: 1,
                link_topology: youtiao_chip::multi::LinkTopology::Grid,
                seed: 0,
            },
            "square-3x3",
            9,
        )
        .with_error("boom");
        let records = vec![failed, record(1, 99.0, None)];
        // Fidelity carries no values anywhere → dropped from the
        // effective list instead of emptying the front.
        let (eff, front) = pareto_front(&records, &objectives("cost,fidelity"));
        assert_eq!(eff.len(), 1);
        assert_eq!(eff[0].kind, ObjectiveKind::Cost);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].index, 1);
    }

    #[test]
    fn no_usable_objectives_gives_empty_front() {
        let records = vec![record(0, 50.0, None)];
        let (eff, front) = pareto_front(&records, &objectives("fidelity"));
        assert!(eff.is_empty());
        assert!(front.is_empty());
    }
}
