//! Sweep output records.
//!
//! One [`SweepRecord`] per grid point, streamed as JSONL (and
//! optionally CSV). Records are fully determined by the spec — latency
//! and per-stage timings are only populated when the engine runs with
//! `timings` on, so default output is byte-identical across thread
//! counts and warm/cold caches.

use std::io::Write;

use crate::grid::GridPoint;
use crate::spec::SweepMode;

/// The deterministic, cacheable payload of one successfully planned
/// grid point (everything in a [`SweepRecord`] that is not a parameter
/// echo or a timing).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PointResult {
    /// Qubits on the chip.
    pub qubits: usize,
    /// Coaxial XY lines under this point's wiring scheme.
    pub xy_lines: usize,
    /// Coaxial Z lines.
    pub z_lines: usize,
    /// Readout feedlines.
    pub readout_feedlines: usize,
    /// Total coax into the cryostat.
    pub coax_lines: usize,
    /// Wiring cost, thousands of USD.
    pub cost_kusd: f64,
    /// Dedicated-baseline coax count for the same chip.
    pub dedicated_coax: usize,
    /// Dedicated-baseline wiring cost, thousands of USD.
    pub dedicated_cost_kusd: f64,
    /// Z devices behind deep (1:4 or 1:8) DEMUXes.
    pub demux_deep: usize,
    /// Z devices behind 1:2 DEMUXes.
    pub demux_one_to_two: usize,
    /// Z devices on direct (dedicated) lines.
    pub demux_direct: usize,
    /// All-qubit-driven XY fidelity (`Π (1 − err_i)`), when evaluated.
    pub fidelity: Option<f64>,
    /// Mean single-qubit gate fidelity, when evaluated.
    pub mean_gate_fidelity: Option<f64>,
}

impl PointResult {
    /// Wiring-cost reduction factor vs the dedicated baseline.
    pub fn cost_reduction(&self) -> f64 {
        self.dedicated_cost_kusd / self.cost_kusd
    }
}

/// Whether a grid point planned successfully.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SweepStatus {
    /// The point produced a [`PointResult`].
    Ok,
    /// Planning or evaluation failed; see `error`.
    Error,
}

/// One wall-time stage measurement (only emitted with timings on).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StageMs {
    /// Stage name (the planner's hook stages plus `fidelity`).
    pub name: String,
    /// Elapsed milliseconds.
    pub ms: f64,
}

/// One line of sweep output: the grid point's parameters, its status,
/// and (on success) the flattened [`PointResult`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SweepRecord {
    /// Dense grid index — the record's identity and sort key.
    pub index: usize,
    /// Human-readable point id (`<chip>/<mode>/theta<θ>/…`).
    pub id: String,
    /// Chip name.
    pub chip: String,
    /// Qubits on the chip.
    pub qubits: usize,
    /// Wiring mode.
    pub mode: SweepMode,
    /// TDM threshold θ.
    pub theta: f64,
    /// TDM shared-slot budget.
    pub max_shared_slots: u32,
    /// FDM XY-line capacity.
    pub fdm_capacity: usize,
    /// Readout feedline capacity.
    pub readout_capacity: usize,
    /// Whether 1:8 cryo-DEMUXes were allowed.
    pub one_to_eight: bool,
    /// Chiplet count (`1` = monolithic).
    pub chiplets: usize,
    /// Inter-die link topology name (`grid` for monolithic points).
    pub link_topology: String,
    /// Characterization seed.
    pub seed: u64,
    /// Point outcome.
    pub status: SweepStatus,
    /// Failure description when `status` is `Error`.
    pub error: Option<String>,
    /// Coaxial XY lines.
    pub xy_lines: Option<usize>,
    /// Coaxial Z lines.
    pub z_lines: Option<usize>,
    /// Readout feedlines.
    pub readout_feedlines: Option<usize>,
    /// Total coax into the cryostat.
    pub coax_lines: Option<usize>,
    /// Wiring cost, thousands of USD.
    pub cost_kusd: Option<f64>,
    /// Dedicated-baseline coax count.
    pub dedicated_coax: Option<usize>,
    /// Dedicated-baseline wiring cost.
    pub dedicated_cost_kusd: Option<f64>,
    /// Cost-reduction factor vs dedicated.
    pub cost_reduction: Option<f64>,
    /// Z devices behind deep (1:4/1:8) DEMUXes.
    pub demux_deep: Option<usize>,
    /// Z devices behind 1:2 DEMUXes.
    pub demux_one_to_two: Option<usize>,
    /// Z devices on direct lines.
    pub demux_direct: Option<usize>,
    /// All-qubit-driven XY fidelity.
    pub fidelity: Option<f64>,
    /// Mean single-qubit gate fidelity.
    pub mean_gate_fidelity: Option<f64>,
    /// Point wall time, milliseconds (timings mode only — volatile).
    pub latency_ms: Option<f64>,
    /// Per-stage wall times (timings mode only — volatile).
    pub stages: Option<Vec<StageMs>>,
}

impl SweepRecord {
    /// The record skeleton for a grid point: parameters echoed, result
    /// fields empty.
    pub fn skeleton(point: &GridPoint, chip_name: &str, qubits: usize) -> Self {
        let GridPoint {
            index,
            mode,
            theta,
            max_shared_slots,
            fdm_capacity,
            readout_capacity,
            one_to_eight,
            chiplets,
            link_topology,
            seed,
            ..
        } = *point;
        let mut id = format!(
            "{chip_name}/{mode}/theta{theta}/mss{max_shared_slots}/fdm{fdm_capacity}\
             /ro{readout_capacity}/o2e{}/seed{seed}",
            u8::from(one_to_eight)
        );
        if chiplets > 1 {
            id.push_str(&format!("/x{chiplets}-{}", link_topology.name()));
        }
        SweepRecord {
            index,
            id,
            chip: chip_name.to_string(),
            qubits,
            mode,
            theta,
            max_shared_slots,
            fdm_capacity,
            readout_capacity,
            one_to_eight,
            chiplets,
            link_topology: link_topology.name().to_string(),
            seed,
            status: SweepStatus::Error,
            error: None,
            xy_lines: None,
            z_lines: None,
            readout_feedlines: None,
            coax_lines: None,
            cost_kusd: None,
            dedicated_coax: None,
            dedicated_cost_kusd: None,
            cost_reduction: None,
            demux_deep: None,
            demux_one_to_two: None,
            demux_direct: None,
            fidelity: None,
            mean_gate_fidelity: None,
            latency_ms: None,
            stages: None,
        }
    }

    /// Fills the skeleton with a successful result.
    pub fn with_result(mut self, result: &PointResult) -> Self {
        self.status = SweepStatus::Ok;
        self.error = None;
        self.qubits = result.qubits;
        self.xy_lines = Some(result.xy_lines);
        self.z_lines = Some(result.z_lines);
        self.readout_feedlines = Some(result.readout_feedlines);
        self.coax_lines = Some(result.coax_lines);
        self.cost_kusd = Some(result.cost_kusd);
        self.dedicated_coax = Some(result.dedicated_coax);
        self.dedicated_cost_kusd = Some(result.dedicated_cost_kusd);
        self.cost_reduction = Some(result.cost_reduction());
        self.demux_deep = Some(result.demux_deep);
        self.demux_one_to_two = Some(result.demux_one_to_two);
        self.demux_direct = Some(result.demux_direct);
        self.fidelity = result.fidelity;
        self.mean_gate_fidelity = result.mean_gate_fidelity;
        self
    }

    /// Marks the skeleton failed with `message`.
    pub fn with_error(mut self, message: impl Into<String>) -> Self {
        self.status = SweepStatus::Error;
        self.error = Some(message.into());
        self
    }

    /// `true` for successfully planned points.
    pub fn is_ok(&self) -> bool {
        self.status == SweepStatus::Ok
    }
}

/// CSV column order for [`write_csv`].
pub const CSV_COLUMNS: &[&str] = &[
    "index",
    "id",
    "chip",
    "qubits",
    "mode",
    "theta",
    "max_shared_slots",
    "fdm_capacity",
    "readout_capacity",
    "one_to_eight",
    "chiplets",
    "link_topology",
    "seed",
    "status",
    "error",
    "xy_lines",
    "z_lines",
    "readout_feedlines",
    "coax_lines",
    "cost_kusd",
    "dedicated_coax",
    "dedicated_cost_kusd",
    "cost_reduction",
    "demux_deep",
    "demux_one_to_two",
    "demux_direct",
    "fidelity",
    "mean_gate_fidelity",
    "latency_ms",
];

fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

fn opt<T: ToString>(v: &Option<T>) -> String {
    v.as_ref().map(T::to_string).unwrap_or_default()
}

/// Writes the records as CSV (header + one row per record; `stages`
/// are omitted — they are hierarchical, use the JSONL stream).
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_csv<W: Write>(records: &[SweepRecord], out: &mut W) -> std::io::Result<()> {
    writeln!(out, "{}", CSV_COLUMNS.join(","))?;
    for r in records {
        let fields = [
            r.index.to_string(),
            csv_escape(&r.id),
            csv_escape(&r.chip),
            r.qubits.to_string(),
            r.mode.to_string(),
            r.theta.to_string(),
            r.max_shared_slots.to_string(),
            r.fdm_capacity.to_string(),
            r.readout_capacity.to_string(),
            r.one_to_eight.to_string(),
            r.chiplets.to_string(),
            csv_escape(&r.link_topology),
            r.seed.to_string(),
            format!("{:?}", r.status),
            csv_escape(r.error.as_deref().unwrap_or("")),
            opt(&r.xy_lines),
            opt(&r.z_lines),
            opt(&r.readout_feedlines),
            opt(&r.coax_lines),
            opt(&r.cost_kusd),
            opt(&r.dedicated_coax),
            opt(&r.dedicated_cost_kusd),
            opt(&r.cost_reduction),
            opt(&r.demux_deep),
            opt(&r.demux_one_to_two),
            opt(&r.demux_direct),
            opt(&r.fidelity),
            opt(&r.mean_gate_fidelity),
            opt(&r.latency_ms),
        ];
        writeln!(out, "{}", fields.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepMode;
    use youtiao_chip::multi::LinkTopology;

    fn sample_point() -> GridPoint {
        GridPoint {
            index: 3,
            chip_idx: 0,
            mode: SweepMode::Youtiao,
            theta: 4.0,
            max_shared_slots: 0,
            fdm_capacity: 5,
            readout_capacity: 8,
            one_to_eight: false,
            chiplets: 1,
            link_topology: LinkTopology::Grid,
            seed: 7,
        }
    }

    fn sample_result() -> PointResult {
        PointResult {
            qubits: 9,
            xy_lines: 2,
            z_lines: 7,
            readout_feedlines: 2,
            coax_lines: 11,
            cost_kusd: 79.0,
            dedicated_coax: 32,
            dedicated_cost_kusd: 216.2,
            demux_deep: 16,
            demux_one_to_two: 4,
            demux_direct: 1,
            fidelity: Some(0.97),
            mean_gate_fidelity: Some(0.999),
        }
    }

    #[test]
    fn record_roundtrips_through_json() {
        let record =
            SweepRecord::skeleton(&sample_point(), "square-3x3", 9).with_result(&sample_result());
        let json = serde_json::to_string(&record).unwrap();
        let back: SweepRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, record);
        assert!(json.contains("\"status\":\"Ok\""));

        let failed =
            SweepRecord::skeleton(&sample_point(), "square-3x3", 9).with_error("frequency crowded");
        let json = serde_json::to_string(&failed).unwrap();
        let back: SweepRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, failed);
        assert!(!back.is_ok());
    }

    #[test]
    fn multi_die_points_suffix_the_id() {
        let mut point = sample_point();
        point.chiplets = 4;
        point.link_topology = LinkTopology::Torus;
        let record = SweepRecord::skeleton(&point, "square-3x3", 36);
        assert!(record.id.ends_with("/x4-torus"), "{}", record.id);
        assert_eq!(record.chiplets, 4);
        assert_eq!(record.link_topology, "torus");
        // Monolithic ids keep the historical shape.
        let record = SweepRecord::skeleton(&sample_point(), "square-3x3", 9);
        assert!(record.id.ends_with("/seed7"), "{}", record.id);
    }

    #[test]
    fn cost_reduction_is_derived() {
        let record =
            SweepRecord::skeleton(&sample_point(), "square-3x3", 9).with_result(&sample_result());
        let expected = 216.2 / 79.0;
        assert!((record.cost_reduction.unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn csv_has_header_and_escapes() {
        let ok =
            SweepRecord::skeleton(&sample_point(), "square-3x3", 9).with_result(&sample_result());
        let failed = SweepRecord::skeleton(&sample_point(), "square-3x3", 9)
            .with_error("bad, \"quoted\" message");
        let mut out = Vec::new();
        write_csv(&[ok, failed], &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], CSV_COLUMNS.join(","));
        assert_eq!(lines[0].split(',').count(), CSV_COLUMNS.len());
        assert!(lines[2].contains("\"bad, \"\"quoted\"\" message\""));
    }

    #[test]
    fn stage_timings_roundtrip() {
        let mut record =
            SweepRecord::skeleton(&sample_point(), "square-3x3", 9).with_result(&sample_result());
        record.latency_ms = Some(12.5);
        record.stages = Some(vec![StageMs {
            name: "plan".into(),
            ms: 10.0,
        }]);
        let json = serde_json::to_string(&record).unwrap();
        let back: SweepRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.stages.as_ref().unwrap()[0].name, "plan");
    }
}
