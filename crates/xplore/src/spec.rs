//! Declarative sweep specifications.
//!
//! A [`SweepSpec`] is the JSON input of `youtiao sweep`: a set of axes
//! (chips, θ, `max_shared_slots`, FDM/readout capacity, DEMUX fan-out,
//! wiring mode, chiplet counts and link topologies, characterization
//! seeds) whose cartesian product is the
//! design-space grid the engine plans. Every axis except `chips` is
//! optional and defaults to a single paper-default value, so the grid
//! size is the product of only the axes a spec actually varies.

use youtiao_serve::ChipRequest;

/// Default grid-size guard: a spec whose cartesian product exceeds this
/// many points is rejected unless it raises [`SweepSpec::max_points`].
pub const DEFAULT_MAX_POINTS: usize = 4096;

/// Which wiring scheme a grid point evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SweepMode {
    /// The full YOUTIAO plan (FDM XY + TDM Z + multiplexed readout).
    Youtiao,
    /// The Google-style dedicated-wiring baseline (readout-only
    /// multiplexing); planning is skipped and the tally is the
    /// dedicated one, so cost/fidelity fronts can compare against it.
    Dedicated,
}

impl std::fmt::Display for SweepMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepMode::Youtiao => f.write_str("youtiao"),
            SweepMode::Dedicated => f.write_str("dedicated"),
        }
    }
}

/// A declarative design-space sweep: axes over chips and planner knobs.
///
/// # Example
///
/// ```
/// use youtiao_xplore::SweepSpec;
///
/// let json = r#"{
///   "chips": [{"topology": "square", "rows": 3, "cols": 3}],
///   "thetas": [2.0, 4.0, 8.0],
///   "use_model": false
/// }"#;
/// let spec: SweepSpec = serde_json::from_str(json).unwrap();
/// assert_eq!(spec.thetas.as_deref(), Some(&[2.0, 4.0, 8.0][..]));
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SweepSpec {
    /// Sweep name, echoed in summaries.
    pub name: Option<String>,
    /// Chip axis (required, non-empty).
    pub chips: Vec<ChipRequest>,
    /// Wiring-mode axis (default `[Youtiao]`).
    pub modes: Option<Vec<SweepMode>>,
    /// TDM threshold θ axis (default `[4.0]`).
    pub thetas: Option<Vec<f64>>,
    /// TDM `max_shared_slots` axis (default `[0]`).
    pub max_shared_slots: Option<Vec<u32>>,
    /// FDM XY-line capacity axis (default `[5]`).
    pub fdm_capacities: Option<Vec<usize>>,
    /// Readout feedline capacity axis (default `[8]`).
    pub readout_capacities: Option<Vec<usize>>,
    /// 1:8 cryo-DEMUX permission axis (default `[false]`).
    pub one_to_eight: Option<Vec<bool>>,
    /// Chiplet-count axis: tile each chip into a near-square array of
    /// this many dies (default `[1]` — monolithic). Values `> 1` plan
    /// the multi-die flow (per-die plans, link reconciliation) and
    /// report cryostat-level totals.
    pub chiplets: Option<Vec<usize>>,
    /// Inter-die link topology axis (`grid`, `torus` or `isolated`;
    /// default `[grid]`). Only meaningful at chiplet counts `> 1`.
    pub link_topologies: Option<Vec<String>>,
    /// Characterization seed axis (default `[0x594F_5554]`).
    pub seeds: Option<Vec<u64>>,
    /// Fit a crosstalk model per (chip, seed) and plan noise-aware
    /// (default true). `false` plans with balanced fallback weights and
    /// ignores the seed axis.
    pub use_model: Option<bool>,
    /// Evaluate all-qubit-driven XY fidelity per point (default false;
    /// requires `use_model`).
    pub fidelity: Option<bool>,
    /// Partition each chip toward regions of this size before grouping.
    pub partition_target: Option<usize>,
    /// Grid-size guard override (default [`DEFAULT_MAX_POINTS`]).
    pub max_points: Option<usize>,
}

impl SweepSpec {
    /// A single-axis sweep over `chips` with every knob at its default.
    pub fn new(chips: Vec<ChipRequest>) -> Self {
        SweepSpec {
            name: None,
            chips,
            modes: None,
            thetas: None,
            max_shared_slots: None,
            fdm_capacities: None,
            readout_capacities: None,
            one_to_eight: None,
            chiplets: None,
            link_topologies: None,
            seeds: None,
            use_model: None,
            fidelity: None,
            partition_target: None,
            max_points: None,
        }
    }

    /// Whether points are planned against a fitted crosstalk model.
    pub fn uses_model(&self) -> bool {
        self.use_model.unwrap_or(true)
    }

    /// Whether points evaluate XY fidelity.
    pub fn wants_fidelity(&self) -> bool {
        self.fidelity.unwrap_or(false)
    }
}

/// Errors validating a [`SweepSpec`] into a grid.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpecError {
    /// An axis was given explicitly empty (axis name attached).
    EmptyAxis(&'static str),
    /// An axis value does not parse or is out of range.
    BadAxisValue {
        /// The offending axis.
        axis: &'static str,
        /// What was wrong with the value.
        message: String,
    },
    /// The cartesian product exceeds the guard (or overflows `usize`).
    GridTooLarge {
        /// The requested number of grid points (`usize::MAX` on overflow).
        points: usize,
        /// The active guard value.
        limit: usize,
    },
    /// A chip axis value failed to build.
    Chip {
        /// Index into [`SweepSpec::chips`].
        index: usize,
        /// The underlying request error, rendered.
        message: String,
    },
    /// `fidelity` was requested without `use_model`.
    FidelityNeedsModel,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::EmptyAxis(axis) => write!(f, "sweep axis `{axis}` is empty"),
            SpecError::BadAxisValue { axis, message } => {
                write!(f, "sweep axis `{axis}`: {message}")
            }
            SpecError::GridTooLarge { points, limit } => write!(
                f,
                "sweep grid has {points} points, exceeding the limit of {limit} \
                 (raise `max_points` to allow it)"
            ),
            SpecError::Chip { index, message } => {
                write!(f, "chips[{index}] does not resolve: {message}")
            }
            SpecError::FidelityNeedsModel => {
                f.write_str("`fidelity` requires `use_model` (the evaluation needs a fitted model)")
            }
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrips_through_json() {
        let mut spec = SweepSpec::new(vec![
            ChipRequest::grid("square", 3, 3),
            ChipRequest::named("linear"),
        ]);
        spec.name = Some("roundtrip".into());
        spec.modes = Some(vec![SweepMode::Youtiao, SweepMode::Dedicated]);
        spec.thetas = Some(vec![2.0, 8.0]);
        spec.max_shared_slots = Some(vec![0, 2]);
        spec.seeds = Some(vec![1, 2]);
        spec.chiplets = Some(vec![1, 4]);
        spec.link_topologies = Some(vec!["grid".into(), "torus".into()]);
        spec.use_model = Some(false);
        spec.partition_target = Some(40);
        let json = serde_json::to_string(&spec).unwrap();
        let back: SweepSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn minimal_json_fills_defaults() {
        let json = r#"{"chips":[{"topology":"square"}]}"#;
        let spec: SweepSpec = serde_json::from_str(json).unwrap();
        assert_eq!(spec.chips.len(), 1);
        assert!(spec.thetas.is_none());
        assert!(spec.uses_model());
        assert!(!spec.wants_fidelity());
    }

    #[test]
    fn mode_display_is_lowercase() {
        assert_eq!(SweepMode::Youtiao.to_string(), "youtiao");
        assert_eq!(SweepMode::Dedicated.to_string(), "dedicated");
    }

    #[test]
    fn errors_render() {
        assert!(SpecError::EmptyAxis("thetas")
            .to_string()
            .contains("thetas"));
        let e = SpecError::GridTooLarge {
            points: 9000,
            limit: 4096,
        };
        assert!(e.to_string().contains("9000"));
        assert!(SpecError::FidelityNeedsModel
            .to_string()
            .contains("use_model"));
        let e = SpecError::BadAxisValue {
            axis: "link_topologies",
            message: "unknown link topology `ring`".into(),
        };
        assert!(e.to_string().contains("link_topologies"));
        assert!(e.to_string().contains("ring"));
    }
}
