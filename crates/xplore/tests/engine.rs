//! End-to-end engine tests: determinism across thread counts, the
//! shared-context build probe, error-record flow, objective
//! validation, and plan-cache reuse.

use youtiao_core::PlanContext;
use youtiao_xplore::{
    parse_objectives, run_sweep, run_sweep_with_cache, ChipRequest, PlanCache, SweepError,
    SweepMode, SweepOptions, SweepSpec,
};

fn no_model_spec() -> SweepSpec {
    let mut spec = SweepSpec::new(vec![
        ChipRequest::grid("square", 3, 3),
        ChipRequest::named("linear"),
    ]);
    spec.name = Some("engine-test".into());
    spec.modes = Some(vec![SweepMode::Youtiao, SweepMode::Dedicated]);
    spec.thetas = Some(vec![2.0, 4.0, 8.0]);
    spec.use_model = Some(false);
    spec
}

fn sweep_jsonl(
    spec: &SweepSpec,
    options: &SweepOptions,
) -> (Vec<u8>, youtiao_xplore::SweepOutcome) {
    let mut out = Vec::new();
    let outcome = run_sweep(spec, options, &mut out).expect("sweep runs");
    (out, outcome)
}

#[test]
fn jsonl_is_byte_identical_across_thread_counts() {
    let spec = no_model_spec();
    let mut options = SweepOptions {
        objectives: parse_objectives("cost").unwrap(),
        ..SweepOptions::default()
    };

    options.threads = 1;
    let (serial, outcome_serial) = sweep_jsonl(&spec, &options);
    options.threads = 8;
    let (parallel, outcome_parallel) = sweep_jsonl(&spec, &options);

    assert_eq!(serial, parallel, "JSONL must not depend on thread count");
    assert_eq!(outcome_serial.records, outcome_parallel.records);
    assert_eq!(outcome_serial.summary.threads, 1);
    // threads clamp to the grid size (12 points here).
    assert_eq!(outcome_parallel.summary.threads, 8);

    // Records arrive in dense grid order.
    let indices: Vec<usize> = outcome_serial.records.iter().map(|r| r.index).collect();
    assert_eq!(indices, (0..12).collect::<Vec<_>>());
    assert!(outcome_serial.records.iter().all(|r| r.is_ok()));
    assert!(!outcome_serial.summary.pareto.is_empty());
}

#[test]
fn contexts_are_built_once_per_chip_axis_value() {
    // Without a model: one context per chip, regardless of how many
    // grid points (2 chips × 2 modes × 3 thetas = 12 points) hit it.
    let spec = no_model_spec();
    let before = PlanContext::build_count();
    let (_, outcome) = sweep_jsonl(&spec, &SweepOptions::default());
    let built = PlanContext::build_count() - before;
    assert_eq!(outcome.summary.contexts_built, 2);
    assert_eq!(
        built, 2,
        "matrices must be built once per chip, not per point"
    );

    // With a model: one context per chip × characterization seed.
    let mut spec = SweepSpec::new(vec![ChipRequest::grid("square", 3, 3)]);
    spec.thetas = Some(vec![2.0, 8.0]);
    spec.seeds = Some(vec![1, 2]);
    let before = PlanContext::build_count();
    let (_, outcome) = sweep_jsonl(&spec, &SweepOptions::default());
    let built = PlanContext::build_count() - before;
    assert_eq!(outcome.summary.contexts_built, 2);
    assert_eq!(built, 2);
    assert_eq!(outcome.records.len(), 4);
    assert!(outcome.records.iter().all(|r| r.is_ok()));
}

#[test]
fn failed_points_become_error_records_not_failures() {
    let mut spec = no_model_spec();
    spec.modes = Some(vec![SweepMode::Youtiao]);
    spec.thetas = None;
    spec.fdm_capacities = Some(vec![0, 5]); // 0 is rejected by the planner
    let (out, outcome) = sweep_jsonl(&spec, &SweepOptions::default());

    assert_eq!(outcome.records.len(), 4);
    assert_eq!(outcome.summary.errors, 2);
    assert_eq!(outcome.summary.ok, 2);
    for record in &outcome.records {
        if record.fdm_capacity == 0 {
            assert!(!record.is_ok());
            let msg = record.error.as_deref().unwrap();
            assert!(msg.contains("fdm capacity"), "{msg}");
            assert!(record.cost_kusd.is_none());
        } else {
            assert!(record.is_ok());
        }
    }
    // Every point still produced a JSONL line.
    let text = String::from_utf8(out).unwrap();
    assert_eq!(text.lines().count(), 4);
    // The front only contains successful points.
    assert!(outcome
        .summary
        .pareto
        .iter()
        .all(|e| outcome.records[e.index].is_ok()));
}

#[test]
fn latency_objective_requires_timings() {
    let spec = no_model_spec();
    let mut options = SweepOptions {
        objectives: parse_objectives("cost,latency").unwrap(),
        ..SweepOptions::default()
    };
    let err = run_sweep(&spec, &options, &mut Vec::new()).unwrap_err();
    assert!(matches!(err, SweepError::Objective(_)), "{err}");

    options.timings = true;
    let mut out = Vec::new();
    let outcome = run_sweep(&spec, &options, &mut out).expect("timings unlock latency");
    assert!(outcome.records.iter().all(|r| r.latency_ms.is_some()));
    assert!(outcome.records[0].stages.is_some());
}

#[test]
fn shared_cache_answers_repeat_sweeps() {
    let spec = no_model_spec();
    let options = SweepOptions::default();
    let cache = PlanCache::new(64);

    let mut first = Vec::new();
    let outcome1 = run_sweep_with_cache(&spec, &options, &cache, &mut first).unwrap();
    assert_eq!(outcome1.summary.cache_hits, 0);
    assert_eq!(outcome1.summary.cache_misses, 12);

    let mut second = Vec::new();
    let outcome2 = run_sweep_with_cache(&spec, &options, &cache, &mut second).unwrap();
    assert_eq!(outcome2.summary.cache_hits, 12);
    assert_eq!(outcome2.summary.cache_misses, 0);

    // Cache hits change nothing about the byte stream.
    assert_eq!(first, second);
}

#[test]
fn chiplet_axis_scales_monolithic_points() {
    let mut spec = SweepSpec::new(vec![ChipRequest::grid("square", 3, 3)]);
    spec.use_model = Some(false);
    spec.chiplets = Some(vec![1, 4]);
    let (_, outcome) = sweep_jsonl(&spec, &SweepOptions::default());
    assert_eq!(outcome.records.len(), 2);
    let mono = &outcome.records[0];
    let multi = &outcome.records[1];
    assert!(mono.is_ok() && multi.is_ok(), "{:?}", multi.error);
    assert_eq!((mono.chiplets, multi.chiplets), (1, 4));
    assert_eq!(multi.qubits, 4 * mono.qubits);
    // Identical dies and additive cryostat resources: the array's
    // totals are the monolithic tallies times the die count (link
    // reconciliation only swaps frequencies, never lines).
    assert_eq!(multi.coax_lines, mono.coax_lines.map(|c| 4 * c));
    assert_eq!(multi.dedicated_coax, mono.dedicated_coax.map(|c| 4 * c));
    assert_eq!(multi.z_lines, mono.z_lines.map(|z| 4 * z));
    // Multi-die points are visibly labeled; monolithic ids are stable.
    assert!(multi.id.ends_with("/x4-grid"), "{}", multi.id);
    assert!(
        mono.id.ends_with(&format!("/seed{}", mono.seed)),
        "{}",
        mono.id
    );
    assert!(outcome
        .summary
        .marginals
        .iter()
        .any(|m| m.axis == "chiplets"));
}

#[test]
fn chiplet_sweeps_are_deterministic_across_threads() {
    let mut spec = SweepSpec::new(vec![ChipRequest::grid("square", 3, 3)]);
    spec.chiplets = Some(vec![2]);
    spec.link_topologies = Some(vec!["torus".into()]);
    let mut options = SweepOptions {
        threads: 1,
        plan_threads: 1,
        ..SweepOptions::default()
    };
    let (serial, outcome) = sweep_jsonl(&spec, &options);
    assert!(outcome.records.iter().all(|r| r.is_ok()));
    assert_eq!(outcome.records[0].link_topology, "torus");
    options.threads = 4;
    options.plan_threads = 4;
    let (parallel, _) = sweep_jsonl(&spec, &options);
    assert_eq!(
        serial, parallel,
        "multi-die sweep JSONL must not depend on thread counts"
    );
}

#[test]
fn per_chip_chiplet_knobs_are_rejected() {
    let mut chip = ChipRequest::grid("square", 3, 3);
    chip.chiplets = Some(4);
    let spec = SweepSpec::new(vec![chip]);
    let err = run_sweep(&spec, &SweepOptions::default(), &mut Vec::new()).unwrap_err();
    assert!(matches!(err, SweepError::Spec(_)), "{err}");
    assert!(err.to_string().contains("chiplets"), "{err}");
}

#[test]
fn grid_points_match_single_planner_runs() {
    use youtiao_core::{PlannerConfig, TdmConfig, YoutiaoPlanner};
    use youtiao_cost::WiringTally;

    // The sweep's record at θ=8 equals a hand-rolled planner run.
    let mut spec = SweepSpec::new(vec![ChipRequest::grid("square", 3, 3)]);
    spec.thetas = Some(vec![8.0]);
    spec.use_model = Some(false);
    let (_, outcome) = sweep_jsonl(&spec, &SweepOptions::default());
    let record = &outcome.records[0];

    let chip = youtiao_chip::topology::square_grid(3, 3);
    let config = PlannerConfig {
        tdm: TdmConfig {
            theta: 8.0,
            ..Default::default()
        },
        ..Default::default()
    };
    let plan = YoutiaoPlanner::new(&chip)
        .with_config(config)
        .plan()
        .unwrap();
    let tally = WiringTally::youtiao(&plan);
    assert_eq!(record.coax_lines, Some(tally.coax_lines()));
    assert_eq!(record.cost_kusd, Some(tally.cost_kusd()));
    assert_eq!(
        record.dedicated_coax,
        Some(WiringTally::google(&chip).coax_lines())
    );
}
