//! Run a quantum algorithm through the whole stack — generate,
//! transpile onto a chip, schedule under a YOUTIAO wiring plan, and
//! verify the answer by exact state-vector simulation.
//!
//! ```sh
//! cargo run --release --example algorithm_check
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use youtiao::chip::topology;
use youtiao::circuit::benchmarks;
use youtiao::circuit::schedule::schedule_with_tdm;
use youtiao::circuit::transpile::transpile_snake;
use youtiao::core::YoutiaoPlanner;
use youtiao::sim::state::StateVector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chip = topology::square_grid(3, 3);
    let plan = YoutiaoPlanner::new(&chip).plan()?;

    // Deutsch-Jozsa with a balanced oracle on 6 logical qubits.
    let logical = benchmarks::dj(6);
    let transpiled = transpile_snake(&logical, &chip)?;
    let schedule = schedule_with_tdm(&transpiled.circuit, &chip, &plan)?;
    println!(
        "DJ(6) on {}: {} ops, {} layers, {:.0} ns under the YOUTIAO plan",
        chip,
        schedule.op_count(),
        schedule.depth(),
        schedule.makespan_ns()
    );

    // Simulate the physical circuit exactly and sample 1000 shots.
    let state = StateVector::run(&transpiled.circuit)?;
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let counts = state.sample_counts(1000, &mut rng);

    // DJ verdict: the oracle is constant iff the logical inputs all read 0.
    let inputs: Vec<usize> = (0..5).map(|l| transpiled.final_layout[l].index()).collect();
    let all_zero_shots: usize = counts
        .iter()
        .filter(|(basis, _)| inputs.iter().all(|&q| *basis & (1 << q) == 0))
        .map(|(_, c)| c)
        .sum();
    println!(
        "shots with all-zero inputs: {all_zero_shots}/1000 -> oracle is {}",
        if all_zero_shots > 500 {
            "CONSTANT"
        } else {
            "BALANCED"
        }
    );
    assert_eq!(all_zero_shots, 0, "the parity oracle is balanced");

    // Bonus: verify the QKNN swap test estimates state overlap.
    let qknn = benchmarks::qknn(5);
    let s = StateVector::run(&qknn)?;
    println!(
        "QKNN swap test: ancilla P(0) = {:.4} (encodes feature-vector similarity)",
        1.0 - s.probability_of_one(0)
    );
    Ok(())
}
