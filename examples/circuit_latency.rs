//! Compare benchmark-circuit latency and fidelity across wiring schemes:
//! dedicated lines (Google-style), YOUTIAO's hybrid multiplexing, and a
//! locally-clustered TDM baseline (Acharya-style).
//!
//! ```sh
//! cargo run --release --example circuit_latency
//! ```

use youtiao::chip::topology;
use youtiao::circuit::benchmarks::Benchmark;
use youtiao::circuit::schedule::{schedule_asap, schedule_with_tdm, DedicatedLines};
use youtiao::circuit::transpile::transpile_snake;
use youtiao::circuit::FidelityEstimator;
use youtiao::core::{AcharyaTdm, YoutiaoPlanner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chip = topology::square_grid(5, 5);
    let plan = YoutiaoPlanner::new(&chip).plan()?;
    let acharya = AcharyaTdm::for_chip(&chip);
    let estimator = FidelityEstimator::paper();
    let _ = DedicatedLines; // dedicated scheduling goes through schedule_asap

    println!(
        "{:>6}  {:>22}  {:>22}  {:>22}",
        "bench", "dedicated", "YOUTIAO", "local-cluster TDM"
    );
    for b in Benchmark::ALL {
        let logical = b.generate(chip.num_qubits());
        let physical = transpile_snake(&logical, &chip)?.circuit;

        let mut cells = Vec::new();
        let dedicated = schedule_asap(&physical, &chip)?;
        for schedule in [
            dedicated.clone(),
            schedule_with_tdm(&physical, &chip, &plan)?,
            schedule_with_tdm(&physical, &chip, &acharya)?,
        ] {
            let f = estimator.estimate(&schedule, &chip).total();
            cells.push(format!(
                "{:>5} CZ-layers {:>5.1}%",
                schedule.two_qubit_depth(),
                f * 100.0
            ));
        }
        println!("{:>6}  {}  {}  {}", b.name(), cells[0], cells[1], cells[2]);
    }
    println!("\n(depth in CZ layers; fidelity from calibrated gate errors + T1 decoherence)");
    Ok(())
}
