//! Design the wiring of a fault-tolerant (surface-code) chip with
//! YOUTIAO, the paper's §5.2 case study: FDM on the parity-check XY
//! lines, activity-aware TDM on the data/coupler Z lines, and a check
//! that the error-correction cycle still schedules efficiently.
//!
//! ```sh
//! cargo run --release --example fault_tolerant_design
//! ```

use youtiao::chip::surface::SurfaceCode;
use youtiao::circuit::schedule::{schedule_asap, schedule_with_tdm_strict};
use youtiao::circuit::surface_cycle::{cycle_activity, cycles_circuit};
use youtiao::core::YoutiaoPlanner;
use youtiao::cost::WiringTally;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let distance = 5;
    let code = SurfaceCode::rotated(distance);
    let chip = code.chip();
    println!(
        "surface code d={distance}: {} qubits ({} data, {} checks), {} couplers",
        chip.num_qubits(),
        code.data_qubits().len(),
        code.stabilizers().len(),
        chip.num_couplers()
    );

    // The QEC cycle's 4-step CZ schedule is the workload's natural
    // non-parallelism; hand it to the TDM grouper.
    let activity = cycle_activity(&code);
    let plan = YoutiaoPlanner::new(chip).with_activity(&activity).plan()?;

    let google = WiringTally::google(chip);
    let youtiao = WiringTally::youtiao(&plan);
    println!("\nwiring (Google -> YOUTIAO):");
    println!("  XY lines: {} -> {}", google.xy_lines, youtiao.xy_lines);
    println!("  Z lines:  {} -> {}", google.z_lines, youtiao.z_lines);
    println!(
        "  cost:     ${:.0}K -> ${:.0}K ({:.2}x)",
        google.cost_kusd(),
        youtiao.cost_kusd(),
        google.cost_kusd() / youtiao.cost_kusd()
    );

    // Verify the error-correction cycle still runs with low overhead
    // under the conservative pulse model (all devices pulsed).
    let cycles = 25;
    let circuit = cycles_circuit(&code, cycles)?;
    let dedicated = schedule_asap(&circuit, chip)?;
    let shared = schedule_with_tdm_strict(&circuit, chip, &plan)?;
    println!("\n{cycles} QEC cycles, two-qubit depth:");
    println!("  dedicated wiring: {}", dedicated.two_qubit_depth());
    println!(
        "  YOUTIAO wiring:   {} ({:+} layers per cycle)",
        shared.two_qubit_depth(),
        (shared.two_qubit_depth() as i64 - dedicated.two_qubit_depth() as i64) / cycles as i64
    );
    Ok(())
}
