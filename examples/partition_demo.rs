//! Visualize the generative chip partition (the paper's §4.4) and the
//! dynamic qubit grouping it produces on a large chip.
//!
//! ```sh
//! cargo run --release --example partition_demo
//! ```

use youtiao::chip::topology;
use youtiao::core::partition::PartitionConfig;
use youtiao::core::viz::{render_fdm, render_partition, render_tdm};
use youtiao::core::{PlannerConfig, YoutiaoPlanner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chip = topology::square_grid(10, 10);
    let config = PlannerConfig {
        partition: Some(PartitionConfig::for_target_size(&chip, 25)),
        ..Default::default()
    };
    let plan = YoutiaoPlanner::new(&chip).with_config(config).plan()?;

    let partition = plan.partition().expect("partition was requested");
    println!(
        "{chip}: {} regions (sizes {:?}), converged after {} border-swap sweeps\n",
        partition.len(),
        partition.regions().iter().map(Vec::len).collect::<Vec<_>>(),
        partition.sweeps_used()
    );

    println!("generative partition (stage 1-2: seeded growth + border swaps):");
    print!("{}", render_partition(&chip, &plan));

    println!("\nFDM lines within the regions (stage 3: route while expanding):");
    print!("{}", render_fdm(&chip, &plan));

    println!("\nTDM groups (each letter = one shared Z line / cryo-DEMUX):");
    print!("{}", render_tdm(&chip, &plan));

    println!(
        "\nresult: {} XY lines + {} Z lines + {} readout feedlines for 100 qubits",
        plan.num_xy_lines(),
        plan.num_z_lines(),
        plan.num_readout_lines()
    );
    Ok(())
}
