//! Quickstart: plan YOUTIAO wiring for a 36-qubit chip and inspect the
//! savings.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use youtiao::chip::topology;
use youtiao::core::YoutiaoPlanner;
use youtiao::cost::WiringTally;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the hardware: a 6x6 Xmon grid like the paper's target
    //    device.
    let chip = topology::square_grid(6, 6);
    println!("chip: {chip}");

    // 2. Fit a crosstalk model from (synthetic) measurement data.
    let samples = youtiao::noise::data::synthesize(
        &chip,
        youtiao::noise::data::CrosstalkKind::Xy,
        &youtiao::noise::data::SynthConfig::xy(),
        42,
    );
    let model = youtiao::noise::fit::fit_crosstalk_model(
        &samples,
        &youtiao::noise::fit::FitConfig::paper(),
    )?;
    println!(
        "crosstalk model: w_phy={:.2}, w_top={:.2}, cv mse={:.2e}",
        model.weights().w_phy(),
        model.weights().w_top(),
        model.cv_mse()
    );

    // 3. Run the full planning pipeline: FDM grouping, two-level
    //    frequency allocation, TDM grouping with DEMUX selection.
    let plan = YoutiaoPlanner::new(&chip)
        .with_crosstalk_model(&model)
        .plan()?;

    println!("\nYOUTIAO wiring plan:");
    println!("  FDM XY lines:      {}", plan.num_xy_lines());
    println!("  TDM Z lines:       {}", plan.num_z_lines());
    println!("  DEMUX select:      {}", plan.demux_select_lines());
    println!("  readout feedlines: {}", plan.num_readout_lines());
    for (i, line) in plan.fdm_lines().iter().enumerate().take(3) {
        let freqs: Vec<String> = line
            .qubits()
            .iter()
            .map(|&q| format!("{q}@{:.2}GHz", plan.frequency_plan().frequency_ghz(q)))
            .collect();
        println!("  xy line {i}: {}", freqs.join(", "));
    }

    // 4. Compare wiring cost against dedicated (Google-style) wiring.
    let google = WiringTally::google(&chip);
    let youtiao = WiringTally::youtiao(&plan);
    println!("\ncost comparison (cryostat level):");
    println!(
        "  Google : {} coax, {} DAC channels, ${:.0}K",
        google.coax_lines(),
        google.dac_channels(),
        google.cost_kusd()
    );
    println!(
        "  YOUTIAO: {} coax, {} DAC channels, ${:.0}K  ({:.1}x cheaper)",
        youtiao.coax_lines(),
        youtiao.dac_channels(),
        youtiao.cost_kusd(),
        google.cost_kusd() / youtiao.cost_kusd()
    );
    Ok(())
}
