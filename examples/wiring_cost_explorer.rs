//! Explore how YOUTIAO's wiring savings scale with system size, and
//! where the KIDE cryostat's 4,000-coax ceiling lands for each scheme.
//!
//! ```sh
//! cargo run --release --example wiring_cost_explorer
//! ```

use youtiao::cost::scale::ScalingModel;
use youtiao::cost::KIDE_MAX_COAX;

fn main() {
    let model = ScalingModel::calibrate(&[6, 8, 10]);
    println!(
        "calibrated occupancies: {:.2} devices per Z line, {:.2} select lines per DEMUX\n",
        model.z_devices_per_line, model.select_per_line
    );

    println!(
        "{:>9}  {:>12}  {:>13}  {:>9}",
        "#qubits", "Google coax", "YOUTIAO coax", "saving"
    );
    let mut google_ceiling = None;
    let mut youtiao_ceiling = None;
    for exp in 3..=14 {
        let n = (10f64.powf(exp as f64 / 2.0)) as usize;
        let g = model.google_tally(n).coax_lines();
        let y = model.youtiao_tally(n).coax_lines();
        println!("{n:>9}  {g:>12}  {y:>13}  {:>8.1}x", g as f64 / y as f64);
        if g > KIDE_MAX_COAX && google_ceiling.is_none() {
            google_ceiling = Some(n);
        }
        if y > KIDE_MAX_COAX && youtiao_ceiling.is_none() {
            youtiao_ceiling = Some(n);
        }
    }

    println!(
        "\na Bluefors KIDE cryostat tops out at {KIDE_MAX_COAX} coax lines:\n\
         dedicated wiring exhausts it near {} qubits; YOUTIAO stretches it to ~{} qubits.",
        google_ceiling.map_or("???".into(), |n| n.to_string()),
        youtiao_ceiling.map_or("beyond the sweep".into(), |n| n.to_string()),
    );
}
