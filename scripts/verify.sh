#!/usr/bin/env bash
# Repo verification: tier-1 build + tests, then style gates.
#
# Usage: scripts/verify.sh [--tier1-only]
#
# Everything runs offline (all dependencies are vendored in vendor/).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier 1: cargo build --release"
cargo build --release --offline

echo "==> tier 1: cargo test -q"
cargo test -q --offline

if [[ "${1:-}" == "--tier1-only" ]]; then
  echo "verify: tier-1 OK"
  exit 0
fi

echo "==> style: cargo fmt --check"
if cargo fmt --version >/dev/null 2>&1; then
  cargo fmt --all -- --check
else
  echo "  (rustfmt not installed; skipped)"
fi

echo "==> style: cargo clippy -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
  cargo clippy --workspace --all-targets --offline -- -D warnings
else
  echo "  (clippy not installed; skipped)"
fi

echo "verify: OK"
