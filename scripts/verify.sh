#!/usr/bin/env bash
# Repo verification: tier-1 build + tests, a batch smoke run with plan
# validation + stage tracing plus a byte-identity cmp across
# --plan-threads, a sweep smoke run (JSONL schema, Pareto
# front, thread-count determinism), repair smoke runs (pinned drift
# change set -> pinned repaired-plan hash, structural fallback pin,
# bench-repair schema), a chaos smoke run (seeded fault injection,
# record-count and determinism checks), a daemon smoke (stdin + socket
# round trips, byte-identical canonical transcripts across shard and
# worker counts, torn-shard salvage), then figure ports and style
# gates.
#
# Usage: scripts/verify.sh [--tier1-only|--smoke-only]
#
# Everything runs offline (all dependencies are vendored in vendor/).
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" != "--smoke-only" ]]; then
  echo "==> tier 1: cargo build --release"
  cargo build --release --offline

  echo "==> tier 1: cargo test -q"
  cargo test -q --offline

  if [[ "${1:-}" == "--tier1-only" ]]; then
    echo "verify: tier-1 OK"
    exit 0
  fi
fi

echo "==> smoke: youtiao batch --validate --trace-json"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release --offline --bin youtiao -- batch \
  --in examples/batch_jobs.jsonl --out "$smoke_dir/results.jsonl" \
  --validate --trace-json "$smoke_dir/traces.json" --metrics-json \
  2> "$smoke_dir/metrics.json"
if grep -q '"status":"Error"' "$smoke_dir/results.jsonl"; then
  echo "verify: FAILED — batch smoke produced error records:" >&2
  grep '"status":"Error"' "$smoke_dir/results.jsonl" >&2
  exit 1
fi
jobs_in=$(grep -cv '^\s*\(#\|$\)' examples/batch_jobs.jsonl)
jobs_out=$(wc -l < "$smoke_dir/results.jsonl")
if [[ "$jobs_out" -ne "$jobs_in" ]]; then
  echo "verify: FAILED — expected $jobs_in result records, got $jobs_out" >&2
  exit 1
fi
python3 - "$smoke_dir/traces.json" "$jobs_in" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    traces = json.load(f)
jobs = traces["jobs"]
assert len(jobs) == int(sys.argv[2]), f"expected {sys.argv[2]} traces, got {len(jobs)}"
for trace in jobs:
    stages = [child["name"] for span in trace["spans"] for child in span["spans"]]
    for stage in ("characterize", "plan", "cost", "validate"):
        assert stage in stages, f"job {trace['job']}: missing `{stage}` span ({stages})"
print(f"  trace file OK: {len(jobs)} jobs, all stage spans present")
PY

echo "==> smoke: youtiao batch (byte-identical results across --plan-threads)"
# Intra-plan parallelism must be invisible in the output: same jobs,
# same bytes, whatever the planner's thread count (serve policy doc:
# explicit values win, auto stays serial while the pool fans out).
# --canonical zeroes wall-clock latency so the cmp sees only plan bytes.
for pt in 1 2 8; do
  cargo run -q --release --offline --bin youtiao -- batch \
    --in examples/batch_jobs.jsonl --out "$smoke_dir/results_pt$pt.jsonl" \
    --jobs 1 --plan-threads "$pt" --canonical 2> /dev/null
done
for pt in 2 8; do
  if ! cmp -s "$smoke_dir/results_pt1.jsonl" "$smoke_dir/results_pt$pt.jsonl"; then
    echo "verify: FAILED — batch output differs between --plan-threads 1 and $pt" >&2
    diff "$smoke_dir/results_pt1.jsonl" "$smoke_dir/results_pt$pt.jsonl" >&2 || true
    exit 1
  fi
done
echo "  batch plan-threads OK: byte-identical results at 1/2/8 threads"

echo "==> smoke: youtiao sweep (2x2 grid, determinism across threads)"
# -q keeps cargo's own stderr chatter out of the captured summary JSON
cargo run -q --release --offline --bin youtiao -- sweep \
  --spec examples/sweeps/smoke.json --out "$smoke_dir/sweep1.jsonl" \
  --threads 1 --pareto cost,fidelity --summary-json \
  2> "$smoke_dir/sweep_summary.json"
cargo run -q --release --offline --bin youtiao -- sweep \
  --spec examples/sweeps/smoke.json --out "$smoke_dir/sweep4.jsonl" \
  --threads 4 --pareto cost,fidelity 2> /dev/null
if ! cmp -s "$smoke_dir/sweep1.jsonl" "$smoke_dir/sweep4.jsonl"; then
  echo "verify: FAILED — sweep JSONL differs between --threads 1 and --threads 4" >&2
  diff "$smoke_dir/sweep1.jsonl" "$smoke_dir/sweep4.jsonl" >&2 || true
  exit 1
fi
python3 - "$smoke_dir/sweep1.jsonl" "$smoke_dir/sweep_summary.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    records = [json.loads(line) for line in f if line.strip()]
assert records, "sweep produced no records"
required = {"index", "id", "chip", "mode", "theta", "seed", "status",
            "coax_lines", "cost_kusd", "fidelity"}
for i, record in enumerate(records):
    missing = required - record.keys()
    assert not missing, f"record {i} missing keys: {missing}"
    assert record["index"] == i, f"records out of grid order at line {i}"
    assert record["status"] == "Ok", f"record {i} errored: {record['error']}"
with open(sys.argv[2]) as f:
    summary = json.load(f)
assert summary["points"] == len(records)
assert summary["errors"] == 0
assert summary["pareto"], "Pareto front is empty"
assert summary["contexts_built"] == 2, summary["contexts_built"]
# One PairKernels build per shared PlanContext: the sweep engine must
# reuse kernels across grid points, never rebuild them per plan.
assert summary["kernels_built"] == 2, summary["kernels_built"]
print(f"  sweep smoke OK: {len(records)} records, "
      f"{len(summary['pareto'])} Pareto points, deterministic across threads")
PY

echo "==> smoke: youtiao plan --chiplets (2x2 heavy-hex array, --validate, plan-threads cmp)"
# A 2x2 chiplet array must plan end-to-end under full per-die +
# cross-die validation, and the combined summary must be byte-identical
# at any --plan-threads (per-die planning reuses the deterministic
# ParallelExec fan-out).
for pt in 1 4; do
  cargo run -q --release --offline --bin youtiao -- plan \
    --topology heavy-hexagon --rows 1 --cols 2 --chiplets 4 --validate \
    --plan-threads "$pt" --json > "$smoke_dir/multi_pt$pt.json" 2> /dev/null
done
if ! cmp -s "$smoke_dir/multi_pt1.json" "$smoke_dir/multi_pt4.json"; then
  echo "verify: FAILED — multi-die plan differs between --plan-threads 1 and 4" >&2
  diff "$smoke_dir/multi_pt1.json" "$smoke_dir/multi_pt4.json" >&2 || true
  exit 1
fi
python3 - "$smoke_dir/multi_pt1.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    summary = json.load(f)
plan = summary["plan"]
assert plan["total_qubits"] == 84, plan["total_qubits"]
qubits = sorted(q for line in plan["xy_lines"] for q in line["qubits"])
assert qubits == list(range(84)), "XY lines must cover the cryostat-global id space"
assert summary["coax_reduction"] > 2.0, summary["coax_reduction"]
print(f"  multi-die plan OK: 2x2 heavy-hex array validated, "
      f"{summary['coax_reduction']:.2f}x coax reduction, deterministic across plan threads")
PY

echo "==> smoke: youtiao sweep (chiplets + link_topologies axes)"
cargo run -q --release --offline --bin youtiao -- sweep \
  --spec examples/sweeps/chiplets.json --out "$smoke_dir/chiplets1.jsonl" \
  --threads 1 --plan-threads 1 2> /dev/null
cargo run -q --release --offline --bin youtiao -- sweep \
  --spec examples/sweeps/chiplets.json --out "$smoke_dir/chiplets4.jsonl" \
  --threads 4 --plan-threads 4 2> /dev/null
if ! cmp -s "$smoke_dir/chiplets1.jsonl" "$smoke_dir/chiplets4.jsonl"; then
  echo "verify: FAILED — chiplet sweep differs across thread counts" >&2
  diff "$smoke_dir/chiplets1.jsonl" "$smoke_dir/chiplets4.jsonl" >&2 || true
  exit 1
fi
python3 - "$smoke_dir/chiplets1.jsonl" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    records = [json.loads(line) for line in f if line.strip()]
assert len(records) == 4, len(records)
assert all(r["status"] == "Ok" for r in records), records
by = {(r["chiplets"], r["link_topology"]): r for r in records}
assert set(by) == {(1, "grid"), (1, "torus"), (4, "grid"), (4, "torus")}, set(by)
mono = by[(1, "grid")]
for topo in ("grid", "torus"):
    multi = by[(4, topo)]
    # Identical dies, additive cryostat resources: array totals are the
    # monolithic tallies times the die count.
    assert multi["qubits"] == 4 * mono["qubits"], multi["qubits"]
    assert multi["coax_lines"] == 4 * mono["coax_lines"], multi["coax_lines"]
    assert multi["id"].endswith(f"/x4-{topo}"), multi["id"]
print("  chiplet sweep OK: 4 points, multi-die totals scale the monolithic plan, "
      "deterministic across threads")
PY

echo "==> smoke: youtiao bench-plan (v3 schema, kernels-built-once, freq speedup floor)"
cargo run -q --release --offline --bin youtiao -- bench-plan \
  --sizes 4,12 --iters 2 --plan-threads 2 --out "$smoke_dir/bench.json" 2> /dev/null
python3 - "$smoke_dir/bench.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["schema"] == "youtiao-bench-plan/v3", report["schema"]
assert report["sizes"], "bench report has no sizes"
assert report["kernels_built"] > 0
for size in report["sizes"]:
    for key in ("label", "qubits", "devices", "iterations", "stages",
                "kernel_builds_during_plans", "freq_kernel_builds_during_plans",
                "scratch_fresh", "scratch_reused", "threads", "speedup_parallel",
                "speedup_grouping", "speedup_refine", "speedup_grouping_refine",
                "speedup_freq", "speedup_readout"):
        assert key in size, f"{size.get('label')}: missing `{key}`"
    # Context-backed plans must hit the prebuilt kernels, not rebuild.
    assert size["kernel_builds_during_plans"] == 0, size["label"]
    assert size["freq_kernel_builds_during_plans"] == 0, size["label"]
    # ... and the warmed plan loop must run allocation-free out of the
    # context's scratch arenas (the fresh probe pins it, the reuse
    # probe proves the arenas are actually in the loop).
    assert size["scratch_fresh"] == 0, (size["label"], size["scratch_fresh"])
    assert size["scratch_reused"] > 0, size["label"]
    assert size["threads"] == 2, size["threads"]
    for stage in ("plan_total", "plan.total",
                  "plan_partitioned_serial", "plan_partitioned_parallel"):
        assert stage in size["stages"], f"{size['label']}: missing `{stage}`"
    for stage, stats in size["stages"].items():
        for q in ("median_us", "p10_us", "p90_us"):
            assert stats[q] >= 0, f"{size['label']}/{stage}: bad {q}"
        assert stats["p10_us"] <= stats["p90_us"], f"{size['label']}/{stage}"
# The kernelized freq_alloc + readout must clear the acceptance floor
# at 12x12 (the harness also asserts this internally).
at12 = next(s for s in report["sizes"] if s["label"] == "12x12")
assert at12["speedup_freq"] >= 5.0, at12["speedup_freq"]
assert at12["speedup_readout"] >= 5.0, at12["speedup_readout"]
labels = [s["label"] for s in report["sizes"]]
print(f"  bench smoke OK: {labels}, kernels built once per context, "
      f"freq {at12['speedup_freq']:.1f}x / readout {at12['speedup_readout']:.1f}x at 12x12")
PY

# The ≥3x parallel-planning floor needs 8 real cores to be measurable;
# the harness itself applies the same gate, so on smaller hosts we only
# exercise the parallel path (byte-identity is asserted unconditionally
# inside the harness) and skip the floor run.
cores=$(nproc 2>/dev/null || echo 1)
if [[ "$cores" -ge 8 ]]; then
  echo "==> smoke: youtiao bench-plan parallel floor (16x16, 8 threads, >=3x)"
  cargo run -q --release --offline --bin youtiao -- bench-plan \
    --sizes 16 --iters 5 --plan-threads 8 --out "$smoke_dir/bench16.json" 2> /dev/null
  python3 - "$smoke_dir/bench16.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
at16 = next(s for s in report["sizes"] if s["label"] == "16x16")
assert at16["threads"] == 8, at16["threads"]
assert at16["speedup_parallel"] >= 3.0, at16["speedup_parallel"]
print(f"  parallel floor OK: {at16['speedup_parallel']:.2f}x at 16x16 / 8 threads")
PY
else
  echo "  (parallel floor skipped: $cores core(s) < 8 — the harness still"
  echo "   pins parallel/serial byte-identity on every run)"
fi

echo "==> smoke: youtiao repair (pinned change set, repair path + fallback pin)"
cargo run -q --release --offline --bin youtiao -- repair \
  --topology square --rows 5 --cols 5 --drift 6:18:3e-3 --json \
  > "$smoke_dir/repair1.json" 2> /dev/null
cargo run -q --release --offline --bin youtiao -- repair \
  --topology square --rows 5 --cols 5 --drift 6:18:3e-3 --json \
  > "$smoke_dir/repair2.json" 2> /dev/null
if ! cmp -s "$smoke_dir/repair1.json" "$smoke_dir/repair2.json"; then
  echo "verify: FAILED — repair output differs between two identical runs" >&2
  exit 1
fi
cargo run -q --release --offline --bin youtiao -- repair \
  --topology square --rows 4 --cols 4 --dead-couplers 0-1 --json \
  > "$smoke_dir/repair_fallback.json" 2> /dev/null
python3 - "$smoke_dir/repair1.json" "$smoke_dir/repair_fallback.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    drift = json.load(f)
# A pinned single-entry drift on the 5x5 grid: repaired locally, both
# endpoints dirty, kernel rows invalidated, validation clean, and the
# repaired plan's content hash is a pure function of the snapshot.
assert drift["outcome"] == "repaired", drift["outcome"]
assert drift["changes"] == 1 and not drift["structural"], drift
assert drift["dirty_qubits"] == 2, drift["dirty_qubits"]
assert drift["invalidated_rows"] > 0, drift["invalidated_rows"]
assert drift["validation_clean"] is True, drift["validation_clean"]
assert drift["plan_hash"] == "6b6f6ecab31b7f75", drift["plan_hash"]
with open(sys.argv[2]) as f:
    dead = json.load(f)
# A dead coupler is structural: the pass must fall back to a full
# replan (byte-identical to from-scratch by construction — pinned).
assert dead["outcome"] == "full_replan", dead["outcome"]
assert dead["structural"] is True, dead
assert dead["plan_hash"] == "f8d8d1d50d0245c1", dead["plan_hash"]
print("  repair smoke OK: drift repaired + fallback pinned, deterministic")
PY

echo "==> smoke: youtiao bench-plan --repair (tiny sizes, schema + contracts)"
cargo run -q --release --offline --bin youtiao -- bench-plan --repair \
  --sizes 4 --iters 2 --out "$smoke_dir/bench_repair.json" 2> /dev/null
python3 - "$smoke_dir/bench_repair.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["schema"] == "youtiao-bench-repair/v2", report["schema"]
assert report["sizes"], "bench-repair report has no sizes"
for size in report["sizes"]:
    by_name = {sc["scenario"]: sc for sc in size["scenarios"]}
    drift = by_name["drift-single"]
    # The harness itself asserts the tie-break; the smoke re-checks the
    # serialized outcome and that both paths produced real timings.
    assert drift["outcome"] == "repaired", drift
    assert drift["quality_equal"] is True, drift
    assert drift["freq_patch_share"] > 0, drift["freq_patch_share"]
    dead = by_name["dead-coupler"]
    assert dead["outcome"] == "full_replan", dead
    assert dead["freq_patch_share"] == 0, dead["freq_patch_share"]
    for sc in size["scenarios"]:
        assert sc["repair"]["median_us"] > 0 and sc["replan"]["median_us"] > 0, sc
        assert sc["speedup"] > 0, sc
print("  bench-repair smoke OK: " +
      ", ".join(s["label"] for s in report["sizes"]))
PY

echo "==> smoke: youtiao chaos (seeded faults, determinism across two runs)"
cargo run -q --release --offline --bin youtiao -- chaos \
  --in examples/batch_jobs.jsonl --faults examples/faults/smoke.json \
  --out "$smoke_dir/chaos1.jsonl" --jobs 3 --metrics-json \
  2> "$smoke_dir/chaos_metrics.json"
cargo run -q --release --offline --bin youtiao -- chaos \
  --in examples/batch_jobs.jsonl --faults examples/faults/smoke.json \
  --out "$smoke_dir/chaos2.jsonl" --jobs 3 2> /dev/null
if ! cmp -s <(sort "$smoke_dir/chaos1.jsonl") <(sort "$smoke_dir/chaos2.jsonl"); then
  echo "verify: FAILED — chaos records differ between two equal-seed runs" >&2
  diff <(sort "$smoke_dir/chaos1.jsonl") <(sort "$smoke_dir/chaos2.jsonl") >&2 || true
  exit 1
fi
python3 - "$smoke_dir/chaos1.jsonl" "$smoke_dir/chaos_metrics.json" "$jobs_in" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    records = sorted((json.loads(line) for line in f if line.strip()),
                     key=lambda r: r["index"])
jobs_in = int(sys.argv[3])
assert len(records) == jobs_in, f"expected {jobs_in} records, got {len(records)}"
# The smoke plan (seed 2) schedules, per job index: a cancel fault on 0,
# injected panics on 3 and 4, transient faults (retried to success)
# elsewhere — all a pure function of (seed, index, attempt).
expected = ["Cancelled", "Ok", "Ok", "Internal", "Internal", "Ok"]
got = [r["error"]["kind"] if r["status"] == "Error" else "Ok" for r in records]
assert got == expected, f"chaos outcomes drifted from the schedule: {got}"
for r in records:
    assert r["latency_ms"] == 0.0, "chaos records must be canonical"
with open(sys.argv[2]) as f:
    metrics = json.load(f)
faults = metrics["faults"]
total = sum(faults.values())
assert total > 0, "chaos run injected no faults"
assert faults["cancels"] == 1 and faults["panics"] == 2, faults
assert metrics["ok"] == 3 and metrics["errors"] == 3, metrics
print(f"  chaos smoke OK: {len(records)} records, {total} faults injected, "
      "deterministic across runs")
PY

echo "==> smoke: youtiao serve (daemon round trips, shard/worker determinism, shard loss)"
# stdin/stdout round trip against the checked-in canonical transcript
cargo run -q --release --offline --bin youtiao -- serve \
  < examples/daemon/session.jsonl > "$smoke_dir/daemon_stdin.jsonl" 2> /dev/null
if ! cmp -s "$smoke_dir/daemon_stdin.jsonl" examples/daemon/transcript.jsonl; then
  echo "verify: FAILED — daemon stdin session diverged from examples/daemon/transcript.jsonl" >&2
  diff "$smoke_dir/daemon_stdin.jsonl" examples/daemon/transcript.jsonl >&2 || true
  exit 1
fi
# socket round trips: canonical responses must be byte-identical across
# shard and worker counts (the in-band shutdown ends each daemon)
daemon_socket="$smoke_dir/youtiao.sock"
for config in "1 1" "8 4" "1 2"; do
  read -r shards jobs <<< "$config"
  cargo run -q --release --offline --bin youtiao -- serve \
    --socket "$daemon_socket" --shards "$shards" --jobs "$jobs" 2> /dev/null &
  daemon_pid=$!
  python3 - "$daemon_socket" examples/daemon/session.jsonl \
    > "$smoke_dir/daemon_s${shards}_j${jobs}.jsonl" <<'PY'
import socket, sys, time
path, session = sys.argv[1], sys.argv[2]
deadline = time.time() + 60
while True:
    try:
        client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        client.connect(path)
        break
    except OSError:
        client.close()
        if time.time() > deadline:
            raise SystemExit(f"daemon socket {path} never came up")
        time.sleep(0.1)
with open(session, "rb") as f:
    client.sendall(f.read())
client.shutdown(socket.SHUT_WR)
chunks = []
while True:
    chunk = client.recv(65536)
    if not chunk:
        break
    chunks.append(chunk)
sys.stdout.buffer.write(b"".join(chunks))
PY
  wait "$daemon_pid"
done
for out in "$smoke_dir/daemon_s8_j4.jsonl" "$smoke_dir/daemon_s1_j2.jsonl"; do
  if ! cmp -s "$smoke_dir/daemon_s1_j1.jsonl" "$out"; then
    echo "verify: FAILED — daemon socket responses differ across shard/worker counts ($out)" >&2
    diff "$smoke_dir/daemon_s1_j1.jsonl" "$out" >&2 || true
    exit 1
  fi
done
if ! cmp -s "$smoke_dir/daemon_s1_j1.jsonl" examples/daemon/transcript.jsonl; then
  echo "verify: FAILED — socket transcript diverged from the stdin transcript" >&2
  exit 1
fi
# shard-loss isolation: persist six distinct designs across four shard
# files, tear exactly one, and require that only its entries recompute
daemon_cache="$smoke_dir/daemon_cache.json"
for rows in 2 3 4 5 6 7; do
  printf '{"op":"design","rid":"d%s","request":{"chip":{"topology":"square","rows":%s,"cols":3}}}\n' \
    "$rows" "$rows"
done > "$smoke_dir/daemon_jobs.jsonl"
daemon_cache_run() {
  cargo run -q --release --offline --bin youtiao -- serve \
    --cache "$daemon_cache" --shards 4 --metrics-json "$@" \
    < "$smoke_dir/daemon_jobs.jsonl" 2> "$smoke_dir/daemon_metrics.json"
}
daemon_cache_run > "$smoke_dir/daemon_cold.jsonl"
daemon_cache_run > /dev/null
warm_hits=$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['cache_hits'])" \
  "$smoke_dir/daemon_metrics.json")
if [[ "$warm_hits" -ne 6 ]]; then
  echo "verify: FAILED — warm daemon run hit $warm_hits/6 cached plans" >&2
  exit 1
fi
# tear the fullest shard file (guaranteed non-empty; 6 keys, 4 shards)
torn_file=$(ls -S "$daemon_cache".shard*-of-4 | head -1)
lost=$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['count'])" "$torn_file")
head -c 20 "$torn_file" > "$torn_file.torn" && mv "$torn_file.torn" "$torn_file"
if daemon_cache_run > /dev/null; then
  echo "verify: FAILED — daemon loaded a torn shard file without --salvage" >&2
  exit 1
fi
daemon_cache_run --salvage > "$smoke_dir/daemon_salvaged.jsonl"
if ! cmp -s "$smoke_dir/daemon_salvaged.jsonl" "$smoke_dir/daemon_cold.jsonl"; then
  echo "verify: FAILED — salvage changed daemon response bytes" >&2
  exit 1
fi
python3 - "$smoke_dir/daemon_metrics.json" "$lost" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    metrics = json.load(f)
lost = int(sys.argv[2])
assert lost > 0, "the torn shard held no entries"
hits, misses = metrics["cache_hits"], metrics["cache_misses"]
assert hits == 6 - lost, f"expected {6 - lost} hits after losing {lost} entries, got {hits}"
assert misses == lost, f"expected {lost} misses, got {misses}"
print(f"  daemon smoke OK: transcripts byte-identical across shard/worker counts, "
      f"salvage recomputed only the torn shard's {lost} entries")
PY

if [[ "${1:-}" == "--smoke-only" ]]; then
  echo "verify: smoke OK"
  exit 0
fi

echo "==> figure ports: fig16/fig17 reports match results/ golden files"
cargo test -q --release --offline -p youtiao-bench --test fig_ports -- --include-ignored

echo "==> style: cargo fmt --check"
if cargo fmt --version >/dev/null 2>&1; then
  cargo fmt --all -- --check
else
  echo "  (rustfmt not installed; skipped)"
fi

echo "==> style: cargo clippy -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
  cargo clippy --workspace --all-targets --offline -- -D warnings
else
  echo "  (clippy not installed; skipped)"
fi

echo "verify: OK"
