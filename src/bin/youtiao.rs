//! The `youtiao` command-line tool: plan multiplexed wiring for a chip,
//! compare costs against dedicated wiring, and export chip/plan JSON.
//!
//! ```text
//! youtiao topologies
//! youtiao plan --topology square --rows 6 --cols 6 [--theta 4] [--json]
//! youtiao plan --chip my_chip.json --json
//! youtiao cost --topology heavy-square --rows 3 --cols 3
//! youtiao export-chip --topology surface --distance 5 --out chip.json
//! youtiao batch --in jobs.jsonl --out results.jsonl --jobs 8 --deadline-ms 5000
//! youtiao chaos --in jobs.jsonl --faults faults.json --seed 7 --out records.jsonl
//! youtiao serve --socket /tmp/youtiao.sock --shards 8 --cache plans.json
//! youtiao sweep --spec sweep.json --out records.jsonl --threads 8 --pareto cost,fidelity
//! youtiao bench-plan --sizes 6,8,10,12,16 --iters 9 --out BENCH_plan.json
//! youtiao bench-plan --repair --sizes 8,12 --out BENCH_repair.json
//! youtiao repair --topology square --rows 5 --cols 5 --drift 6:18:3e-3 --compare-replan
//! ```

use std::collections::HashMap;
use std::io::Read;
use std::process::ExitCode;

use youtiao::bench::perf::{Layout, PerfConfig};
use youtiao::bench::repair_perf::RepairBenchConfig;
use youtiao::chip::multi::{LinkTopology, MultiDieChip};
use youtiao::chip::spec::ChipSpec;
use youtiao::chip::surface::SurfaceCode;
use youtiao::chip::{topology, Chip, CouplerId, DeviceId, QubitId};
use youtiao::core::tdm::brickwork_activity;
use youtiao::core::{CryostatBudget, PlanContext, PlanSummary, PlannerConfig, YoutiaoPlanner};
use youtiao::cost::WiringTally;
use youtiao::multi::{design_multi_chip, MultiDesignOptions};
use youtiao::repair::{
    diff_inputs, repair_plan, replan_from_snapshot, PlanInputs, QualityReport, RepairConfig,
};
use youtiao::serve::{
    apply_cache_fault, content_key, near_square, parse_requests, run_design_batch,
    run_design_batch_stream, run_design_daemon, shard_file, AdmissionConfig, BatchOptions,
    DaemonOptions, DaemonReport, DesignRequest, FaultPlan,
};
use youtiao::xplore::{parse_objectives, run_sweep, write_csv, SweepOptions, SweepSpec};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  youtiao topologies
  youtiao plan   <chip args> [--theta T] [--fdm-capacity K] [--one-to-eight]
                 [--plan-threads N] [--chiplets N]
                 [--link-topology grid|torus|isolated] [--coax-budget N]
                 [--validate] [--json] [--viz]
                 (--chiplets tiles the chip into a near-square multi-die array:
                  each die planned independently — byte-identical at any
                  --plan-threads — cross-die links reconciled by in-line
                  frequency swaps, an optional shared --coax-budget
                  partitioned across dies, and per-die + cross-die wiring
                  invariants checked under --validate; --validate without
                  --chiplets validates the chip as a 1x1 array, whose plan
                  is exactly the monolithic one; --viz is single-die only)
  youtiao cost   <chip args> [--theta T] [--fdm-capacity K] [--one-to-eight]
  youtiao export-chip <chip args> --out FILE
  youtiao batch  --in FILE.jsonl [--out FILE.jsonl] [--jobs N] [--plan-threads N]
                 [--deadline-ms T] [--retries R] [--cache FILE]
                 [--cache-capacity N] [--shards N]
                 [--metrics-json] [--trace-json FILE] [--validate] [--canonical]
                 (--in - reads stdin; input streams through the framed reader one
                  line at a time, so the jobs file never loads whole; --out
                  defaults to stdout; metrics go to stderr;
                  --jobs/--workers/--threads are synonyms: worker threads, 0 = one
                  per core (the default); --plan-threads parallelizes inside each
                  plan — plans are byte-identical at any value; left at 0 it
                  resolves to serial plans whenever the pool has >1 worker, and
                  to one thread per core when the pool is single-worker;
                  --canonical zeroes latency and strips traces from records so
                  equal-seed runs are byte-comparable;
                  --shards splits the plan cache into N
                  independently locked + persisted shards; --trace-json writes
                  per-job stage-span traces; --validate fails a job when its
                  finished plan breaks a wiring invariant)
  youtiao serve  [--socket PATH] [--shards N] [--cache FILE] [--cache-capacity N]
                 [--workers N] [--plan-threads N] [--retries R] [--deadline-ms T]
                 [--max-queue N]
                 [--client-inflight N] [--est-ms MS] [--no-canonical] [--salvage]
                 [--validate] [--faults FILE.json] [--seed N] [--metrics-json]
                 (long-lived daemon speaking newline-framed JSONL request frames
                  {\"op\":\"design\"|\"ping\"|\"stats\"|\"shutdown\",\"rid\":ID,\"request\":{...}}
                  over stdin/stdout, or one session per connection on a unix
                  socket with --socket; an in-band shutdown frame stops the
                  daemon after draining. Responses are canonical — latency
                  zeroed, traces and shard tags stripped — so equal-seed
                  sessions are byte-identical across --shards, --workers and
                  --plan-threads (same policy as batch).
                  The plan cache shards into N files, each lost or salvaged
                  (--salvage) independently; --max-queue and --client-inflight
                  bound intake (backpressure), --est-ms (non-negative) enables
                  deadline-aware load shedding (structured Shed errors);
                  per-session metrics go to stderr)
  youtiao chaos  --in FILE.jsonl [--faults FILE.json] [--seed N] [+ batch flags]
                 (batch run under a deterministic fault-injection schedule: the
                  FaultPlan JSON sets per-attempt rates for transient/permanent
                  errors, panics, delays and cancellations, an abort-after
                  threshold, and cache-file corruption; --seed overrides the
                  plan's seed; --faults defaults to the built-in smoke plan;
                  records are emitted canonical — zero latency, no trace — so
                  equal seeds give byte-identical streams after an index sort)
  youtiao sweep  --spec FILE.json [--out FILE.jsonl] [--csv FILE.csv] [--threads N]
                 [--plan-threads N] [--pareto cost,coax,fidelity,latency]
                 [--cache FILE]
                 [--cache-capacity N] [--timings] [--summary-json]
                 (--spec is a SweepSpec: axes over chips/theta/capacities/modes/seeds;
                  records stream as JSONL to --out (default stdout) in grid order,
                  byte-identical for any --threads and --plan-threads (0 = one
                  per core; auto plan-threads stay serial while points fan out);
                  the Pareto
                  front and per-axis marginals go to stderr, or as JSON with
                  --summary-json; --timings adds per-point latency/stage wall times)
  youtiao repair <chip args> [--theta T] [--fdm-capacity K] [--one-to-eight]
                 [--plan-threads N]
                 [--drift A:B:X,...] [--dead-couplers A-B,...]
                 [--activity qN:MASK,cN:MASK,...] [--compare-replan] [--json]
                 (plans a base snapshot, applies the delta flags as a new
                  snapshot, diffs, and repairs: value-only drift and activity
                  deltas patch the plan locally, structural deltas fall back to
                  a full replan byte-identical to from-scratch planning;
                  --compare-replan adds the repair-vs-replan quality table and
                  tie-break verdict; prints the repaired plan's content hash)
  youtiao bench-plan [--sizes N,N,...] [--layouts grid:N,surface:D,heavy-hex:RxC]
                 [--iters N] [--plan-threads N] [--out FILE.json] [--json]
                 [--repair]
                 (times the planner's kernelized vs naive grouping/refine and
                  freq_alloc/readout hot loops across square-grid chip sizes,
                  default 6,8,10,12,16,24 at 9 iterations, plus a partitioned
                  serial-vs-parallel plan row at --plan-threads (default 8)
                  with scratch-arena reuse probes; writes the
                  BENCH_plan.json perf trajectory to --out; a summary table
                  goes to stderr, or the full report to stdout with --json;
                  --layouts appends rotated-surface-code and heavy-hex fabrics,
                  replacing the default grid list unless --sizes is also given;
                  --repair runs the repair-vs-replan harness instead — default
                  sizes 8,12 at 15 iterations, reporting the freq-patch share
                  of the repair median — and writes the BENCH_repair.json
                  trajectory)

chip args (one of):
  --topology square|heavy-square|hexagon|heavy-hexagon|low-density|sycamore|linear|ring
             [--rows R] [--cols C] [--size N]
  --topology surface --distance D
  --topology ibm-heavy-hex --size N
  --chip FILE.json    (a ChipSpec exported by export-chip)";

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("missing command".into());
    };
    let flags = parse_flags(&args[1..])?;
    match command.as_str() {
        "topologies" => {
            println!("built-in topology generators:");
            for (name, note) in [
                (
                    "square",
                    "rows x cols grid (the paper's square / Xmon devices)",
                ),
                ("heavy-square", "grid with a qubit on every edge"),
                ("hexagon", "honeycomb patch (rows x cols cells)"),
                ("heavy-hexagon", "honeycomb with a qubit on every edge"),
                ("low-density", "snake path, average degree 2"),
                ("sycamore", "diagonal grid (Google-style)"),
                ("linear", "1-D chain (--size N)"),
                ("ring", "cycle (--size N)"),
                ("surface", "rotated surface code (--distance D)"),
                (
                    "ibm-heavy-hex",
                    "heavy-hex patch closest to --size N qubits",
                ),
            ] {
                println!("  {name:<15} {note}");
            }
            Ok(())
        }
        "plan" => {
            let chip = load_chip(&flags)?;
            let config = planner_config(&flags)?;
            if flags.contains_key("chiplets")
                || flags.contains_key("link-topology")
                || flags.contains_key("coax-budget")
                || flags.contains_key("validate")
            {
                return run_plan_multi(&chip, config, &flags);
            }
            let plan = YoutiaoPlanner::new(&chip)
                .with_config(config)
                .plan()
                .map_err(|e| e.to_string())?;
            let summary = PlanSummary::from_plan(&plan);
            if flags.contains_key("json") {
                let json = serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?;
                println!("{json}");
            } else {
                print_plan(&chip, &summary);
            }
            if flags.contains_key("viz") {
                println!("\nFDM lines (qubits labelled by line):");
                print!("{}", youtiao::core::viz::render_fdm(&chip, &plan));
                println!("\nTDM groups (devices labelled by Z line):");
                print!("{}", youtiao::core::viz::render_tdm(&chip, &plan));
            }
            Ok(())
        }
        "cost" => {
            let chip = load_chip(&flags)?;
            let config = planner_config(&flags)?;
            let plan = YoutiaoPlanner::new(&chip)
                .with_config(config)
                .plan()
                .map_err(|e| e.to_string())?;
            let g = WiringTally::google(&chip);
            let y = WiringTally::youtiao(&plan);
            println!("{}", chip);
            println!(
                "{:<22} {:>10} {:>10} {:>8}",
                "", "dedicated", "YOUTIAO", "ratio"
            );
            let rows: [(&str, usize, usize); 5] = [
                ("XY lines", g.xy_lines, y.xy_lines),
                ("Z lines", g.z_lines, y.z_lines),
                ("coax total", g.coax_lines(), y.coax_lines()),
                ("DAC channels", g.dac_channels(), y.dac_channels()),
                ("chip interfaces", g.interfaces(), y.interfaces()),
            ];
            for (name, gv, yv) in rows {
                println!(
                    "{name:<22} {gv:>10} {yv:>10} {:>7.2}x",
                    gv as f64 / yv as f64
                );
            }
            println!(
                "{:<22} {:>9.0}K {:>9.0}K {:>7.2}x",
                "wiring cost ($)",
                g.cost_kusd(),
                y.cost_kusd(),
                g.cost_kusd() / y.cost_kusd()
            );
            Ok(())
        }
        "export-chip" => {
            let chip = load_chip(&flags)?;
            let out = flags
                .get("out")
                .and_then(|v| v.clone())
                .ok_or("export-chip requires --out FILE")?;
            let spec = ChipSpec::from_chip(&chip);
            let json = serde_json::to_string_pretty(&spec).map_err(|e| e.to_string())?;
            std::fs::write(&out, json).map_err(|e| e.to_string())?;
            println!(
                "wrote {} ({} qubits, {} couplers)",
                out,
                chip.num_qubits(),
                chip.num_couplers()
            );
            Ok(())
        }
        "batch" => run_batch_command(&flags),
        "chaos" => run_chaos_command(&flags),
        "serve" => run_serve_command(&flags),
        "sweep" => run_sweep_command(&flags),
        "repair" => run_repair_command(&flags),
        "bench-plan" => run_bench_plan_command(&flags),
        other => Err(format!("unknown command `{other}`")),
    }
}

/// The `batch` subcommand: JSONL requests in, JSONL records out,
/// metrics summary on stderr. Input streams through the framed reader
/// one line at a time — the jobs file is never materialized in memory.
fn run_batch_command(flags: &HashMap<String, Option<String>>) -> Result<(), String> {
    let options = batch_options(flags)?;
    let input = flags
        .get("in")
        .and_then(|v| v.clone())
        .ok_or("requires --in FILE (JSONL; `-` reads stdin)")?;
    let metrics = if input == "-" {
        with_output(flags, |mut out| {
            run_design_batch_stream(std::io::stdin().lock(), &options, &mut out)
        })?
    } else {
        let file = std::fs::File::open(&input).map_err(|e| format!("{input}: {e}"))?;
        let reader = std::io::BufReader::new(file);
        with_output(flags, move |mut out| {
            run_design_batch_stream(reader, &options, &mut out)
        })?
    };
    report_metrics(&metrics, flags);
    Ok(())
}

/// The `chaos` subcommand: a batch run under a deterministic seeded
/// fault-injection schedule. Records are emitted canonical (latency
/// zeroed, traces stripped) so two equal-seed runs are byte-identical
/// after an index sort, and a torn cache file salvages to a cold start
/// instead of failing the run.
fn run_chaos_command(flags: &HashMap<String, Option<String>>) -> Result<(), String> {
    let requests = read_requests(flags)?;
    let mut plan = match flags.get("faults") {
        None => FaultPlan::smoke(0),
        Some(Some(path)) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            serde_json::from_str::<FaultPlan>(&text).map_err(|e| format!("{path}: {e}"))?
        }
        Some(None) => return Err("--faults expects a file path".into()),
    };
    if let Some(Some(seed)) = flags.get("seed") {
        plan.seed = Some(seed.parse().map_err(|_| "--seed expects an integer")?);
    }
    plan.validate().map_err(|e| format!("fault plan: {e}"))?;

    let mut options = batch_options(flags)?;
    // Sharded caches persist one file per shard: the torn-write fault
    // mangles shard 0's file, and the shard-loss fault deletes the
    // named shard's file — both leave the other shards intact.
    if let (Some(fault), Some(path)) = (plan.cache_fault, &options.cache_path) {
        let target = shard_file(path, 0, options.shards.max(1));
        if target.exists() {
            apply_cache_fault(&target, fault).map_err(|e| format!("{}: {e}", target.display()))?;
            eprintln!(
                "chaos: applied cache fault {fault:?} to {}",
                target.display()
            );
        }
    }
    if let (Some(lost), Some(path)) = (plan.shard_loss, &options.cache_path) {
        let target = shard_file(path, lost, options.shards.max(1));
        if target.exists() {
            std::fs::remove_file(&target).map_err(|e| format!("{}: {e}", target.display()))?;
            eprintln!("chaos: applied shard-loss fault to {}", target.display());
        }
    }
    options.faults = Some(plan);
    options.canonical = true;
    options.cache_salvage = true;

    // Scheduled panics are contained by the pool (they become Internal
    // error records); keep their default hook output — a "thread
    // panicked" line per injection — off the terminal. Anything else
    // still reaches the previous hook.
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let message = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !message.starts_with("injected panic") {
            previous(info);
        }
    }));

    run_and_report(&requests, &options, flags)
}

/// Reads the `--in` JSONL request file (`-` for stdin).
fn read_requests(flags: &HashMap<String, Option<String>>) -> Result<Vec<DesignRequest>, String> {
    let input = flags
        .get("in")
        .and_then(|v| v.clone())
        .ok_or("requires --in FILE (JSONL; `-` reads stdin)")?;
    let text = if input == "-" {
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| format!("stdin: {e}"))?;
        text
    } else {
        std::fs::read_to_string(&input).map_err(|e| format!("{input}: {e}"))?
    };
    parse_requests(&text).map_err(|e| e.to_string())
}

/// The batch flags shared by `batch` and `chaos`.
fn batch_options(flags: &HashMap<String, Option<String>>) -> Result<BatchOptions, String> {
    let deadline_ms = match flags.get("deadline-ms") {
        None => None,
        Some(Some(v)) => Some(
            v.parse()
                .map_err(|_| "--deadline-ms expects milliseconds")?,
        ),
        Some(None) => return Err("--deadline-ms expects a value".into()),
    };
    // `--jobs`, `--workers` and `--threads` are synonyms for the pool
    // size; 0 (the default) spawns one worker per available core.
    let jobs = ["jobs", "workers", "threads"]
        .iter()
        .find(|key| flags.contains_key(**key))
        .map(|key| get_usize(flags, key, 0))
        .transpose()?
        .unwrap_or(0);
    Ok(BatchOptions {
        jobs,
        plan_threads: get_usize(flags, "plan-threads", 0)?,
        deadline_ms,
        max_retries: get_usize(flags, "retries", 2)? as u32,
        cache_capacity: get_usize(flags, "cache-capacity", 1024)?,
        cache_path: flags
            .get("cache")
            .and_then(|v| v.clone())
            .map(std::path::PathBuf::from),
        trace_json: match flags.get("trace-json") {
            None => None,
            Some(Some(path)) => Some(std::path::PathBuf::from(path)),
            Some(None) => return Err("--trace-json expects a file path".into()),
        },
        validate: flags.contains_key("validate"),
        canonical: flags.contains_key("canonical"),
        shards: get_usize(flags, "shards", 1)?.max(1),
        ..BatchOptions::default()
    })
}

/// Runs `run` against `--out` (default stdout), buffering file output.
fn with_output<T>(
    flags: &HashMap<String, Option<String>>,
    run: impl FnOnce(&mut dyn std::io::Write) -> Result<T, youtiao::serve::BatchError>,
) -> Result<T, String> {
    let out = flags
        .get("out")
        .and_then(|v| v.clone())
        .filter(|v| v != "-");
    match out {
        Some(path) => {
            let file = std::fs::File::create(&path).map_err(|e| format!("{path}: {e}"))?;
            let mut writer = std::io::BufWriter::new(file);
            run(&mut writer).map_err(|e| e.to_string())
        }
        None => {
            let stdout = std::io::stdout();
            run(&mut stdout.lock()).map_err(|e| e.to_string())
        }
    }
}

/// Prints the metrics summary to stderr (JSON with `--metrics-json`).
fn report_metrics(metrics: &youtiao::serve::ServeMetrics, flags: &HashMap<String, Option<String>>) {
    if flags.contains_key("metrics-json") {
        match serde_json::to_string_pretty(metrics) {
            Ok(json) => eprintln!("{json}"),
            Err(e) => eprintln!("metrics: {e}"),
        }
    } else {
        eprintln!("{}", metrics.render());
    }
}

/// Runs the batch to `--out` (default stdout) and prints the metrics
/// summary to stderr (JSON with `--metrics-json`).
fn run_and_report(
    requests: &[DesignRequest],
    options: &BatchOptions,
    flags: &HashMap<String, Option<String>>,
) -> Result<(), String> {
    let metrics = with_output(flags, |mut out| {
        run_design_batch(requests, options, &mut out)
    })?;
    report_metrics(&metrics, flags);
    Ok(())
}

/// The serve flags: daemon session + admission policy configuration.
fn daemon_options(flags: &HashMap<String, Option<String>>) -> Result<DaemonOptions, String> {
    let deadline_ms = match flags.get("deadline-ms") {
        None => None,
        Some(Some(v)) => Some(
            v.parse()
                .map_err(|_| "--deadline-ms expects milliseconds")?,
        ),
        Some(None) => return Err("--deadline-ms expects a value".into()),
    };
    let workers = ["jobs", "workers", "threads"]
        .iter()
        .find(|key| flags.contains_key(**key))
        .map(|key| get_usize(flags, key, 0))
        .transpose()?
        .unwrap_or(0);
    let est_ms = match flags.get("est-ms") {
        None => 0.0,
        Some(Some(v)) => {
            let est: f64 = v.parse().map_err(|_| "--est-ms expects milliseconds")?;
            // A negative estimate would silently disable shedding (the
            // controller treats est_ms <= 0 as "off"); reject it here so
            // the operator learns at startup, not from missing sheds.
            if !est.is_finite() || est < 0.0 {
                return Err(format!(
                    "--est-ms expects a non-negative number of milliseconds, got `{v}`"
                ));
            }
            est
        }
        Some(None) => return Err("--est-ms expects a value".into()),
    };
    let mut faults = match flags.get("faults") {
        None => None,
        Some(Some(path)) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            Some(serde_json::from_str::<FaultPlan>(&text).map_err(|e| format!("{path}: {e}"))?)
        }
        Some(None) => return Err("--faults expects a file path".into()),
    };
    if let Some(Some(seed)) = flags.get("seed") {
        let seed = seed.parse().map_err(|_| "--seed expects an integer")?;
        faults.get_or_insert_with(FaultPlan::default).seed = Some(seed);
    }
    if let Some(plan) = &faults {
        plan.validate().map_err(|e| format!("fault plan: {e}"))?;
    }
    Ok(DaemonOptions {
        workers,
        plan_threads: get_usize(flags, "plan-threads", 0)?,
        max_retries: get_usize(flags, "retries", 2)? as u32,
        deadline_ms,
        cache_capacity: get_usize(flags, "cache-capacity", 1024)?,
        shards: get_usize(flags, "shards", 1)?.max(1),
        cache_path: flags
            .get("cache")
            .and_then(|v| v.clone())
            .map(std::path::PathBuf::from),
        cache_salvage: flags.contains_key("salvage"),
        canonical: !flags.contains_key("no-canonical"),
        trace: false,
        validate: flags.contains_key("validate"),
        faults,
        admission: AdmissionConfig {
            max_queue: get_usize(flags, "max-queue", 1024)?.max(1),
            client_inflight: get_usize(flags, "client-inflight", 0)?,
            est_ms,
        },
    })
}

/// Prints one daemon session's summary + metrics to stderr.
fn report_daemon(report: &DaemonReport, flags: &HashMap<String, Option<String>>) {
    if flags.contains_key("metrics-json") {
        match serde_json::to_string_pretty(&report.metrics) {
            Ok(json) => eprintln!("{json}"),
            Err(e) => eprintln!("metrics: {e}"),
        }
        return;
    }
    let mut line = format!(
        "session: {} requests, {} responses",
        report.requests, report.responses
    );
    if report.salvaged_shards > 0 {
        line.push_str(&format!(", {} shards salvaged", report.salvaged_shards));
    }
    if report.shutdown {
        line.push_str(", shutdown");
    }
    eprintln!("{line}");
    eprintln!("{}", report.metrics.render());
}

/// The `serve` subcommand: a long-lived daemon session over
/// stdin/stdout, or an accept loop on a unix socket with `--socket`
/// (one session per connection; an in-band shutdown stops the daemon).
fn run_serve_command(flags: &HashMap<String, Option<String>>) -> Result<(), String> {
    let options = daemon_options(flags)?;
    match flags.get("socket") {
        None => {
            let reader = std::io::BufReader::new(std::io::stdin());
            let stdout = std::io::stdout();
            let report = run_design_daemon(&options, reader, &mut stdout.lock())
                .map_err(|e| e.to_string())?;
            report_daemon(&report, flags);
            Ok(())
        }
        Some(Some(path)) => serve_socket(path, &options, flags),
        Some(None) => Err("--socket expects a path".into()),
    }
}

/// The unix-socket accept loop: sessions run one at a time (requests
/// within a session already fan out across the worker pool); the
/// socket file is created fresh and removed on shutdown.
fn serve_socket(
    path: &str,
    options: &DaemonOptions,
    flags: &HashMap<String, Option<String>>,
) -> Result<(), String> {
    use std::io::Write as _;
    use std::os::unix::net::UnixListener;

    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("youtiao serve: listening on {path}");
    let outcome = loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) => break Err(format!("{path}: accept: {e}")),
        };
        let reader = match stream.try_clone() {
            Ok(clone) => std::io::BufReader::new(clone),
            Err(e) => break Err(format!("{path}: {e}")),
        };
        let mut writer = std::io::BufWriter::new(stream);
        let report = match run_design_daemon(options, reader, &mut writer) {
            Ok(report) => report,
            Err(e) => break Err(e.to_string()),
        };
        if let Err(e) = writer.flush() {
            break Err(e.to_string());
        }
        report_daemon(&report, flags);
        if report.shutdown {
            break Ok(());
        }
    };
    let _ = std::fs::remove_file(path);
    outcome
}

/// The `sweep` subcommand: a JSON `SweepSpec` in, JSONL records out
/// (grid order, thread-count independent), summary on stderr.
fn run_sweep_command(flags: &HashMap<String, Option<String>>) -> Result<(), String> {
    let spec_path = flags
        .get("spec")
        .and_then(|v| v.clone())
        .ok_or("sweep requires --spec FILE (a JSON SweepSpec)")?;
    let text = std::fs::read_to_string(&spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let spec: SweepSpec = serde_json::from_str(&text).map_err(|e| format!("{spec_path}: {e}"))?;

    let mut options = SweepOptions {
        threads: get_usize(flags, "threads", 0)?,
        plan_threads: get_usize(flags, "plan-threads", 0)?,
        timings: flags.contains_key("timings"),
        cache_capacity: get_usize(flags, "cache-capacity", 1024)?,
        cache_path: flags
            .get("cache")
            .and_then(|v| v.clone())
            .map(std::path::PathBuf::from),
        ..SweepOptions::default()
    };
    match flags.get("pareto") {
        None => {}
        Some(Some(list)) => options.objectives = parse_objectives(list)?,
        Some(None) => return Err("--pareto expects a comma-separated objective list".into()),
    }

    let out = flags
        .get("out")
        .and_then(|v| v.clone())
        .filter(|v| v != "-");
    let outcome = match out {
        Some(path) => {
            let file = std::fs::File::create(&path).map_err(|e| format!("{path}: {e}"))?;
            let mut writer = std::io::BufWriter::new(file);
            run_sweep(&spec, &options, &mut writer)
        }
        None => {
            let stdout = std::io::stdout();
            run_sweep(&spec, &options, &mut stdout.lock())
        }
    }
    .map_err(|e| e.to_string())?;

    match flags.get("csv") {
        None => {}
        Some(Some(path)) => {
            let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            let mut writer = std::io::BufWriter::new(file);
            write_csv(&outcome.records, &mut writer).map_err(|e| format!("{path}: {e}"))?;
        }
        Some(None) => return Err("--csv expects a file path".into()),
    }

    if flags.contains_key("summary-json") {
        let json = serde_json::to_string_pretty(&outcome.summary).map_err(|e| e.to_string())?;
        eprintln!("{json}");
    } else {
        eprint!("{}", outcome.summary.render());
    }
    Ok(())
}

/// The `repair` subcommand: plan a base snapshot, apply the delta
/// flags as a new snapshot, diff, and run the incremental repair pass.
fn run_repair_command(flags: &HashMap<String, Option<String>>) -> Result<(), String> {
    let chip = load_chip(flags)?;
    let config = planner_config(flags)?;
    let ctx = PlanContext::build(&chip, None, config.weights);
    let activity = brickwork_activity(&chip);
    let base = YoutiaoPlanner::new(&chip)
        .with_activity(&activity)
        .with_config(config.clone())
        .with_context(&ctx)
        .plan()
        .map_err(|e| e.to_string())?;

    // The new snapshot: the base with the delta flags applied.
    let num_qubits = chip.num_qubits() as u32;
    let mutated = match parse_pairs(flags, "dead-couplers")? {
        dead if dead.is_empty() => None,
        dead => {
            let mut spec = ChipSpec::from_chip(&chip);
            for (a, b) in dead {
                let key = (a.min(b), a.max(b));
                let before = spec.couplers.len();
                spec.couplers.retain(|&(x, y)| (x.min(y), x.max(y)) != key);
                if spec.couplers.len() == before {
                    return Err(format!("--dead-couplers: {a}-{b} is not a coupler"));
                }
            }
            Some(spec.to_chip().map_err(|e| e.to_string())?)
        }
    };
    let new_chip = mutated.as_ref().unwrap_or(&chip);

    let mut new_xtalk = ctx.crosstalk().clone();
    for entry in list_flag(flags, "drift", "A:B:X (qubit:qubit:crosstalk)")? {
        let parts: Vec<&str> = entry.split(':').collect();
        let parsed = match parts.as_slice() {
            [a, b, x] => match (a.parse::<u32>(), b.parse::<u32>(), x.parse::<f64>()) {
                (Ok(a), Ok(b), Ok(x)) => Some((a, b, x)),
                _ => None,
            },
            _ => None,
        };
        let Some((a, b, x)) = parsed else {
            return Err(format!("--drift: `{entry}` is not A:B:X"));
        };
        if a >= num_qubits || b >= num_qubits || a == b || !(x.is_finite() && x >= 0.0) {
            return Err(format!("--drift: `{entry}` is out of range"));
        }
        new_xtalk.set(QubitId::new(a), QubitId::new(b), x);
    }

    let mut new_activity = brickwork_activity(new_chip);
    for entry in list_flag(flags, "activity", "qN:MASK or cN:MASK")? {
        let device_mask = entry.split_once(':').and_then(|(device, mask)| {
            let mask = mask.parse::<u32>().ok()?;
            let index = device.get(1..)?.parse::<u32>().ok()?;
            let device = match device.as_bytes().first()? {
                b'q' if (index as usize) < new_chip.num_qubits() => {
                    DeviceId::Qubit(QubitId::new(index))
                }
                b'c' if (index as usize) < new_chip.num_couplers() => {
                    DeviceId::Coupler(CouplerId::new(index))
                }
                _ => return None,
            };
            Some((device, mask))
        });
        let Some((device, mask)) = device_mask else {
            return Err(format!(
                "--activity: `{entry}` is not an in-range qN:MASK or cN:MASK"
            ));
        };
        new_activity.insert(device, mask);
    }

    let old = PlanInputs {
        chip: &chip,
        xtalk: ctx.crosstalk(),
        activity: &activity,
    };
    let new = PlanInputs {
        chip: new_chip,
        xtalk: &new_xtalk,
        activity: &new_activity,
    };
    let changes = diff_inputs(&old, &new);
    let report = repair_plan(
        &base,
        &ctx,
        &new,
        &changes,
        &config,
        &RepairConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    let summary = PlanSummary::from_plan(&report.plan);
    let hash = content_key(&summary);

    if flags.contains_key("json") {
        #[derive(serde::Serialize)]
        struct RepairCliReport {
            outcome: &'static str,
            changes: usize,
            structural: bool,
            dirty_qubits: usize,
            invalidated_rows: usize,
            dirty_groups: usize,
            regrouped_devices: usize,
            validation_clean: Option<bool>,
            plan_hash: String,
            summary: PlanSummary,
        }
        let out = RepairCliReport {
            outcome: report.outcome.as_str(),
            changes: changes.len(),
            structural: changes.structural(),
            dirty_qubits: report.dirty_qubits,
            invalidated_rows: report.invalidated_rows,
            dirty_groups: report.dirty_groups,
            regrouped_devices: report.regrouped_devices,
            validation_clean: report.validation.as_ref().map(|v| v.is_clean()),
            plan_hash: format!("{hash:016x}"),
            summary,
        };
        let json = serde_json::to_string_pretty(&out).map_err(|e| e.to_string())?;
        println!("{json}");
        return Ok(());
    }

    println!("{chip}");
    println!("\nchange set ({}):", changes.len());
    if changes.is_empty() {
        println!("  (empty)");
    } else {
        print!("{}", changes.render());
    }
    println!(
        "\noutcome: {} ({} dirty qubits, {} kernel rows invalidated, {} groups regrouped over {} devices)",
        report.outcome.as_str(),
        report.dirty_qubits,
        report.invalidated_rows,
        report.dirty_groups,
        report.regrouped_devices,
    );
    if let Some(validation) = &report.validation {
        println!(
            "validation: {}",
            if validation.is_clean() {
                "clean"
            } else {
                "VIOLATIONS"
            }
        );
    }
    println!("plan hash: {hash:016x}");

    if flags.contains_key("compare-replan") {
        let (replanned, _) = replan_from_snapshot(&new, &config).map_err(|e| e.to_string())?;
        let quality = QualityReport::compare(&report.plan, &replanned, &new_xtalk, &new_activity);
        println!("\nrepair vs replan (repair | replan):");
        print!("{}", quality.render());
        println!(
            "quality-equal: {}",
            quality.quality_equal(youtiao::bench::repair_perf::QUALITY_TOLERANCE)
        );
    }
    Ok(())
}

/// Splits a comma-separated `--key` value into trimmed entries; an
/// absent flag yields no entries.
fn list_flag(
    flags: &HashMap<String, Option<String>>,
    key: &str,
    expects: &str,
) -> Result<Vec<String>, String> {
    match flags.get(key) {
        None => Ok(Vec::new()),
        Some(Some(list)) => Ok(list
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect()),
        Some(None) => Err(format!(
            "--{key} expects a comma-separated list of {expects}"
        )),
    }
}

/// Parses a `--key A-B,C-D` endpoint-pair list.
fn parse_pairs(
    flags: &HashMap<String, Option<String>>,
    key: &str,
) -> Result<Vec<(u32, u32)>, String> {
    list_flag(flags, key, "A-B endpoint pairs")?
        .iter()
        .map(|entry| {
            entry
                .split_once('-')
                .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
                .ok_or_else(|| format!("--{key}: `{entry}` is not an A-B endpoint pair"))
        })
        .collect()
}

/// The `bench-plan` subcommand: run the planner micro-benchmark harness
/// and write the `BENCH_plan.json` perf trajectory (or, with
/// `--repair`, the repair-vs-replan harness and `BENCH_repair.json`).
fn run_bench_plan_command(flags: &HashMap<String, Option<String>>) -> Result<(), String> {
    let sizes = match flags.get("sizes") {
        None => None,
        Some(Some(list)) => {
            let sizes: Vec<usize> = list
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 2)
                        .ok_or_else(|| format!("--sizes: `{s}` is not a grid side >= 2"))
                })
                .collect::<Result<_, _>>()?;
            if sizes.is_empty() {
                return Err("--sizes expects a comma-separated list".into());
            }
            Some(sizes)
        }
        Some(None) => return Err("--sizes expects a comma-separated list (e.g. 6,8,12)".into()),
    };

    if flags.contains_key("repair") {
        if flags.contains_key("layouts") {
            return Err("--repair benchmarks square grids only; drop --layouts".into());
        }
        let mut config = RepairBenchConfig::default();
        if let Some(sizes) = sizes {
            config.sizes = sizes;
        }
        config.iterations = get_usize(flags, "iters", config.iterations)?;
        if config.iterations == 0 {
            return Err("--iters must be positive".into());
        }
        let report = youtiao::bench::repair_perf::run(&config);
        return write_bench_report(flags, &report, || report.render());
    }

    let mut config = PerfConfig::default();
    if let Some(sizes) = sizes {
        config.sizes = sizes;
    }
    match flags.get("layouts") {
        None => {}
        Some(Some(list)) => {
            config.layouts = list
                .split(',')
                .map(Layout::parse)
                .collect::<Result<_, _>>()?;
            // An explicit layout list replaces the default grids unless
            // --sizes asked for both.
            if !flags.contains_key("sizes") {
                config.sizes.clear();
            }
        }
        Some(None) => {
            return Err(
                "--layouts expects a comma-separated list (e.g. grid:12,surface:5,heavy-hex:3x4)"
                    .into(),
            )
        }
    }
    config.iterations = get_usize(flags, "iters", config.iterations)?;
    if config.iterations == 0 {
        return Err("--iters must be positive".into());
    }
    config.plan_threads = get_usize(flags, "plan-threads", config.plan_threads)?.max(1);

    let report = youtiao::bench::perf::run(&config);
    write_bench_report(flags, &report, || report.render())
}

/// Writes a bench report to `--out` (when given) and prints either the
/// JSON (`--json`) or the rendered table to stderr.
fn write_bench_report(
    flags: &HashMap<String, Option<String>>,
    report: &impl serde::Serialize,
    render: impl FnOnce() -> String,
) -> Result<(), String> {
    let json = serde_json::to_string_pretty(report).map_err(|e| e.to_string())?;
    if let Some(Some(path)) = flags.get("out") {
        std::fs::write(path, format!("{json}\n")).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if flags.contains_key("json") {
        println!("{json}");
    } else {
        eprint!("{}", render());
    }
    Ok(())
}

/// Parses `--key value` and boolean `--flag` arguments.
fn parse_flags(args: &[String]) -> Result<HashMap<String, Option<String>>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got `{arg}`"))?;
        let value = args.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
        if value.is_some() {
            i += 2;
        } else {
            i += 1;
        }
        flags.insert(key.to_string(), value);
    }
    Ok(flags)
}

fn get_usize(
    flags: &HashMap<String, Option<String>>,
    key: &str,
    default: usize,
) -> Result<usize, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(Some(v)) => v.parse().map_err(|_| format!("--{key} expects an integer")),
        Some(None) => Err(format!("--{key} expects a value")),
    }
}

fn load_chip(flags: &HashMap<String, Option<String>>) -> Result<Chip, String> {
    if let Some(Some(path)) = flags.get("chip") {
        let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let spec: ChipSpec = serde_json::from_str(&json).map_err(|e| format!("{path}: {e}"))?;
        return spec.to_chip().map_err(|e| e.to_string());
    }
    let topo = flags
        .get("topology")
        .and_then(|v| v.clone())
        .ok_or("missing --topology or --chip")?;
    let rows = get_usize(flags, "rows", 3)?;
    let cols = get_usize(flags, "cols", 3)?;
    let size = get_usize(flags, "size", 16)?;
    let chip = match topo.as_str() {
        "square" => topology::square_grid(rows, cols),
        "heavy-square" => topology::heavy_square(rows, cols),
        "hexagon" => topology::hexagon_patch(rows, cols),
        "heavy-hexagon" => topology::heavy_hexagon(rows, cols),
        "low-density" => topology::low_density(rows, cols.max(2)),
        "sycamore" => topology::sycamore(rows, cols),
        "linear" => topology::linear(size),
        "ring" => topology::ring(size.max(3)),
        "ibm-heavy-hex" => topology::ibm_heavy_hex(size.max(12)),
        "surface" => {
            let d = get_usize(flags, "distance", 3)?;
            if d < 3 || d % 2 == 0 {
                return Err("--distance must be odd and >= 3".into());
            }
            SurfaceCode::rotated(d).into_chip()
        }
        other => return Err(format!("unknown topology `{other}`")),
    };
    Ok(chip)
}

fn planner_config(flags: &HashMap<String, Option<String>>) -> Result<PlannerConfig, String> {
    let mut config = PlannerConfig::default();
    if let Some(Some(theta)) = flags.get("theta") {
        config.tdm.theta = theta.parse().map_err(|_| "--theta expects a number")?;
    }
    config.fdm_capacity = get_usize(flags, "fdm-capacity", config.fdm_capacity)?;
    config.tdm.allow_one_to_eight = flags.contains_key("one-to-eight");
    // Plans are byte-identical at any thread count, so this is purely
    // a latency knob (0 = one thread per core).
    config.plan_threads = get_usize(flags, "plan-threads", config.plan_threads)?;
    Ok(config)
}

/// The `plan --chiplets N` path: tiles the loaded chip into the
/// near-square multi-die array, plans every die, reconciles cross-die
/// links, optionally partitions a shared coax budget, and prints the
/// combined cryostat-level summary (pretty JSON with `--json` — the
/// byte-comparable form used to check plan-thread determinism).
fn run_plan_multi(
    template: &Chip,
    config: PlannerConfig,
    flags: &HashMap<String, Option<String>>,
) -> Result<(), String> {
    let chiplets = get_usize(flags, "chiplets", 1)?;
    if chiplets == 0 {
        return Err("--chiplets must be positive".into());
    }
    let name = match flags.get("link-topology") {
        None => "grid",
        Some(Some(v)) => v.as_str(),
        Some(None) => return Err("--link-topology expects a value".into()),
    };
    let link = LinkTopology::parse(name)
        .ok_or_else(|| format!("unknown link topology `{name}` (grid, torus or isolated)"))?;
    let budget = match flags.get("coax-budget") {
        None => None,
        Some(Some(v)) => Some(CryostatBudget {
            coax_lines: v.parse().map_err(|_| "--coax-budget expects an integer")?,
        }),
        Some(None) => return Err("--coax-budget expects a value".into()),
    };
    let (rows, cols) = near_square(chiplets);
    let mdc = MultiDieChip::tile(template, rows, cols, link).map_err(|e| e.to_string())?;
    let options = MultiDesignOptions {
        planner: config,
        use_model: false,
        budget,
        validate: flags.contains_key("validate"),
        ..Default::default()
    };
    let report = design_multi_chip(&mdc, &options).map_err(|e| e.to_string())?;
    let summary = report.summary(&mdc);
    if flags.contains_key("json") {
        let json = serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?;
        println!("{json}");
        return Ok(());
    }
    println!("{mdc}");
    let reconcile = &report.outcome.reconcile;
    println!(
        "cross-die links: {} band pairs checked, {} frequency swaps, {} unresolved",
        reconcile.checked, reconcile.swapped, reconcile.unresolved
    );
    if let Some(partition) = &report.outcome.partition {
        let per_die: Vec<String> = partition
            .required
            .iter()
            .zip(&partition.allowances)
            .map(|(used, allowed)| format!("{used}/{allowed}"))
            .collect();
        println!(
            "coax budget {} split across dies (used/allowed): {}",
            partition.total,
            per_die.join(" ")
        );
    }
    print_plan_lines(&summary.plan);
    println!(
        "\ncoax total: dedicated {} vs YOUTIAO {} ({:.2}x)",
        report.dedicated.coax_lines(),
        report.multiplexed.coax_lines(),
        report.coax_reduction()
    );
    Ok(())
}

fn print_plan(chip: &Chip, summary: &PlanSummary) {
    println!("{chip}");
    print_plan_lines(summary);
}

/// The XY/Z/readout/DEMUX sections shared by the single-die and
/// multi-die `plan` renderings (multi-die summaries arrive already
/// renumbered into the cryostat-global id space).
fn print_plan_lines(summary: &PlanSummary) {
    println!("\nXY lines ({}):", summary.xy_lines.len());
    for (i, line) in summary.xy_lines.iter().enumerate() {
        let cells: Vec<String> = line
            .qubits
            .iter()
            .zip(&line.frequencies_ghz)
            .map(|(q, f)| format!("q{q}@{f:.2}"))
            .collect();
        println!("  xy{i}: {}", cells.join(" "));
    }
    println!("\nZ lines ({}):", summary.z_lines.len());
    for (i, group) in summary.z_lines.iter().enumerate() {
        println!("  z{i} [{}]: {}", group.demux, group.devices.join(" "));
    }
    println!("\nreadout feedlines ({}):", summary.readout_lines.len());
    for (i, line) in summary.readout_lines.iter().enumerate() {
        let cells: Vec<String> = line
            .qubits
            .iter()
            .zip(&line.frequencies_ghz)
            .map(|(q, f)| format!("q{q}@{f:.2}"))
            .collect();
        println!("  ro{i}: {}", cells.join(" "));
    }
    println!("\nDEMUX select lines: {}", summary.demux_select_lines);
}
