//! One-call design flow: characterize → plan → route → cost.
//!
//! [`design_chip`] runs the full YOUTIAO pipeline on a chip and returns
//! everything a hardware team reviews in one report: the wiring plan,
//! both cost tallies, and the chip-level routing result.

use youtiao_chip::Chip;
use youtiao_core::tdm::ActivityProfile;
use youtiao_core::{
    PlanContext, PlanError, PlanSummary, PlannerConfig, WiringPlan, YoutiaoPlanner,
};
use youtiao_cost::WiringTally;
use youtiao_noise::data::{synthesize, CrosstalkKind, SynthConfig};
use youtiao_noise::fit::{fit_crosstalk_model, FitConfig};
use youtiao_noise::CrosstalkModel;
use youtiao_obs::validate::{
    check_plan, check_plan_with_activity, check_routing, ValidationReport,
};
use youtiao_obs::Tracer;
use youtiao_route::channel::{channel_route, ChannelConfig, ChannelResult};
use youtiao_route::router::{NetSpec, RouteError};
use youtiao_serve::CancelToken;

/// Options for [`design_chip`].
#[derive(Debug, Clone)]
pub struct DesignOptions {
    /// Planner configuration (FDM capacity, θ, partitioning, …).
    pub planner: PlannerConfig,
    /// Seed for synthetic crosstalk characterization (substitute for
    /// measured chip data).
    pub seed: u64,
    /// Route the chip level too (skipped when `None`).
    pub routing: Option<ChannelConfig>,
    /// Check every plan invariant after the pipeline and fail with
    /// [`DesignError::Validation`] on a violation. Debug builds run the
    /// checks regardless (asserting instead of erroring), so the test
    /// suite exercises the validator on every flow run.
    pub validate: bool,
}

impl Default for DesignOptions {
    fn default() -> Self {
        DesignOptions {
            planner: PlannerConfig::default(),
            seed: 0x594F_5554,
            routing: Some(ChannelConfig {
                margin_mm: 5.0,
                ..Default::default()
            }),
            validate: false,
        }
    }
}

/// The output of [`design_chip`].
#[derive(Debug, Clone)]
pub struct DesignReport {
    /// The fitted crosstalk model used for grouping and allocation.
    pub model: CrosstalkModel,
    /// The plan context (matrices + pair kernels) the plan was built
    /// from — what the serve layer's warm repair path starts from.
    pub context: PlanContext,
    /// The YOUTIAO wiring plan.
    pub plan: WiringPlan,
    /// Resource tally under dedicated (Google-style) wiring.
    pub dedicated: WiringTally,
    /// Resource tally under the YOUTIAO plan.
    pub multiplexed: WiringTally,
    /// Chip-level routing of the multiplexed netlist, when requested.
    pub routing: Option<ChannelResult>,
}

impl DesignReport {
    /// Wiring-cost reduction factor (dedicated / multiplexed).
    pub fn cost_reduction(&self) -> f64 {
        self.dedicated.cost_kusd() / self.multiplexed.cost_kusd()
    }

    /// Coax-line reduction factor.
    pub fn coax_reduction(&self) -> f64 {
        self.dedicated.coax_lines() as f64 / self.multiplexed.coax_lines() as f64
    }

    /// The serializable face of the report (what batch output and the
    /// CLI `--json` path share).
    pub fn summary(&self) -> ReportSummary {
        ReportSummary {
            plan: PlanSummary::from_plan(&self.plan),
            dedicated: self.dedicated,
            multiplexed: self.multiplexed,
            cost_reduction: self.cost_reduction(),
            coax_reduction: self.coax_reduction(),
            routing: self.routing.as_ref().map(RoutingSummary::from_result),
        }
    }
}

/// Serializing a [`DesignReport`] emits its [`summary`](DesignReport::summary).
impl serde::Serialize for DesignReport {
    fn to_value(&self) -> serde::Value {
        self.summary().to_value()
    }
}

/// Chip-level routing summary of a [`ChannelResult`]: the scalar
/// figures a sweep compares, without per-net geometry.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RoutingSummary {
    /// Nets routed.
    pub nets: usize,
    /// Total metal length, millimetres.
    pub total_length_mm: f64,
    /// Routing area (length × pitch), mm².
    pub routing_area_mm2: f64,
    /// Perimeter interface pads consumed.
    pub num_interfaces: usize,
    /// Horizontal routing channels used.
    pub channels: usize,
    /// Peak channel occupancy as a fraction of track capacity.
    pub max_channel_utilization: f64,
}

impl RoutingSummary {
    /// Extracts the summary from a routed layout.
    pub fn from_result(result: &ChannelResult) -> Self {
        RoutingSummary {
            nets: result.routing.nets.len(),
            total_length_mm: result.routing.total_length_mm,
            routing_area_mm2: result.routing.routing_area_mm2,
            num_interfaces: result.routing.num_interfaces,
            channels: result.channels.iter().filter(|c| c.used > 0).count(),
            max_channel_utilization: result
                .channels
                .iter()
                .filter(|c| c.capacity > 0)
                .map(|c| c.used as f64 / c.capacity as f64)
                .fold(0.0, f64::max),
        }
    }
}

/// The serializable summary of a [`DesignReport`]: wiring plan, both
/// cost tallies, reduction factors, and the routing figures. This is
/// the `result` payload of every `youtiao batch` output record.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReportSummary {
    /// The wiring plan (line memberships, frequencies, DEMUX levels).
    pub plan: PlanSummary,
    /// Resource tally under dedicated (Google-style) wiring.
    pub dedicated: WiringTally,
    /// Resource tally under the YOUTIAO plan.
    pub multiplexed: WiringTally,
    /// Wiring-cost reduction factor (dedicated / multiplexed).
    pub cost_reduction: f64,
    /// Coax-line reduction factor.
    pub coax_reduction: f64,
    /// Chip-level routing summary, when routing ran.
    pub routing: Option<RoutingSummary>,
}

/// Errors from [`design_chip`].
#[derive(Debug)]
#[non_exhaustive]
pub enum DesignError {
    /// Planning failed.
    Plan(PlanError),
    /// Chip-level routing failed.
    Route(RouteError),
    /// The pipeline stopped at a stage boundary because its
    /// [`CancelToken`] tripped (deadline expiry or explicit abort).
    Cancelled {
        /// The stage that was about to run.
        stage: &'static str,
    },
    /// The finished plan violated a wiring invariant (only produced
    /// when [`DesignOptions::validate`] is set).
    Validation(ValidationReport),
    /// Admission control refused the request before it ran: its
    /// deadline was infeasible at the serving layer's queue depth
    /// (daemon sessions under load shedding).
    Shed {
        /// Why admission refused the request.
        reason: String,
    },
}

impl DesignError {
    /// Whether re-running with a perturbed characterization seed may
    /// plausibly succeed. Frequency crowding and routing overflow
    /// depend on the synthesized crosstalk data and the plan built from
    /// it; config and chip-shape errors recur on every retry.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            DesignError::Plan(PlanError::FrequencyCrowded { .. }) | DesignError::Route(_)
        )
    }
}

impl std::fmt::Display for DesignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesignError::Plan(e) => write!(f, "planning failed: {e}"),
            DesignError::Route(e) => write!(f, "routing failed: {e}"),
            DesignError::Cancelled { stage } => write!(f, "cancelled before the {stage} stage"),
            DesignError::Validation(report) => {
                write!(f, "plan validation failed: {}", report.render())
            }
            DesignError::Shed { reason } => {
                write!(f, "request shed by admission control: {reason}")
            }
        }
    }
}

impl std::error::Error for DesignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DesignError::Plan(e) => Some(e),
            DesignError::Route(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanError> for DesignError {
    fn from(e: PlanError) -> Self {
        DesignError::Plan(e)
    }
}

impl From<RouteError> for DesignError {
    fn from(e: RouteError) -> Self {
        DesignError::Route(e)
    }
}

/// Runs the full YOUTIAO design flow on `chip`.
///
/// # Errors
///
/// Returns [`DesignError`] when planning or routing fails.
///
/// # Example
///
/// ```
/// use youtiao::chip::topology;
/// use youtiao::flow::{design_chip, DesignOptions};
///
/// let chip = topology::heavy_square(3, 3);
/// let report = design_chip(&chip, &DesignOptions::default())?;
/// assert!(report.cost_reduction() > 2.0);
/// assert!(report.routing.is_some());
/// # Ok::<(), youtiao::flow::DesignError>(())
/// ```
pub fn design_chip(chip: &Chip, options: &DesignOptions) -> Result<DesignReport, DesignError> {
    design_chip_with_cancel(chip, options, &CancelToken::new())
}

/// [`design_chip`] with cooperative cancellation: `cancel` is polled at
/// every stage boundary, so a tripped token (deadline expiry, service
/// abort) stops the pipeline within one stage instead of running the
/// flow to completion.
///
/// # Errors
///
/// Returns [`DesignError`] when planning or routing fails, or
/// [`DesignError::Cancelled`] naming the stage that was skipped.
pub fn design_chip_with_cancel(
    chip: &Chip,
    options: &DesignOptions,
    cancel: &CancelToken,
) -> Result<DesignReport, DesignError> {
    design_chip_traced(chip, options, cancel, &Tracer::disabled())
}

/// [`design_chip_with_cancel`] with stage-level tracing: every pipeline
/// stage opens a span on `tracer` (with the planner's sub-stages
/// grafted as children of the `plan` span), so a finished trace shows
/// where a job's wall time went. Pass [`Tracer::disabled`] to trace
/// nothing at zero cost.
///
/// # Errors
///
/// Same as [`design_chip_with_cancel`], plus
/// [`DesignError::Validation`] when [`DesignOptions::validate`] is set
/// and the finished plan violates a wiring invariant.
pub fn design_chip_traced(
    chip: &Chip,
    options: &DesignOptions,
    cancel: &CancelToken,
    tracer: &Tracer,
) -> Result<DesignReport, DesignError> {
    let checkpoint = |stage: &'static str| {
        cancel
            .checkpoint()
            .map_err(|_| DesignError::Cancelled { stage })
    };

    // 1. Characterize: synthesize measurements and fit the model.
    checkpoint("characterize")?;
    let model = {
        let span = tracer.span("characterize");
        let samples = synthesize(chip, CrosstalkKind::Xy, &SynthConfig::xy(), options.seed);
        span.annotate("samples", samples.len() as u64);
        fit_crosstalk_model(&samples, &FitConfig::paper()).expect("synthesized data always fits")
    };

    // 2. Plan. The matrices are built as a shared-ready PlanContext
    // (what a sweep reuses across points); the planner then skips its
    // internal matrices stage, so the "matrices" sub-span is recorded
    // here from the context build instead of via the plan hook.
    checkpoint("plan")?;
    let (context, plan) = {
        let span = tracer.span("plan");
        let started = std::time::Instant::now();
        let context = PlanContext::build(chip, Some(&model), options.planner.weights);
        tracer.record("matrices", started.elapsed());
        let plan = YoutiaoPlanner::new(chip)
            .with_crosstalk_model(&model)
            .with_config(options.planner.clone())
            .with_context(&context)
            .plan_with_hook(&mut |stage, elapsed| tracer.record(stage, elapsed))?;
        span.annotate("xy_lines", plan.num_xy_lines() as u64);
        span.annotate("z_lines", plan.num_z_lines() as u64);
        span.annotate("readout_lines", plan.num_readout_lines() as u64);
        (context, plan)
    };

    complete_plan_traced(chip, model, context, plan, options, None, cancel, tracer)
}

/// The back half of the design flow: cost tally, chip-level routing,
/// and validation over an already-built plan. [`design_chip_traced`]
/// calls this after planning; the serve layer's warm repair path calls
/// it directly over a *repaired* plan (skipping characterize + plan
/// entirely), passing the post-delta activity profile so validation
/// judges the plan against the inputs it was actually repaired for —
/// `None` validates against the default brickwork schedule.
///
/// # Errors
///
/// Returns [`DesignError`] when routing fails, the token trips at a
/// stage boundary, or (with [`DesignOptions::validate`]) the plan
/// violates a wiring invariant.
#[allow(clippy::too_many_arguments)]
pub fn complete_plan_traced(
    chip: &Chip,
    model: CrosstalkModel,
    context: PlanContext,
    plan: WiringPlan,
    options: &DesignOptions,
    activity: Option<&ActivityProfile>,
    cancel: &CancelToken,
    tracer: &Tracer,
) -> Result<DesignReport, DesignError> {
    let checkpoint = |stage: &'static str| {
        cancel
            .checkpoint()
            .map_err(|_| DesignError::Cancelled { stage })
    };

    // 3. Tally.
    checkpoint("cost")?;
    let (dedicated, multiplexed) = {
        let _span = tracer.span("cost");
        (WiringTally::google(chip), WiringTally::youtiao(&plan))
    };

    // 4. Route the multiplexed netlist at chip level.
    let routing = match &options.routing {
        Some(config) => {
            checkpoint("route")?;
            let span = tracer.span("route");
            let nets = plan_nets(chip, &plan);
            span.annotate("nets", nets.len() as u64);
            let result = channel_route(chip, &nets, config)?;
            span.annotate("total_length_mm", result.routing.total_length_mm);
            Some(result)
        }
        None => None,
    };

    // 5. Validate: on request it is a first-class stage with a
    // structured error; in debug builds it always runs so every test
    // that exercises the flow also exercises the invariants.
    if options.validate || cfg!(debug_assertions) {
        let span = tracer.span("validate");
        let mut report = match activity {
            Some(activity) => check_plan_with_activity(chip, &plan, &options.planner, activity),
            None => check_plan(chip, &plan, &options.planner),
        };
        if let Some(result) = &routing {
            report.merge(check_routing(&plan, result));
        }
        span.annotate("violations", report.len() as u64);
        if !report.is_clean() {
            if options.validate {
                return Err(DesignError::Validation(report));
            }
            // Reaching this without --validate means a pipeline stage
            // broke an invariant the flow is supposed to preserve.
            debug_assert!(false, "plan invariants violated: {}", report.render());
        }
    }

    Ok(DesignReport {
        model,
        context,
        plan,
        dedicated,
        multiplexed,
        routing,
    })
}

/// Net list for a plan: chained FDM lines, chained TDM groups, readout
/// feedlines (select lines excluded — they route on the DC layer).
fn plan_nets(chip: &Chip, plan: &WiringPlan) -> Vec<NetSpec> {
    let qubit_pos = |q: youtiao_chip::QubitId| chip.qubit(q).expect("in range").position();
    let mut nets = Vec::new();
    for (i, line) in plan.fdm_lines().iter().enumerate() {
        nets.push(NetSpec::chain(
            format!("xy{i}"),
            line.qubits().iter().map(|&q| qubit_pos(q)).collect(),
        ));
    }
    for (i, group) in plan.tdm_groups().iter().enumerate() {
        nets.push(NetSpec::chain(
            format!("z{i}"),
            group
                .devices()
                .iter()
                .map(|&d| chip.device_position(d))
                .collect(),
        ));
    }
    for (i, line) in plan.readout_lines().iter().enumerate() {
        nets.push(NetSpec::chain(
            format!("ro{i}"),
            line.iter().map(|&q| qubit_pos(q)).collect(),
        ));
    }
    nets
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtiao_chip::topology;

    #[test]
    fn design_flow_end_to_end() {
        let chip = topology::square_grid(4, 4);
        let report = design_chip(&chip, &DesignOptions::default()).unwrap();
        assert!(report.coax_reduction() > 2.0);
        assert!(report.cost_reduction() > 1.5);
        let routing = report.routing.unwrap();
        assert_eq!(
            routing.routing.nets.len(),
            report.plan.num_xy_lines()
                + report.plan.num_z_lines()
                + report.plan.num_readout_lines()
        );
    }

    #[test]
    fn routing_can_be_skipped() {
        let chip = topology::linear(6);
        let options = DesignOptions {
            routing: None,
            ..Default::default()
        };
        let report = design_chip(&chip, &options).unwrap();
        assert!(report.routing.is_none());
        assert!(report.multiplexed.coax_lines() < report.dedicated.coax_lines());
    }

    #[test]
    fn errors_are_displayed() {
        let e = DesignError::Plan(PlanError::EmptyChip);
        assert!(e.to_string().contains("planning failed"));
    }

    #[test]
    fn error_sources_and_transience_classify() {
        use std::error::Error;
        let plan = DesignError::Plan(PlanError::EmptyChip);
        assert!(plan.source().is_some());
        assert!(!plan.is_transient());
        let crowded = DesignError::Plan(PlanError::FrequencyCrowded { qubit: 0u32.into() });
        assert!(crowded.is_transient());
        let route = DesignError::Route(youtiao_route::router::RouteError::OutOfInterfaces);
        assert!(route.source().is_some());
        assert!(route.is_transient());
        let cancelled = DesignError::Cancelled { stage: "plan" };
        assert!(cancelled.source().is_none());
        assert!(!cancelled.is_transient());
        assert!(cancelled.to_string().contains("plan"));
    }

    #[test]
    fn cancelled_token_stops_before_first_stage() {
        let chip = topology::square_grid(3, 3);
        let token = CancelToken::new();
        token.cancel();
        let err = design_chip_with_cancel(&chip, &DesignOptions::default(), &token).unwrap_err();
        assert!(matches!(
            err,
            DesignError::Cancelled {
                stage: "characterize"
            }
        ));
    }

    #[test]
    fn traced_flow_records_one_span_per_stage() {
        let chip = topology::square_grid(4, 4);
        let tracer = Tracer::new("flow-test");
        let options = DesignOptions {
            validate: true,
            ..Default::default()
        };
        let report = design_chip_traced(&chip, &options, &CancelToken::new(), &tracer).unwrap();
        assert!(report.routing.is_some());

        let trace = tracer.finish();
        let top: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(top, ["characterize", "plan", "cost", "route", "validate"]);

        // The planner's sub-stages are children of the plan span.
        let plan_span = trace.find("plan").unwrap();
        // No "freq.kernels" here: the context supplies the freq kernels,
        // so the planner never opens that sub-span on this path.
        for sub in [
            "matrices",
            "fdm_grouping",
            "tdm_grouping",
            "freq.place",
            "freq.swap",
            "freq_alloc",
            "readout.place",
            "readout.swap",
            "readout",
        ] {
            assert!(plan_span.find(sub).is_some(), "missing sub-stage {sub}");
        }
        assert_eq!(
            plan_span.annotations["z_lines"],
            report.plan.num_z_lines() as u64
        );
        assert_eq!(
            trace.find("validate").unwrap().annotations["violations"],
            0u64
        );

        // Stage durations account for (approximately all of) the job's
        // wall time: nothing substantial runs outside a span.
        let stage_sum: f64 = trace.spans.iter().map(|s| s.ms).sum();
        assert!(stage_sum <= trace.total_ms + 1e-6);
        assert!(
            stage_sum >= 0.8 * trace.total_ms,
            "spans cover {stage_sum} of {} ms",
            trace.total_ms
        );
    }

    #[test]
    fn untraced_flow_is_unchanged() {
        let chip = topology::square_grid(3, 3);
        let options = DesignOptions {
            validate: true,
            ..Default::default()
        };
        assert!(design_chip(&chip, &options).is_ok());
    }

    #[test]
    fn validation_error_renders_and_classifies() {
        let mut report = ValidationReport::default();
        report.push("tdm-budget", "group 0 over budget".to_string());
        let e = DesignError::Validation(report);
        assert!(!e.is_transient());
        assert!(e.to_string().contains("tdm-budget"));
        use std::error::Error;
        assert!(e.source().is_none());
    }

    #[test]
    fn report_serializes_as_its_summary() {
        let chip = topology::square_grid(3, 3);
        let report = design_chip(&chip, &DesignOptions::default()).unwrap();
        let summary = report.summary();
        assert_eq!(summary.plan.total_qubits, 9);
        assert!(summary.cost_reduction > 1.5);
        let routing = summary.routing.as_ref().unwrap();
        assert!(routing.total_length_mm > 0.0);
        assert!(routing.max_channel_utilization > 0.0);
        assert!(routing.max_channel_utilization <= 1.0);

        let direct = serde_json::to_string(&report).unwrap();
        let via_summary = serde_json::to_string(&summary).unwrap();
        assert_eq!(direct, via_summary);
        let back: ReportSummary = serde_json::from_str(&direct).unwrap();
        assert_eq!(back, summary);
    }
}
