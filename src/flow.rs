//! One-call design flow: characterize → plan → route → cost.
//!
//! [`design_chip`] runs the full YOUTIAO pipeline on a chip and returns
//! everything a hardware team reviews in one report: the wiring plan,
//! both cost tallies, and the chip-level routing result.

use youtiao_chip::Chip;
use youtiao_core::{PlanError, PlannerConfig, WiringPlan, YoutiaoPlanner};
use youtiao_cost::WiringTally;
use youtiao_noise::data::{synthesize, CrosstalkKind, SynthConfig};
use youtiao_noise::fit::{fit_crosstalk_model, FitConfig};
use youtiao_noise::CrosstalkModel;
use youtiao_route::channel::{channel_route, ChannelConfig, ChannelResult};
use youtiao_route::router::{NetSpec, RouteError};

/// Options for [`design_chip`].
#[derive(Debug, Clone)]
pub struct DesignOptions {
    /// Planner configuration (FDM capacity, θ, partitioning, …).
    pub planner: PlannerConfig,
    /// Seed for synthetic crosstalk characterization (substitute for
    /// measured chip data).
    pub seed: u64,
    /// Route the chip level too (skipped when `None`).
    pub routing: Option<ChannelConfig>,
}

impl Default for DesignOptions {
    fn default() -> Self {
        DesignOptions {
            planner: PlannerConfig::default(),
            seed: 0x594F_5554,
            routing: Some(ChannelConfig {
                margin_mm: 5.0,
                ..Default::default()
            }),
        }
    }
}

/// The output of [`design_chip`].
#[derive(Debug, Clone)]
pub struct DesignReport {
    /// The fitted crosstalk model used for grouping and allocation.
    pub model: CrosstalkModel,
    /// The YOUTIAO wiring plan.
    pub plan: WiringPlan,
    /// Resource tally under dedicated (Google-style) wiring.
    pub dedicated: WiringTally,
    /// Resource tally under the YOUTIAO plan.
    pub multiplexed: WiringTally,
    /// Chip-level routing of the multiplexed netlist, when requested.
    pub routing: Option<ChannelResult>,
}

impl DesignReport {
    /// Wiring-cost reduction factor (dedicated / multiplexed).
    pub fn cost_reduction(&self) -> f64 {
        self.dedicated.cost_kusd() / self.multiplexed.cost_kusd()
    }

    /// Coax-line reduction factor.
    pub fn coax_reduction(&self) -> f64 {
        self.dedicated.coax_lines() as f64 / self.multiplexed.coax_lines() as f64
    }
}

/// Errors from [`design_chip`].
#[derive(Debug)]
pub enum DesignError {
    /// Planning failed.
    Plan(PlanError),
    /// Chip-level routing failed.
    Route(RouteError),
}

impl std::fmt::Display for DesignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesignError::Plan(e) => write!(f, "planning failed: {e}"),
            DesignError::Route(e) => write!(f, "routing failed: {e}"),
        }
    }
}

impl std::error::Error for DesignError {}

impl From<PlanError> for DesignError {
    fn from(e: PlanError) -> Self {
        DesignError::Plan(e)
    }
}

impl From<RouteError> for DesignError {
    fn from(e: RouteError) -> Self {
        DesignError::Route(e)
    }
}

/// Runs the full YOUTIAO design flow on `chip`.
///
/// # Errors
///
/// Returns [`DesignError`] when planning or routing fails.
///
/// # Example
///
/// ```
/// use youtiao::chip::topology;
/// use youtiao::flow::{design_chip, DesignOptions};
///
/// let chip = topology::heavy_square(3, 3);
/// let report = design_chip(&chip, &DesignOptions::default())?;
/// assert!(report.cost_reduction() > 2.0);
/// assert!(report.routing.is_some());
/// # Ok::<(), youtiao::flow::DesignError>(())
/// ```
pub fn design_chip(chip: &Chip, options: &DesignOptions) -> Result<DesignReport, DesignError> {
    // 1. Characterize: synthesize measurements and fit the model.
    let samples = synthesize(chip, CrosstalkKind::Xy, &SynthConfig::xy(), options.seed);
    let model =
        fit_crosstalk_model(&samples, &FitConfig::paper()).expect("synthesized data always fits");

    // 2. Plan.
    let plan = YoutiaoPlanner::new(chip)
        .with_crosstalk_model(&model)
        .with_config(options.planner.clone())
        .plan()?;

    // 3. Tally.
    let dedicated = WiringTally::google(chip);
    let multiplexed = WiringTally::youtiao(&plan);

    // 4. Route the multiplexed netlist at chip level.
    let routing = match &options.routing {
        Some(config) => {
            let nets = plan_nets(chip, &plan);
            Some(channel_route(chip, &nets, config)?)
        }
        None => None,
    };

    Ok(DesignReport {
        model,
        plan,
        dedicated,
        multiplexed,
        routing,
    })
}

/// Net list for a plan: chained FDM lines, chained TDM groups, readout
/// feedlines (select lines excluded — they route on the DC layer).
fn plan_nets(chip: &Chip, plan: &WiringPlan) -> Vec<NetSpec> {
    let qubit_pos = |q: youtiao_chip::QubitId| chip.qubit(q).expect("in range").position();
    let mut nets = Vec::new();
    for (i, line) in plan.fdm_lines().iter().enumerate() {
        nets.push(NetSpec::chain(
            format!("xy{i}"),
            line.qubits().iter().map(|&q| qubit_pos(q)).collect(),
        ));
    }
    for (i, group) in plan.tdm_groups().iter().enumerate() {
        nets.push(NetSpec::chain(
            format!("z{i}"),
            group
                .devices()
                .iter()
                .map(|&d| chip.device_position(d))
                .collect(),
        ));
    }
    for (i, line) in plan.readout_lines().iter().enumerate() {
        nets.push(NetSpec::chain(
            format!("ro{i}"),
            line.iter().map(|&q| qubit_pos(q)).collect(),
        ));
    }
    nets
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtiao_chip::topology;

    #[test]
    fn design_flow_end_to_end() {
        let chip = topology::square_grid(4, 4);
        let report = design_chip(&chip, &DesignOptions::default()).unwrap();
        assert!(report.coax_reduction() > 2.0);
        assert!(report.cost_reduction() > 1.5);
        let routing = report.routing.unwrap();
        assert_eq!(
            routing.routing.nets.len(),
            report.plan.num_xy_lines()
                + report.plan.num_z_lines()
                + report.plan.num_readout_lines()
        );
    }

    #[test]
    fn routing_can_be_skipped() {
        let chip = topology::linear(6);
        let options = DesignOptions {
            routing: None,
            ..Default::default()
        };
        let report = design_chip(&chip, &options).unwrap();
        assert!(report.routing.is_none());
        assert!(report.multiplexed.coax_lines() < report.dedicated.coax_lines());
    }

    #[test]
    fn errors_are_displayed() {
        let e = DesignError::Plan(PlanError::EmptyChip);
        assert!(e.to_string().contains("planning failed"));
    }
}
