//! # YOUTIAO — hybrid multiplexing with dynamic qubit grouping
//!
//! Facade crate re-exporting the full YOUTIAO workspace: a reproduction of
//! *"YOUTIAO: Hybrid Multiplexing with Dynamic Qubit Grouping for Low-cost
//! and Scalable Quantum Wiring"* (MICRO 2025).
//!
//! YOUTIAO reduces superconducting quantum wiring cost by sharing control
//! lines: frequency-division multiplexing (FDM) on XY/readout lines and
//! time-division multiplexing (TDM) on Z lines, with noise-aware qubit
//! grouping so that fidelity and circuit depth barely degrade.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`chip`] | `youtiao-chip` | device model, topologies, distances, surface codes |
//! | [`noise`] | `youtiao-noise` | crosstalk data, random forest, model fitting |
//! | [`circuit`] | `youtiao-circuit` | circuit IR, benchmarks, scheduling, fidelity |
//! | [`pulse`] | `youtiao-pulse` | pulse-level gate simulation |
//! | [`route`] | `youtiao-route` | grid A* + channel on-chip routers with DRC |
//! | [`sim`] | `youtiao-sim` | state-vector simulation with Monte-Carlo noise |
//! | [`cost`] | `youtiao-cost` | wiring/cost accounting and scaling estimates |
//! | [`core`] | `youtiao-core` | FDM/TDM grouping, frequency allocation, partitioning |
//! | [`repair`] | `youtiao-repair` | incremental plan repair: input diffing, kernel invalidation, local regroup |
//! | [`serve`] | `youtiao-serve` | batch design service: worker pool, plan cache, deadlines/retries |
//! | [`xplore`] | `youtiao-xplore` | parallel design-space sweeps, shared planning contexts, Pareto fronts |
//! | [`bench`] | `youtiao-bench` | experiment harnesses, incl. the `bench-plan` perf trajectory |
//! | [`flow`] | (this crate) | one-call characterize → plan → route → cost pipeline |
//! | [`multi`] | (this crate) | multi-die chiplet design flow: per-die plans, budget split, link reconciliation |
//!
//! ## Quickstart
//!
//! ```
//! use youtiao::chip::topology;
//! use youtiao::core::YoutiaoPlanner;
//!
//! let chip = topology::square_grid(6, 6);
//! let plan = YoutiaoPlanner::new(&chip).plan()?;
//! println!(
//!     "XY lines: {}, Z DEMUXes: {}",
//!     plan.fdm_lines().len(),
//!     plan.tdm_groups().len()
//! );
//! # Ok::<(), youtiao::core::PlanError>(())
//! ```

#![forbid(unsafe_code)]

pub mod flow;
pub mod multi;
pub mod serve;

pub use youtiao_bench as bench;
pub use youtiao_chip as chip;
pub use youtiao_circuit as circuit;
pub use youtiao_core as core;
pub use youtiao_cost as cost;
pub use youtiao_noise as noise;
pub use youtiao_pulse as pulse;
pub use youtiao_repair as repair;
pub use youtiao_route as route;
pub use youtiao_sim as sim;
pub use youtiao_xplore as xplore;
