//! One-call multi-die design flow: per-die characterize → plan, budget
//! partitioning, link reconciliation, cross-die validation, and a
//! cryostat-level cost tally.
//!
//! [`design_multi_chip`] is the chiplet-array counterpart of
//! [`design_chip`](crate::flow::design_chip): it plans every die of a
//! [`MultiDieChip`] through [`plan_multi`], validates the stitched plan
//! with [`check_multi_plan`], and sums both wiring tallies across dies
//! (coax counts and electronics are additive over a shared cryostat).
//! Chip-level routing stays per-die and is not run here — each die is
//! routed on its own interposer, so the monolithic flow applied to one
//! die already answers that question.

use youtiao_chip::multi::MultiDieChip;
use youtiao_core::{
    plan_multi, CryostatBudget, MultiPlanConfig, MultiPlanOutcome, ParallelExec, PlanSummary,
    PlannerConfig,
};
use youtiao_cost::WiringTally;
use youtiao_obs::validate::check_multi_plan;

use crate::flow::{DesignError, ReportSummary};

/// Options for [`design_multi_chip`].
#[derive(Debug, Clone)]
pub struct MultiDesignOptions {
    /// Per-die planner configuration (applied identically to every die;
    /// its `plan_threads` also sizes the per-die fan-out pool).
    pub planner: PlannerConfig,
    /// Cryostat-level characterization seed (per-die seeds derive via
    /// [`youtiao_core::die_seed`]).
    pub seed: u64,
    /// Characterize each die before planning; `false` plans
    /// structure-only from equivalent distances.
    pub use_model: bool,
    /// Optional shared cryostat coax budget to partition across dies.
    pub budget: Option<CryostatBudget>,
    /// Check per-die and cross-die invariants and fail with
    /// [`DesignError::Validation`] on a violation. Debug builds run the
    /// checks regardless, asserting instead of erroring.
    pub validate: bool,
}

impl Default for MultiDesignOptions {
    fn default() -> Self {
        MultiDesignOptions {
            planner: PlannerConfig::default(),
            seed: 0x594F_5554,
            use_model: true,
            budget: None,
            validate: false,
        }
    }
}

/// The output of [`design_multi_chip`].
#[derive(Debug, Clone)]
pub struct MultiDieReport {
    /// Per-die plans, the budget split and reconciliation counters.
    pub outcome: MultiPlanOutcome,
    /// Cryostat-level tally under dedicated (Google-style) wiring,
    /// summed over dies.
    pub dedicated: WiringTally,
    /// Cryostat-level tally under the YOUTIAO plans, summed over dies.
    pub multiplexed: WiringTally,
}

impl MultiDieReport {
    /// Wiring-cost reduction factor (dedicated / multiplexed).
    pub fn cost_reduction(&self) -> f64 {
        self.dedicated.cost_kusd() / self.multiplexed.cost_kusd()
    }

    /// Coax-line reduction factor.
    pub fn coax_reduction(&self) -> f64 {
        self.dedicated.coax_lines() as f64 / self.multiplexed.coax_lines() as f64
    }

    /// The serializable face of the report, shaped exactly like a
    /// monolithic [`ReportSummary`]: per-die plan summaries concatenated
    /// under a cryostat-global qubit numbering (die qubit and coupler
    /// ids offset by each die's base), no routing.
    pub fn summary(&self, mdc: &MultiDieChip) -> ReportSummary {
        ReportSummary {
            plan: combined_summary(mdc, &self.outcome),
            dedicated: self.dedicated,
            multiplexed: self.multiplexed,
            cost_reduction: self.cost_reduction(),
            coax_reduction: self.coax_reduction(),
            routing: None,
        }
    }
}

/// Concatenates per-die plan summaries under a global numbering.
fn combined_summary(mdc: &MultiDieChip, outcome: &MultiPlanOutcome) -> PlanSummary {
    let mut combined = PlanSummary {
        total_qubits: 0,
        xy_lines: Vec::new(),
        z_lines: Vec::new(),
        readout_lines: Vec::new(),
        demux_select_lines: 0,
    };
    let mut qubit_base = 0u32;
    let mut coupler_base = 0u32;
    for (chip, die) in mdc.dies().iter().zip(&outcome.dies) {
        let mut s = PlanSummary::from_plan(&die.plan);
        for line in s.xy_lines.iter_mut().chain(s.readout_lines.iter_mut()) {
            for q in &mut line.qubits {
                *q += qubit_base;
            }
        }
        for group in &mut s.z_lines {
            for d in &mut group.devices {
                *d = offset_device(d, qubit_base, coupler_base);
            }
        }
        combined.total_qubits += s.total_qubits;
        combined.xy_lines.extend(s.xy_lines);
        combined.z_lines.extend(s.z_lines);
        combined.readout_lines.extend(s.readout_lines);
        combined.demux_select_lines += s.demux_select_lines;
        qubit_base += chip.num_qubits() as u32;
        coupler_base += chip.num_couplers() as u32;
    }
    combined
}

/// Rewrites a `"q<i>"` / `"c<i>"` device label into the global
/// numbering.
fn offset_device(label: &str, qubit_base: u32, coupler_base: u32) -> String {
    let (prefix, base) = match label.as_bytes().first() {
        Some(b'q') => ('q', qubit_base),
        Some(b'c') => ('c', coupler_base),
        _ => return label.to_string(),
    };
    match label[1..].parse::<u32>() {
        Ok(i) => format!("{prefix}{}", i + base),
        Err(_) => label.to_string(),
    }
}

/// Runs the multi-die design flow on a chiplet array.
///
/// # Errors
///
/// Returns [`DesignError::Plan`] when any die fails to plan, or
/// [`DesignError::Validation`] when validation is requested and the
/// stitched plan violates a per-die or cross-die invariant.
///
/// # Example
///
/// ```
/// use youtiao::chip::multi::{LinkTopology, MultiDieChip};
/// use youtiao::chip::topology;
/// use youtiao::multi::{design_multi_chip, MultiDesignOptions};
///
/// let die = topology::square_grid(4, 4);
/// let array = MultiDieChip::tile(&die, 2, 2, LinkTopology::Grid).unwrap();
/// let report = design_multi_chip(&array, &MultiDesignOptions::default())?;
/// assert_eq!(report.outcome.dies.len(), 4);
/// assert!(report.coax_reduction() > 2.0);
/// # Ok::<(), youtiao::flow::DesignError>(())
/// ```
pub fn design_multi_chip(
    mdc: &MultiDieChip,
    options: &MultiDesignOptions,
) -> Result<MultiDieReport, DesignError> {
    let config = MultiPlanConfig {
        planner: options.planner.clone(),
        use_model: options.use_model,
        seed: options.seed,
        budget: options.budget,
    };
    let exec = ParallelExec::new(options.planner.plan_threads);
    let outcome = plan_multi(mdc, &config, &exec)?;

    if options.validate || cfg!(debug_assertions) {
        let allowances = outcome.partition.as_ref().map(|p| p.allowances.as_slice());
        let report = check_multi_plan(mdc, &outcome.plans(), &options.planner, allowances);
        if !report.is_clean() {
            if options.validate {
                return Err(DesignError::Validation(report));
            }
            debug_assert!(false, "multi-die invariants violated: {}", report.render());
        }
    }

    let dedicated = WiringTally::sum(mdc.dies().iter().map(WiringTally::google));
    let multiplexed = WiringTally::sum(outcome.dies.iter().map(|d| WiringTally::youtiao(&d.plan)));

    Ok(MultiDieReport {
        outcome,
        dedicated,
        multiplexed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{design_chip, DesignOptions};
    use youtiao_chip::multi::LinkTopology;
    use youtiao_chip::topology;

    #[test]
    fn multi_flow_end_to_end() {
        let die = topology::square_grid(4, 4);
        let mdc = MultiDieChip::tile(&die, 2, 2, LinkTopology::Grid).unwrap();
        let options = MultiDesignOptions {
            validate: true,
            ..Default::default()
        };
        let report = design_multi_chip(&mdc, &options).unwrap();
        assert_eq!(report.outcome.dies.len(), 4);
        assert!(report.coax_reduction() > 2.0);
        assert!(report.cost_reduction() > 1.5);
    }

    #[test]
    fn single_die_matches_monolithic_flow() {
        let die = topology::square_grid(4, 4);
        let mdc = MultiDieChip::tile(&die, 1, 1, LinkTopology::Grid).unwrap();
        let multi = design_multi_chip(&mdc, &MultiDesignOptions::default()).unwrap();
        let mono = design_chip(
            &die,
            &DesignOptions {
                routing: None,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(multi.outcome.dies[0].plan, mono.plan);
        assert_eq!(multi.dedicated, mono.dedicated);
        assert_eq!(multi.multiplexed, mono.multiplexed);
    }

    #[test]
    fn combined_summary_uses_global_numbering() {
        let die = topology::square_grid(3, 3);
        let mdc = MultiDieChip::tile(&die, 1, 2, LinkTopology::Grid).unwrap();
        let report = design_multi_chip(&mdc, &MultiDesignOptions::default()).unwrap();
        let summary = report.summary(&mdc);
        assert_eq!(summary.plan.total_qubits, 18);
        let mut seen: Vec<u32> = summary
            .plan
            .xy_lines
            .iter()
            .flat_map(|l| l.qubits.iter().copied())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..18).collect::<Vec<u32>>());
        // Die 1's devices reference the second die's id range.
        assert!(summary
            .plan
            .z_lines
            .iter()
            .flat_map(|g| g.devices.iter())
            .any(|d| d == "q9"));
        assert!(summary.routing.is_none());
    }

    #[test]
    fn infeasible_budget_fails_validation() {
        let die = topology::square_grid(3, 3);
        let mdc = MultiDieChip::tile(&die, 1, 2, LinkTopology::Isolated).unwrap();
        let options = MultiDesignOptions {
            budget: Some(CryostatBudget { coax_lines: 2 }),
            validate: true,
            ..Default::default()
        };
        match design_multi_chip(&mdc, &options) {
            Err(DesignError::Validation(report)) => {
                assert!(report.violations.iter().any(|v| v.rule == "die-budget"));
            }
            other => panic!("expected a die-budget validation error, got {other:?}"),
        }
    }

    #[test]
    fn offset_device_handles_both_kinds() {
        assert_eq!(offset_device("q3", 10, 20), "q13");
        assert_eq!(offset_device("c3", 10, 20), "c23");
        assert_eq!(offset_device("x3", 10, 20), "x3");
    }
}
