//! The serving layer, wired to the design flow.
//!
//! `youtiao-serve` is pipeline-agnostic (any executor, any result
//! type); this module instantiates it with the real thing:
//! [`design_executor`] runs [`design_chip_with_cancel`] for a
//! [`DesignRequest`], classifying [`DesignError`]s into the pool's
//! transient/permanent retry taxonomy, and [`run_design_batch`] is the
//! one-call JSONL batch service behind `youtiao batch` — and, with
//! [`BatchOptions::faults`] set, behind `youtiao chaos`: injected
//! faults flow through the same classification and retry path as real
//! pipeline failures.
//!
//! # Example
//!
//! ```
//! use youtiao::serve::{
//!     run_design_batch, BatchOptions, ChipRequest, DesignRequest,
//! };
//!
//! let requests = vec![DesignRequest::new(ChipRequest::grid("square", 3, 3))];
//! let mut out = Vec::new();
//! let metrics =
//!     run_design_batch(&requests, &BatchOptions::default(), &mut out).unwrap();
//! assert_eq!(metrics.ok, 1);
//! assert!(std::str::from_utf8(&out).unwrap().contains("\"status\":\"Ok\""));
//! ```

use std::io::Write;
use std::sync::Arc;

pub use youtiao_serve::*;

use crate::flow::{design_chip_traced, DesignError, DesignOptions, ReportSummary};

/// Derives the characterization seed for a retry attempt: attempt 0
/// keeps the requested seed (so results are reproducible), later
/// attempts mix in a golden-ratio step so transient failures explore
/// fresh synthetic data.
pub fn perturbed_seed(seed: u64, attempt: u32) -> u64 {
    seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Maps a pipeline failure onto the pool's retry taxonomy.
fn classify(error: DesignError) -> ExecError {
    let kind = match &error {
        DesignError::Plan(_) => ErrorKind::Plan,
        DesignError::Route(_) => ErrorKind::Route,
        DesignError::Validation(_) => ErrorKind::Validation,
        DesignError::Cancelled { .. } => return ExecError::cancelled(),
    };
    if error.is_transient() {
        ExecError::transient(kind, error.to_string())
    } else {
        ExecError::permanent(kind, error.to_string())
    }
}

/// The design-flow executor: resolves the request's chip, runs
/// characterize → plan → tally → route under the attempt's cancel
/// token, and returns the report summary.
pub fn design_executor() -> Executor<DesignRequest, ReportSummary> {
    design_executor_with(false)
}

/// [`design_executor`] with plan validation on or off: when `validate`
/// is set, every finished plan is checked against the wiring invariants
/// and a violation fails the job permanently with
/// [`ErrorKind::Validation`]. Stage spans land on the attempt's tracer
/// either way (a no-op unless the pool runs with tracing).
pub fn design_executor_with(validate: bool) -> Executor<DesignRequest, ReportSummary> {
    Arc::new(move |request, ctx| {
        let chip = request
            .chip
            .build()
            .map_err(|e| ExecError::permanent(ErrorKind::InvalidRequest, e.to_string()))?;
        let options = DesignOptions {
            planner: request.planner_config(),
            seed: perturbed_seed(request.seed(), ctx.attempt),
            routing: if request.wants_routing() {
                DesignOptions::default().routing
            } else {
                None
            },
            validate,
        };
        design_chip_traced(&chip, &options, &ctx.cancel, &ctx.tracer)
            .map(|report| report.summary())
            .map_err(classify)
    })
}

/// Runs a batch of design requests through the worker pool + plan
/// cache, streaming one JSON record per job into `out`, and returns the
/// run's [`ServeMetrics`].
///
/// # Errors
///
/// Returns [`BatchError`] for input/output problems only; per-job
/// failures (bad requests, plan errors, timeouts) are emitted as
/// structured error records.
pub fn run_design_batch<W: Write>(
    requests: &[DesignRequest],
    options: &BatchOptions,
    out: &mut W,
) -> Result<ServeMetrics, BatchError> {
    run_batch(
        requests,
        design_executor_with(options.validate),
        options,
        out,
    )
}

/// [`run_design_batch`] against a caller-owned [`PlanCache`], for warm
/// in-process reuse across batches.
pub fn run_design_batch_with_cache<W: Write>(
    requests: &[DesignRequest],
    options: &BatchOptions,
    cache: &PlanCache<ReportSummary>,
    out: &mut W,
) -> Result<ServeMetrics, BatchError> {
    run_batch_with_cache(
        requests,
        design_executor_with(options.validate),
        options,
        cache,
        out,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempt_zero_keeps_the_seed() {
        assert_eq!(perturbed_seed(42, 0), 42);
        assert_ne!(perturbed_seed(42, 1), 42);
        assert_ne!(perturbed_seed(42, 1), perturbed_seed(42, 2));
    }

    #[test]
    fn executor_classifies_invalid_and_plan_errors() {
        let executor = design_executor();
        let ctx = AttemptCtx::new(0, CancelToken::new());

        let bad_chip = DesignRequest::new(ChipRequest::named("tesseract"));
        let err = executor(&bad_chip, &ctx).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidRequest);
        assert!(!err.transient);

        let mut bad_config = DesignRequest::new(ChipRequest::grid("square", 2, 2));
        bad_config.fdm_capacity = Some(0);
        let err = executor(&bad_config, &ctx).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Plan);
        assert!(!err.transient);
    }

    #[test]
    fn chaos_over_the_real_design_flow_is_deterministic() {
        // Injected panics are contained by the pool; keep the default
        // hook's per-panic output out of the test log.
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !message.starts_with("injected panic") {
                previous(info);
            }
        }));

        let requests: Vec<DesignRequest> = (0..8)
            .map(|i| {
                let mut r = DesignRequest::new(ChipRequest::grid("square", 2 + i % 3, 2));
                r.id = Some(format!("chaos{i}"));
                r
            })
            .collect();
        let run = || {
            let options = BatchOptions {
                jobs: 3,
                faults: Some(FaultPlan::smoke(11)),
                canonical: true,
                ..Default::default()
            };
            let mut out = Vec::new();
            let metrics = run_design_batch(&requests, &options, &mut out).unwrap();
            let mut lines: Vec<String> = String::from_utf8(out)
                .unwrap()
                .lines()
                .map(String::from)
                .collect();
            lines.sort_by_key(|line| {
                serde_json::from_str::<serde::Value>(line).unwrap()["index"]
                    .as_u64()
                    .unwrap()
            });
            (lines.join("\n"), metrics)
        };
        let (a, metrics_a) = run();
        let (b, metrics_b) = run();
        assert_eq!(a, b, "equal seeds must give byte-identical sorted streams");
        assert_eq!(metrics_a.faults, metrics_b.faults);
        assert!(metrics_a.faults.total() > 0, "smoke plan injected nothing");
        // Injected faults surface through the normal classification
        // path: real results for clean jobs, structured errors for the
        // faulted ones.
        assert_eq!(metrics_a.jobs, 8);
        assert!(metrics_a.ok > 0, "every job faulted permanently");
        assert!(metrics_a.errors > 0, "no job faulted");
    }

    #[test]
    fn executor_honours_cancellation() {
        let executor = design_executor();
        let cancel = CancelToken::new();
        cancel.cancel();
        let ctx = AttemptCtx::new(0, cancel);
        let request = DesignRequest::new(ChipRequest::grid("square", 3, 3));
        let err = executor(&request, &ctx).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Cancelled);
    }
}
