//! The serving layer, wired to the design flow.
//!
//! `youtiao-serve` is pipeline-agnostic (any executor, any result
//! type); this module instantiates it with the real thing:
//! [`design_executor`] runs [`design_chip_with_cancel`] for a
//! [`DesignRequest`], classifying [`DesignError`]s into the pool's
//! transient/permanent retry taxonomy, and [`run_design_batch`] is the
//! one-call JSONL batch service behind `youtiao batch` — and, with
//! [`BatchOptions::faults`] set, behind `youtiao chaos`: injected
//! faults flow through the same classification and retry path as real
//! pipeline failures.
//!
//! Requests carrying a [`DeltaSpec`] take the warm repair path instead:
//! the base plan is looked up in (or computed into) a [`RepairStore`]
//! and incrementally repaired toward the delta'd inputs by
//! `youtiao_repair`, with hit/miss/fallback counters surfaced in
//! [`ServeMetrics::repair`].
//!
//! # Example
//!
//! ```
//! use youtiao::serve::{
//!     run_design_batch, BatchOptions, ChipRequest, DesignRequest,
//! };
//!
//! let requests = vec![DesignRequest::new(ChipRequest::grid("square", 3, 3))];
//! let mut out = Vec::new();
//! let metrics =
//!     run_design_batch(&requests, &BatchOptions::default(), &mut out).unwrap();
//! assert_eq!(metrics.ok, 1);
//! assert!(std::str::from_utf8(&out).unwrap().contains("\"status\":\"Ok\""));
//! ```

use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use youtiao_chip::spec::ChipSpec;
use youtiao_chip::{Chip, CouplerId, DeviceId};
use youtiao_core::tdm::brickwork_activity;
use youtiao_repair::{diff_inputs, repair_plan, PlanInputs, RepairConfig, RepairOutcome};

pub use youtiao_serve::*;

use crate::flow::{
    complete_plan_traced, design_chip_traced, DesignError, DesignOptions, DesignReport,
    ReportSummary,
};
use crate::multi::{design_multi_chip, MultiDesignOptions};

/// Derives the characterization seed for a retry attempt: attempt 0
/// keeps the requested seed (so results are reproducible), later
/// attempts mix in a golden-ratio step so transient failures explore
/// fresh synthetic data.
pub fn perturbed_seed(seed: u64, attempt: u32) -> u64 {
    seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Maps a pipeline failure onto the pool's retry taxonomy.
fn classify(error: DesignError) -> ExecError {
    let kind = match &error {
        DesignError::Plan(_) => ErrorKind::Plan,
        DesignError::Route(_) => ErrorKind::Route,
        DesignError::Validation(_) => ErrorKind::Validation,
        DesignError::Cancelled { .. } => return ExecError::cancelled(),
        // Retrying a shed request would hit the same admission verdict;
        // the client should back off or relax the deadline.
        DesignError::Shed { .. } => {
            return ExecError::permanent(ErrorKind::Shed, error.to_string())
        }
    };
    if error.is_transient() {
        ExecError::transient(kind, error.to_string())
    } else {
        ExecError::permanent(kind, error.to_string())
    }
}

/// One independently locked slice of a [`RepairStore`].
type StoreShard = Mutex<HashMap<u64, Arc<DesignReport>>>;

/// Resident base plans for the warm repair path, keyed by
/// [`DesignRequest::base_key`]. Delta-carrying requests look their base
/// up here and answer by incremental repair instead of replanning; a
/// miss computes the base inline (once) and stores it for the next
/// delta over the same base.
///
/// Entries are full [`DesignReport`]s — plan, [`PlanContext`] and
/// model — because that is exactly what `youtiao_repair::repair_plan`
/// starts from. The store is capacity-capped: once full, new bases are
/// still planned but not retained. Cloning shares the entries and the
/// hit/miss/fallback counters, so the executor (moved into pool
/// threads) and the batch front-end observe the same state.
///
/// Like the plan cache, the store shards by
/// [`shard_of_key`](youtiao_serve::shard_of_key): each shard has its
/// own lock (lookups on different shards never contend) and its own
/// slice of the capacity budget. [`RepairStore::new`] is the
/// single-shard (flat) store.
///
/// [`PlanContext`]: youtiao_core::PlanContext
#[derive(Clone)]
pub struct RepairStore {
    shards: Arc<Vec<StoreShard>>,
    per_shard: usize,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
    fallbacks: Arc<AtomicU64>,
}

impl Default for RepairStore {
    fn default() -> Self {
        RepairStore::new(256)
    }
}

impl RepairStore {
    /// A flat (single-shard) store retaining at most `capacity` base
    /// plans.
    pub fn new(capacity: usize) -> Self {
        RepairStore::sharded(capacity, 1)
    }

    /// A store of `shards` independently locked shards (min 1) splitting
    /// a total budget of `capacity` base plans.
    pub fn sharded(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards).max(1);
        RepairStore {
            shards: Arc::new((0..shards).map(|_| Mutex::new(HashMap::new())).collect()),
            per_shard,
            hits: Arc::new(AtomicU64::new(0)),
            misses: Arc::new(AtomicU64::new(0)),
            fallbacks: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Number of shards the store spreads its entries over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, Arc<DesignReport>>> {
        &self.shards[shard_of_key(key, self.shards.len())]
    }

    /// Resident base plans, summed over shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.lock().expect("repair store lock").len())
            .sum()
    }

    /// Whether no base plan is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the repair counters: every successfully answered
    /// delta job increments exactly one of hits (base was resident,
    /// repaired locally), misses (base computed inline, then repaired
    /// locally), or fallbacks (repair replanned in full).
    pub fn stats(&self) -> RepairStats {
        RepairStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
        }
    }

    fn lookup(&self, key: u64) -> Option<Arc<DesignReport>> {
        self.shard(key)
            .lock()
            .expect("repair store lock")
            .get(&key)
            .cloned()
    }

    /// Stores `report` under `key` unless its shard is full; either way
    /// the caller gets the entry to repair from. Concurrent misses on
    /// the same key store the same content-addressed value, so the race
    /// is benign.
    fn insert(&self, key: u64, report: DesignReport) -> Arc<DesignReport> {
        let report = Arc::new(report);
        let mut entries = self.shard(key).lock().expect("repair store lock");
        if entries.len() < self.per_shard || entries.contains_key(&key) {
            entries.insert(key, Arc::clone(&report));
        }
        report
    }
}

/// The design-flow executor: resolves the request's chip, runs
/// characterize → plan → tally → route under the attempt's cancel
/// token, and returns the report summary.
pub fn design_executor() -> Executor<DesignRequest, ReportSummary> {
    design_executor_with(false)
}

/// [`design_executor`] with plan validation on or off: when `validate`
/// is set, every finished plan is checked against the wiring invariants
/// and a violation fails the job permanently with
/// [`ErrorKind::Validation`]. Stage spans land on the attempt's tracer
/// either way (a no-op unless the pool runs with tracing).
///
/// Delta-carrying requests are served through a private [`RepairStore`]
/// — use [`repairing_design_executor`] to share one across executors
/// or read its counters.
pub fn design_executor_with(validate: bool) -> Executor<DesignRequest, ReportSummary> {
    repairing_design_executor(validate, RepairStore::default())
}

/// [`design_executor_with`] plus the warm repair path: requests whose
/// [`DesignRequest::effective_delta`] is set are answered by looking up
/// (or computing) the base plan in `store` and repairing it toward the
/// delta'd inputs — the `repair` span on the attempt's tracer records
/// the outcome, invalidated kernel rows, and regrouped device counts.
///
/// Two determinism properties the chaos suite relies on:
///
/// * the base plan is always characterized with the *request's* seed,
///   never the attempt-perturbed one — the store is content-addressed
///   by [`DesignRequest::base_key`], so the entry must not depend on
///   which attempt (or which job) populated it;
/// * a store miss computes the base inline and repairs from it — the
///   executor never plans the delta'd inputs directly — so a delta
///   job's result is a pure function of (base inputs, delta) however
///   jobs race across pool threads.
pub fn repairing_design_executor(
    validate: bool,
    store: RepairStore,
) -> Executor<DesignRequest, ReportSummary> {
    repairing_design_executor_threads(validate, store, 1)
}

/// [`repairing_design_executor`] with an explicit intra-plan thread
/// count injected into every request's [`PlannerConfig`] (`0` = one
/// thread per core). Front-ends resolve the count from their
/// `plan_threads` option and pool width via
/// [`effective_plan_threads`]; plans are byte-identical across any
/// value, so the knob never enters the plan cache or repair-store keys.
///
/// [`PlannerConfig`]: youtiao_core::PlannerConfig
pub fn repairing_design_executor_threads(
    validate: bool,
    store: RepairStore,
    plan_threads: usize,
) -> Executor<DesignRequest, ReportSummary> {
    Arc::new(move |request, ctx| {
        if request.chip.is_multi() {
            return multi_request(request, ctx, validate, plan_threads);
        }
        let chip = request
            .chip
            .build()
            .map_err(|e| ExecError::permanent(ErrorKind::InvalidRequest, e.to_string()))?;
        let options = DesignOptions {
            planner: {
                let mut planner = request.planner_config();
                planner.plan_threads = plan_threads;
                planner
            },
            seed: perturbed_seed(request.seed(), ctx.attempt),
            routing: if request.wants_routing() {
                DesignOptions::default().routing
            } else {
                None
            },
            validate,
        };
        match request.effective_delta() {
            Some(delta) => repair_request(&store, request, delta, &chip, &options, ctx),
            None => design_chip_traced(&chip, &options, &ctx.cancel, &ctx.tracer)
                .map(|report| report.summary())
                .map_err(classify),
        }
    })
}

fn invalid(message: impl Into<String>) -> ExecError {
    ExecError::permanent(ErrorKind::InvalidRequest, message.into())
}

/// The multi-die path of the design executor: tile the chiplet array,
/// plan every die ([`design_multi_chip`]), and answer with the combined
/// cryostat-level summary. The warm repair path is per-die state the
/// multi flow does not thread yet, so delta requests are rejected as
/// invalid rather than silently replanned.
fn multi_request(
    request: &DesignRequest,
    ctx: &AttemptCtx,
    validate: bool,
    plan_threads: usize,
) -> Result<ReportSummary, ExecError> {
    if request.effective_delta().is_some() {
        return Err(invalid(
            "delta repair is not supported for multi-die requests",
        ));
    }
    let mdc = request
        .chip
        .build_multi()
        .map_err(|e| invalid(e.to_string()))?;
    let options = MultiDesignOptions {
        planner: {
            let mut planner = request.planner_config();
            planner.plan_threads = plan_threads;
            planner
        },
        seed: perturbed_seed(request.seed(), ctx.attempt),
        use_model: true,
        budget: request
            .coax_budget
            .map(|coax_lines| youtiao_core::CryostatBudget { coax_lines }),
        validate,
    };
    ctx.cancel
        .checkpoint()
        .map_err(|_| ExecError::cancelled())?;
    let span = ctx.tracer.span("multi");
    let report = design_multi_chip(&mdc, &options).map_err(classify)?;
    span.annotate("dies", report.outcome.dies.len() as u64);
    span.annotate("link_swaps", report.outcome.reconcile.swapped as u64);
    Ok(report.summary(&mdc))
}

/// The delta path of [`repairing_design_executor`]: resolve the base,
/// materialize the delta'd snapshot, diff, repair, and run the back
/// half of the flow (cost/route/validate) over the repaired plan.
fn repair_request(
    store: &RepairStore,
    request: &DesignRequest,
    delta: &DeltaSpec,
    chip: &Chip,
    options: &DesignOptions,
    ctx: &AttemptCtx,
) -> Result<ReportSummary, ExecError> {
    let base_key = request.base_key().map_err(|e| invalid(e.to_string()))?;
    if let Some(expected) = &request.base {
        let computed = format!("{base_key:016x}");
        if *expected != computed {
            return Err(invalid(format!(
                "base content-address mismatch: request names {expected}, server computed {computed}"
            )));
        }
    }

    // Resolve the base plan: resident, or planned inline on a miss.
    let (base, resident) = match store.lookup(base_key) {
        Some(base) => (base, true),
        None => {
            let base_options = DesignOptions {
                seed: request.seed(),
                ..options.clone()
            };
            let report = design_chip_traced(chip, &base_options, &ctx.cancel, &ctx.tracer)
                .map_err(classify)?;
            (store.insert(base_key, report), false)
        }
    };

    // Materialize the post-delta snapshot from the base context.
    let span = ctx.tracer.span("repair");
    let new_chip = delta_chip(chip, delta)?;
    let mut new_xtalk = base.context.crosstalk().clone();
    for entry in delta.drift.iter().flatten() {
        let n = chip.num_qubits() as u32;
        if entry.a >= n || entry.b >= n || entry.a == entry.b {
            return Err(invalid(format!(
                "drift entry ({}, {}) does not name a qubit pair of the {n}-qubit base chip",
                entry.a, entry.b
            )));
        }
        new_xtalk.set(entry.a.into(), entry.b.into(), entry.xtalk);
    }
    let base_activity = brickwork_activity(chip);
    let mut new_activity = brickwork_activity(&new_chip);
    for over in delta.activity.iter().flatten() {
        let device = match (over.qubit, over.coupler) {
            (Some(q), None) if (q as usize) < new_chip.num_qubits() => DeviceId::Qubit(q.into()),
            (None, Some(c)) if (c as usize) < new_chip.num_couplers() => {
                DeviceId::Coupler(CouplerId::new(c))
            }
            _ => {
                return Err(invalid(
                    "activity override must name exactly one in-range qubit or coupler",
                ))
            }
        };
        new_activity.insert(device, over.mask);
    }

    let old_inputs = PlanInputs {
        chip,
        xtalk: base.context.crosstalk(),
        activity: &base_activity,
    };
    let new_inputs = PlanInputs {
        chip: &new_chip,
        xtalk: &new_xtalk,
        activity: &new_activity,
    };
    let changes = diff_inputs(&old_inputs, &new_inputs);

    // The flow plans with the model-fitted weights baked into the base
    // context; the repair pass (and its byte-identical fallback) must
    // agree with them, not with the config's balanced default.
    let mut planner = options.planner.clone();
    planner.weights = base.context.weights();
    let repaired = repair_plan(
        &base.plan,
        &base.context,
        &new_inputs,
        &changes,
        &planner,
        &RepairConfig::default(),
    )
    .map_err(|e| classify(DesignError::Plan(e)))?;

    span.annotate("outcome", repaired.outcome.as_str());
    span.annotate("changes", changes.len() as u64);
    span.annotate("invalidated_rows", repaired.invalidated_rows as u64);
    span.annotate("dirty_groups", repaired.dirty_groups as u64);
    span.annotate("regrouped_devices", repaired.regrouped_devices as u64);
    if matches!(repaired.outcome, RepairOutcome::FullReplan { .. }) {
        store.fallbacks.fetch_add(1, Ordering::Relaxed);
    } else if resident {
        store.hits.fetch_add(1, Ordering::Relaxed);
    } else {
        store.misses.fetch_add(1, Ordering::Relaxed);
    }
    drop(span);

    // Back half of the flow over the repaired plan, validated against
    // the delta'd activity profile (not the brickwork default).
    complete_plan_traced(
        &new_chip,
        base.model.clone(),
        repaired.context,
        repaired.plan,
        options,
        Some(&new_activity),
        &ctx.cancel,
        &ctx.tracer,
    )
    .map(|report| report.summary())
    .map_err(classify)
}

/// The delta'd chip: the base chip minus every coupler named dead.
/// Every named coupler must exist (endpoint order is irrelevant).
fn delta_chip(chip: &Chip, delta: &DeltaSpec) -> Result<Chip, ExecError> {
    let dead: Vec<(u32, u32)> = delta
        .dead_couplers
        .iter()
        .flatten()
        .map(|&(a, b)| (a.min(b), a.max(b)))
        .collect();
    if dead.is_empty() {
        return Ok(chip.clone());
    }
    let mut spec = ChipSpec::from_chip(chip);
    for &(a, b) in &dead {
        let before = spec.couplers.len();
        spec.couplers
            .retain(|&(x, y)| (x.min(y), x.max(y)) != (a, b));
        if spec.couplers.len() == before {
            return Err(invalid(format!(
                "dead coupler ({a}, {b}) is not a coupler of the base chip"
            )));
        }
    }
    spec.to_chip().map_err(|e| invalid(e.to_string()))
}

/// Runs a batch of design requests through the worker pool + plan
/// cache, streaming one JSON record per job into `out`, and returns the
/// run's [`ServeMetrics`].
///
/// # Errors
///
/// Returns [`BatchError`] for input/output problems only; per-job
/// failures (bad requests, plan errors, timeouts) are emitted as
/// structured error records.
pub fn run_design_batch<W: Write>(
    requests: &[DesignRequest],
    options: &BatchOptions,
    out: &mut W,
) -> Result<ServeMetrics, BatchError> {
    let store = RepairStore::default();
    let threads = batch_plan_threads(options);
    let metrics = run_batch(
        requests,
        repairing_design_executor_threads(options.validate, store.clone(), threads),
        options,
        out,
    )?;
    Ok(metrics.with_repair(store.stats()))
}

/// [`run_design_batch`] against a caller-owned [`PlanCache`], for warm
/// in-process reuse across batches.
pub fn run_design_batch_with_cache<W: Write>(
    requests: &[DesignRequest],
    options: &BatchOptions,
    cache: &PlanCache<ReportSummary>,
    out: &mut W,
) -> Result<ServeMetrics, BatchError> {
    let store = RepairStore::default();
    let threads = batch_plan_threads(options);
    let metrics = run_batch_with_cache(
        requests,
        repairing_design_executor_threads(options.validate, store.clone(), threads),
        options,
        cache,
        out,
    )?;
    Ok(metrics.with_repair(store.stats()))
}

/// The streaming variant of [`run_design_batch`]: reads framed JSONL
/// requests from `input` one line at a time instead of materializing
/// the whole jobs file, dispatching through a sharded plan cache
/// (`options.shards`, min 1).
pub fn run_design_batch_stream<In, W>(
    input: In,
    options: &BatchOptions,
    out: &mut W,
) -> Result<ServeMetrics, BatchError>
where
    In: std::io::BufRead,
    W: Write,
{
    let store = RepairStore::sharded(256, options.shards.max(1));
    let threads = batch_plan_threads(options);
    let metrics = run_batch_stream(
        input,
        repairing_design_executor_threads(options.validate, store.clone(), threads),
        options,
        out,
    )?;
    Ok(metrics.with_repair(store.stats()))
}

/// One `youtiao serve` daemon session over the real design flow:
/// framed requests in, responses out, with the sharded plan cache,
/// admission control, and warm repair path all wired in. See
/// [`run_daemon`] for the protocol and determinism contract.
pub fn run_design_daemon<In, Out>(
    options: &DaemonOptions,
    input: In,
    output: &mut Out,
) -> Result<DaemonReport, BatchError>
where
    In: std::io::BufRead + Send + 'static,
    Out: Write,
{
    let store = RepairStore::sharded(256, options.shards.max(1));
    let workers = PoolOptions {
        workers: options.workers,
        ..Default::default()
    }
    .effective_workers();
    let threads = effective_plan_threads(options.plan_threads, workers);
    let mut report = run_daemon(
        repairing_design_executor_threads(options.validate, store.clone(), threads),
        options,
        input,
        output,
    )?;
    report.metrics = report.metrics.with_repair(store.stats());
    Ok(report)
}

/// Resolve a batch run's intra-plan thread count: the pool width comes
/// from `jobs` (0 = per-core), then [`effective_plan_threads`] applies
/// the oversubscription policy against `plan_threads`.
fn batch_plan_threads(options: &BatchOptions) -> usize {
    let workers = PoolOptions {
        workers: options.jobs,
        ..Default::default()
    }
    .effective_workers();
    effective_plan_threads(options.plan_threads, workers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempt_zero_keeps_the_seed() {
        assert_eq!(perturbed_seed(42, 0), 42);
        assert_ne!(perturbed_seed(42, 1), 42);
        assert_ne!(perturbed_seed(42, 1), perturbed_seed(42, 2));
    }

    #[test]
    fn executor_classifies_invalid_and_plan_errors() {
        let executor = design_executor();
        let ctx = AttemptCtx::new(0, CancelToken::new());

        let bad_chip = DesignRequest::new(ChipRequest::named("tesseract"));
        let err = executor(&bad_chip, &ctx).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidRequest);
        assert!(!err.transient);

        let mut bad_config = DesignRequest::new(ChipRequest::grid("square", 2, 2));
        bad_config.fdm_capacity = Some(0);
        let err = executor(&bad_config, &ctx).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Plan);
        assert!(!err.transient);
    }

    #[test]
    fn chaos_over_the_real_design_flow_is_deterministic() {
        // Injected panics are contained by the pool; keep the default
        // hook's per-panic output out of the test log.
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !message.starts_with("injected panic") {
                previous(info);
            }
        }));

        let requests: Vec<DesignRequest> = (0..8)
            .map(|i| {
                let mut r = DesignRequest::new(ChipRequest::grid("square", 2 + i % 3, 2));
                r.id = Some(format!("chaos{i}"));
                r
            })
            .collect();
        let run = || {
            let options = BatchOptions {
                jobs: 3,
                faults: Some(FaultPlan::smoke(11)),
                canonical: true,
                ..Default::default()
            };
            let mut out = Vec::new();
            let metrics = run_design_batch(&requests, &options, &mut out).unwrap();
            let mut lines: Vec<String> = String::from_utf8(out)
                .unwrap()
                .lines()
                .map(String::from)
                .collect();
            lines.sort_by_key(|line| {
                serde_json::from_str::<serde::Value>(line).unwrap()["index"]
                    .as_u64()
                    .unwrap()
            });
            (lines.join("\n"), metrics)
        };
        let (a, metrics_a) = run();
        let (b, metrics_b) = run();
        assert_eq!(a, b, "equal seeds must give byte-identical sorted streams");
        assert_eq!(metrics_a.faults, metrics_b.faults);
        assert!(metrics_a.faults.total() > 0, "smoke plan injected nothing");
        // Injected faults surface through the normal classification
        // path: real results for clean jobs, structured errors for the
        // faulted ones.
        assert_eq!(metrics_a.jobs, 8);
        assert!(metrics_a.ok > 0, "every job faulted permanently");
        assert!(metrics_a.errors > 0, "no job faulted");
    }

    #[test]
    fn delta_requests_repair_over_the_resident_base() {
        let store = RepairStore::new(8);
        let executor = repairing_design_executor(false, store.clone());
        let ctx = AttemptCtx::new(0, CancelToken::new());

        let base_req = DesignRequest::new(ChipRequest::grid("square", 5, 5));
        let mut drifted = base_req.clone();
        drifted.delta = Some(DeltaSpec {
            drift: Some(vec![DriftEntry {
                a: 6,
                b: 18,
                xtalk: 3e-3,
            }]),
            ..DeltaSpec::default()
        });

        // First delta over an empty store: miss — the base is planned
        // inline, stored, and repaired from.
        let first = executor(&drifted, &ctx).unwrap();
        assert_eq!(store.stats().misses, 1);
        assert_eq!(store.len(), 1);

        // Same delta again: hit, and byte-identical summary.
        let second = executor(&drifted, &ctx).unwrap();
        assert_eq!(store.stats().hits, 1);
        assert_eq!(first, second, "warm repair must be deterministic");

        // The drifted answer is a real design over the same chip, not
        // the base answer recycled.
        let base_summary = executor(&base_req, &ctx).unwrap();
        assert_eq!(base_summary.plan.total_qubits, first.plan.total_qubits);

        // A structural delta (dead coupler) falls back to a full replan.
        let mut dead = base_req.clone();
        dead.delta = Some(DeltaSpec {
            dead_couplers: Some(vec![(0, 1)]),
            ..DeltaSpec::default()
        });
        executor(&dead, &ctx).unwrap();
        assert_eq!(store.stats().fallbacks, 1);
        assert_eq!(store.stats().total(), 3);
    }

    #[test]
    fn delta_requests_validate_their_base_address_and_inputs() {
        let store = RepairStore::new(8);
        let executor = repairing_design_executor(false, store.clone());
        let ctx = AttemptCtx::new(0, CancelToken::new());

        let mut request = DesignRequest::new(ChipRequest::grid("square", 3, 3));
        request.delta = Some(DeltaSpec {
            drift: Some(vec![DriftEntry {
                a: 0,
                b: 4,
                xtalk: 2e-3,
            }]),
            ..DeltaSpec::default()
        });

        // A wrong base content-address is rejected before any planning.
        let mut wrong = request.clone();
        wrong.base = Some("00000000deadbeef".into());
        let err = executor(&wrong, &ctx).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidRequest);
        assert!(err.message.contains("mismatch"), "{}", err.message);
        assert!(store.is_empty(), "rejected requests must not plan");

        // The correct address is accepted.
        let mut right = request.clone();
        right.base = Some(format!("{:016x}", right.base_key().unwrap()));
        executor(&right, &ctx).unwrap();

        // Out-of-range drift endpoints are invalid, not a panic.
        let mut oob = request.clone();
        oob.delta = Some(DeltaSpec {
            drift: Some(vec![DriftEntry {
                a: 0,
                b: 99,
                xtalk: 2e-3,
            }]),
            ..DeltaSpec::default()
        });
        let err = executor(&oob, &ctx).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidRequest);

        // A dead coupler that never existed is invalid too.
        let mut ghost = request.clone();
        ghost.delta = Some(DeltaSpec {
            dead_couplers: Some(vec![(0, 8)]),
            ..DeltaSpec::default()
        });
        let err = executor(&ghost, &ctx).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidRequest);
    }

    #[test]
    fn multi_die_requests_plan_through_the_executor() {
        let executor = design_executor_with(true);
        let ctx = AttemptCtx::new(0, CancelToken::new());

        let mut request = DesignRequest::new(ChipRequest::grid("square", 4, 4));
        request.chip.chiplets = Some(4);
        let multi = executor(&request, &ctx).unwrap();
        assert_eq!(multi.plan.total_qubits, 64);
        assert!(multi.routing.is_none(), "multi-die requests do not route");

        // A 1×1 chiplet request is byte-identical to the monolithic one.
        let mut one = DesignRequest::new(ChipRequest::grid("square", 4, 4));
        one.routing = Some(false);
        let mono = executor(&one, &ctx).unwrap();
        one.chip.chiplets = Some(1);
        let single = executor(&one, &ctx).unwrap();
        assert_eq!(
            serde_json::to_string(&single).unwrap(),
            serde_json::to_string(&mono).unwrap()
        );

        // Delta repair is rejected on the multi path.
        let mut drifted = request.clone();
        drifted.delta = Some(DeltaSpec {
            drift: Some(vec![DriftEntry {
                a: 0,
                b: 4,
                xtalk: 2e-3,
            }]),
            ..DeltaSpec::default()
        });
        let err = executor(&drifted, &ctx).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidRequest);

        // An infeasible cryostat budget is a structured validation
        // failure, not a panic.
        let mut broke = request.clone();
        broke.coax_budget = Some(2);
        let err = executor(&broke, &ctx).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Validation);
    }

    #[test]
    fn executor_honours_cancellation() {
        let executor = design_executor();
        let cancel = CancelToken::new();
        cancel.cancel();
        let ctx = AttemptCtx::new(0, cancel);
        let request = DesignRequest::new(ChipRequest::grid("square", 3, 3));
        let err = executor(&request, &ctx).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Cancelled);
    }
}
