//! Chaos soak: multi-worker fault-injection stress over the serve pool.
//!
//! These tests drive `WorkerPool` and the batch facade under seeded
//! `FaultPlan`s and pin the pool's liveness contract: every submitted
//! job yields exactly one record, no worker hangs past a global
//! deadline, and no injected panic escapes the pool. The abort-race
//! test is a regression lock for the submit/abort TOCTOU fixed in
//! `pool::run_task` (it fails against the pre-fix pool).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Once};
use std::thread;
use std::time::Duration;

use youtiao::serve::{
    apply_cache_fault, run_design_batch, run_design_daemon, shard_file, shard_of_key,
    AdmissionConfig, BatchOptions, CacheFault, ChipRequest, DaemonOptions, DesignRequest,
    ErrorKind, ExecError, Executor, FaultInjector, FaultKind, FaultPlan, JobStatus, OverloadBurst,
    PoolOptions, WorkerPool,
};

/// Injected panics are caught by the pool and turned into records; keep
/// the default hook's per-panic backtrace spam out of the test log
/// without hiding real panics.
fn silence_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !message.starts_with("injected panic") {
                previous(info);
            }
        }));
    });
}

/// Mirrors the pool's retry loop over a pure `fault_at` schedule: with
/// an always-succeeding inner executor and no deadline, a job's final
/// error kind (or success) is fully determined by (seed, index).
fn expected_outcome(plan: &FaultPlan, index: usize, max_retries: u32) -> Option<ErrorKind> {
    let mut attempt = 0u32;
    loop {
        match plan.fault_at(index, attempt) {
            Some(FaultKind::Transient) if attempt < max_retries => attempt += 1,
            Some(FaultKind::Transient) | Some(FaultKind::Permanent) | Some(FaultKind::Panic) => {
                return Some(ErrorKind::Internal)
            }
            Some(FaultKind::Cancel) => return Some(ErrorKind::Cancelled),
            Some(FaultKind::Delay) | Some(FaultKind::Drift) | None => return None,
        }
    }
}

#[test]
fn soak_eight_workers_two_hundred_jobs_loses_nothing() {
    silence_injected_panics();
    const JOBS: usize = 240;
    for seed in [1u64, 7, 23] {
        let plan = FaultPlan {
            seed: Some(seed),
            transient_rate: Some(0.30),
            permanent_rate: Some(0.12),
            panic_rate: Some(0.10),
            delay_rate: Some(0.08),
            delay_ms: Some(2),
            cancel_rate: Some(0.08),
            ..FaultPlan::default()
        };
        plan.validate().unwrap();
        let injector = FaultInjector::new(plan.clone());
        let executor: Executor<usize, usize> = injector.wrap(Arc::new(|n, _| Ok(*n * 3)));
        let options = PoolOptions {
            workers: 8,
            max_retries: 2,
            ..Default::default()
        };
        let max_retries = options.max_retries;
        let (tx, rx) = mpsc::channel();
        thread::spawn(move || {
            let mut pool = WorkerPool::new(executor, options);
            for index in 0..JOBS {
                assert!(pool.submit(index, format!("soak{index}"), index, None));
            }
            let _ = tx.send(pool.join());
        });
        // Global watchdog: a hung worker or an escaped panic (dead
        // worker thread, stranded queue) shows up here as a timeout.
        let mut records = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("soak run hung: a worker stalled or a panic escaped the pool");
        records.sort_by_key(|r| r.index);
        assert_eq!(
            records.len(),
            JOBS,
            "seed {seed}: lost or duplicated records"
        );
        for (index, record) in records.iter().enumerate() {
            assert_eq!(record.index, index, "seed {seed}: record indices skewed");
            match expected_outcome(&plan, index, max_retries) {
                None => {
                    assert_eq!(record.status, JobStatus::Ok, "seed {seed} job {index}");
                    assert_eq!(record.result, Some(index * 3), "seed {seed} job {index}");
                }
                Some(kind) => {
                    let error = record.error.as_ref().unwrap_or_else(|| {
                        panic!("seed {seed} job {index}: expected {kind:?}, got Ok")
                    });
                    assert_eq!(
                        error.kind, kind,
                        "seed {seed} job {index}: {}",
                        error.message
                    );
                }
            }
        }
        assert!(
            injector.counters().total() > 0,
            "seed {seed}: plan injected nothing"
        );
    }
}

#[test]
fn abort_never_leaves_a_registered_job_uncancelled() {
    // Regression for the submit/abort TOCTOU race: run_task used to
    // check the abort flag only *before* registering its cancel token,
    // so an abort landing between the check and the insert cancelled
    // nothing and the job ran to completion. The fixed code re-checks
    // the flag while holding the in-flight lock, which makes the
    // interleavings exhaustive. The executor below asserts the
    // contract: once abort() has returned, any job still entering the
    // executor must see its own token cancelled.
    const ROUNDS: usize = 120;
    const JOBS: usize = 2048;
    for round in 0..ROUNDS {
        let abort_called = Arc::new(AtomicBool::new(false));
        let abort_returned = Arc::new(AtomicBool::new(false));
        let raced = Arc::new(AtomicBool::new(false));
        let called = abort_called.clone();
        let returned = abort_returned.clone();
        let race = raced.clone();
        let executor: Executor<usize, usize> = Arc::new(move |n, ctx| {
            // Jobs that start while an abort is underway wait for it to
            // return, then assert the contract: once abort() is done,
            // this job's cancel token must be cancelled — either by
            // run_task's under-lock re-check or by abort's in-flight
            // sweep finding the registered token. Jobs entered before
            // the abort began take the fast path so the workers keep
            // cycling through the check/register window.
            if called.load(Ordering::SeqCst) {
                for _ in 0..100_000 {
                    if returned.load(Ordering::SeqCst) {
                        if !ctx.cancel.is_cancelled() {
                            race.store(true, Ordering::SeqCst);
                        }
                        break;
                    }
                    std::hint::spin_loop();
                }
            }
            if ctx.cancel.is_cancelled() {
                return Err(ExecError::cancelled());
            }
            Ok(*n)
        });
        // Many more workers than cores: when the abort lands, the
        // scheduler has frozen each worker at an arbitrary point of its
        // task cycle, so some round reliably catches one parked between
        // run_task's abort check and its token registration — exactly
        // the raced window. The ids are pre-built and the queue kept
        // deep so workers are churning rather than parked on an empty
        // queue; the yield advances them to fresh cycle positions.
        let ids: Vec<String> = (0..JOBS).map(|i| format!("r{round}j{i}")).collect();
        let mut pool = WorkerPool::new(
            executor,
            PoolOptions {
                workers: 64,
                ..Default::default()
            },
        );
        let mut accepted = 0usize;
        for (index, id) in ids.into_iter().enumerate() {
            if pool.submit(index, id, index, None) {
                accepted += 1;
            }
        }
        thread::yield_now();
        abort_called.store(true, Ordering::SeqCst);
        pool.abort();
        abort_returned.store(true, Ordering::SeqCst);
        let records = pool.join();
        assert_eq!(records.len(), accepted, "round {round}: abort lost records");
        assert!(
            !raced.load(Ordering::SeqCst),
            "round {round}: a job entered its executor after abort() returned \
             with a live cancel token (submit/abort race)"
        );
    }
}

#[test]
fn torn_cache_file_fails_loudly_then_salvages_end_to_end() {
    let path = std::env::temp_dir().join(format!(
        "youtiao-chaos-soak-cache-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let requests: Vec<DesignRequest> = (0..3)
        .map(|i| {
            let mut r = DesignRequest::new(ChipRequest::grid("square", 2 + i, 2));
            r.id = Some(format!("torn{i}"));
            r
        })
        .collect();
    let base = BatchOptions {
        jobs: 2,
        cache_path: Some(path.clone()),
        ..Default::default()
    };
    run_design_batch(&requests, &base, &mut Vec::new()).unwrap();
    assert!(path.exists(), "first run did not persist the cache");

    // Tear the snapshot the way `youtiao chaos` does, then require the
    // structured failure (no silent empty-cache fallback) ...
    apply_cache_fault(&path, CacheFault::Truncate).unwrap();
    let err = run_design_batch(&requests, &base, &mut Vec::new())
        .err()
        .unwrap();
    let message = err.to_string();
    assert!(message.contains("cache"), "unexpected error: {message}");

    // ... unless salvage is opted in, which starts empty and rewrites a
    // healthy snapshot (atomically) that the next run hits fully.
    let salvage = BatchOptions {
        cache_salvage: true,
        ..base.clone()
    };
    let metrics = run_design_batch(&requests, &salvage, &mut Vec::new()).unwrap();
    assert_eq!(metrics.ok, 3);
    assert_eq!(metrics.cache_hits, 0);
    let rerun = run_design_batch(&requests, &base, &mut Vec::new()).unwrap();
    assert_eq!(rerun.cache_hits, 3, "salvaged snapshot was not rewritten");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn drift_faults_exercise_the_repair_warm_path_deterministically() {
    // A chaos plan that only drifts: every attempt's request gains a
    // schedule-derived synthetic crosstalk shift, turning the job into
    // a warm repair over its own base. The run must stay byte-identical
    // across equal seeds (the drift mutation is pure in the schedule),
    // the repair counters must advance, and drifted results must not be
    // memoized under the undrifted request's cache key.
    let requests: Vec<DesignRequest> = (0..6)
        .map(|i| {
            let mut r = DesignRequest::new(ChipRequest::grid("square", 4, 4));
            r.id = Some(format!("drift{i}"));
            r.seed = Some(100 + i); // distinct cache keys, same chip
            r
        })
        .collect();
    let run = || {
        let options = BatchOptions {
            jobs: 3,
            faults: Some(FaultPlan {
                seed: Some(13),
                drift_rate: Some(0.5),
                ..FaultPlan::default()
            }),
            canonical: true,
            ..Default::default()
        };
        let mut out = Vec::new();
        let metrics = run_design_batch(&requests, &options, &mut out).unwrap();
        let mut lines: Vec<String> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        lines.sort();
        (lines.join("\n"), metrics)
    };
    let (a, metrics_a) = run();
    let (b, metrics_b) = run();
    assert_eq!(a, b, "drifted runs must stay byte-identical");
    assert_eq!(metrics_a.ok, 6, "drifted jobs still succeed");
    assert!(metrics_a.faults.drifts > 0, "drift plan injected nothing");
    assert_eq!(metrics_a.faults, metrics_b.faults);
    // Every drifted job went through the repair path exactly once, and
    // none of them replanned in full (a single synthetic drift entry is
    // far below the fallback threshold on a 4×4 chip).
    assert_eq!(metrics_a.repair.total(), metrics_a.faults.drifts);
    assert_eq!(metrics_a.repair.fallbacks, 0, "{:?}", metrics_a.repair);
    assert_eq!(metrics_a.repair, metrics_b.repair);
    // Drifted results are kept out of the plan cache: nothing was
    // inserted under the original keys for drifted jobs, so misses
    // stay misses on a rerun within the same process only for the
    // drifted subset — here simply assert no spurious hits appeared.
    assert_eq!(metrics_a.cache_hits, 0);
}

/// A daemon session over the real design flow: `count` distinct chips
/// (rows 2..2+count, cols 3), each line optionally carrying a deadline.
fn daemon_session_input(count: usize, deadline_ms: Option<u64>) -> String {
    let mut input = String::new();
    for i in 0..count {
        let deadline = deadline_ms
            .map(|d| format!(r#","deadline_ms":{d}"#))
            .unwrap_or_default();
        input.push_str(&format!(
            r#"{{"op":"design","rid":"d{i}","request":{{"chip":{{"topology":"square","rows":{},"cols":3}}{deadline}}}}}"#,
            2 + i
        ));
        input.push('\n');
    }
    input
}

fn run_daemon_session_lines(
    input: &str,
    options: &DaemonOptions,
) -> (Vec<String>, youtiao::serve::DaemonReport) {
    let mut out = Vec::new();
    let report =
        run_design_daemon(options, std::io::Cursor::new(input.to_string()), &mut out).unwrap();
    let lines = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();
    (lines, report)
}

#[test]
fn daemon_overload_burst_sheds_deterministically_end_to_end() {
    // The pinned burst parks a million phantom jobs on the queue for
    // requests 3..7, so with est 10ms over 2 workers those four — and
    // only those four — are infeasible against their 60s deadlines no
    // matter how the scheduler interleaves the real jobs. Every chip is
    // distinct: a duplicate would be served from the plan cache before
    // the shed check (cache hits are free and always feasible) and the
    // shed count would drop.
    let input = daemon_session_input(10, Some(60_000));
    let options = DaemonOptions {
        workers: 2,
        admission: AdmissionConfig {
            max_queue: 64,
            client_inflight: 0,
            est_ms: 10.0,
        },
        faults: Some(FaultPlan {
            overload_burst: Some(OverloadBurst {
                start: Some(3),
                count: Some(4),
                extra: Some(1_000_000),
            }),
            ..FaultPlan::default()
        }),
        ..DaemonOptions::default()
    };
    let (lines, report) = run_daemon_session_lines(&input, &options);
    let (again, report_again) = run_daemon_session_lines(&input, &options);
    assert_eq!(lines, again, "pinned overload must be reproducible");
    assert_eq!(report.metrics.admission.shed, 4);
    assert_eq!(
        report.metrics.admission.shed,
        report_again.metrics.admission.shed
    );
    assert_eq!(report.metrics.ok, 6, "the six unshed designs complete");
    for (i, line) in lines.iter().enumerate() {
        let v: serde_json::Value = serde_json::from_str(line).unwrap();
        if (3..7).contains(&i) {
            assert_eq!(v["error"]["kind"], "Shed", "index {i}");
            assert!(
                v["error"]["message"]
                    .as_str()
                    .unwrap()
                    .contains("infeasible"),
                "index {i}: {v}"
            );
        } else {
            assert_eq!(v["status"], "Ok", "index {i}");
        }
    }
}

#[test]
fn daemon_slow_client_backpressure_never_changes_bytes() {
    // A client that stalls between reads (slow_client_ms) combined with
    // a one-in-flight admission cap throttles the session's intake, but
    // the canonical response stream must be byte-for-byte the bytes an
    // unconstrained session produces — backpressure shapes *when*
    // responses move, never *what* they say.
    let input = daemon_session_input(6, None);
    let constrained = DaemonOptions {
        workers: 4,
        admission: AdmissionConfig {
            max_queue: 64,
            client_inflight: 1,
            est_ms: 0.0,
        },
        faults: Some(FaultPlan {
            slow_client_ms: Some(2),
            slow_client_every: Some(2),
            ..FaultPlan::default()
        }),
        ..DaemonOptions::default()
    };
    let (slow_lines, slow_report) = run_daemon_session_lines(&input, &constrained);
    let free = DaemonOptions {
        workers: 4,
        ..DaemonOptions::default()
    };
    let (free_lines, free_report) = run_daemon_session_lines(&input, &free);
    assert_eq!(
        slow_lines, free_lines,
        "backpressure altered response bytes"
    );
    assert!(
        slow_report.metrics.admission.backpressure_waits > 0,
        "the in-flight cap never stalled intake"
    );
    assert_eq!(free_report.metrics.admission.backpressure_waits, 0);
    assert_eq!(slow_report.responses, free_report.responses);
    assert!(slow_report.metrics.admission.max_in_flight <= 1);
}

#[test]
fn daemon_shard_loss_salvages_only_the_torn_shard() {
    let path = std::env::temp_dir().join(format!(
        "youtiao-chaos-daemon-cache-{}.json",
        std::process::id()
    ));
    const SHARDS: usize = 4;
    const DESIGNS: usize = 6;
    for index in 0..SHARDS {
        let _ = std::fs::remove_file(shard_file(&path, index, SHARDS));
    }
    let input = daemon_session_input(DESIGNS, None);
    let options = DaemonOptions {
        shards: SHARDS,
        cache_path: Some(path.clone()),
        ..DaemonOptions::default()
    };

    let (cold_lines, cold) = run_daemon_session_lines(&input, &options);
    assert_eq!(cold.metrics.cache_hits, 0);
    let (warm_lines, warm) = run_daemon_session_lines(&input, &options);
    assert_eq!(
        warm.metrics.cache_hits, DESIGNS as u64,
        "all keys persisted"
    );
    assert_eq!(warm_lines, cold_lines, "cache hits must not change bytes");

    // Tear exactly one shard's snapshot the way `youtiao chaos` does.
    // The keys are content addresses, so which shard each design lives
    // in is computable outside the daemon; tear the shard holding the
    // first design's key so at least one entry is actually lost.
    let keys: Vec<u64> = (0..DESIGNS)
        .map(|i| {
            DesignRequest::new(ChipRequest::grid("square", 2 + i, 3))
                .cache_key()
                .unwrap()
        })
        .collect();
    let torn = shard_of_key(keys[0], SHARDS);
    let lost = keys
        .iter()
        .filter(|k| shard_of_key(**k, SHARDS) == torn)
        .count() as u64;
    apply_cache_fault(&shard_file(&path, torn, SHARDS), CacheFault::Truncate).unwrap();

    // Without salvage the torn shard fails the whole load, loudly.
    let strict_err = run_design_daemon(
        &options,
        std::io::Cursor::new(input.clone()),
        &mut Vec::new(),
    )
    .err()
    .unwrap();
    assert!(strict_err.to_string().contains("cache"), "{strict_err}");

    // With salvage, only the torn shard restarts cold: its entries
    // recompute, every other shard still hits, and the response bytes
    // are identical to the cold session's.
    let salvage = DaemonOptions {
        cache_salvage: true,
        ..options.clone()
    };
    let (salvage_lines, salvaged) = run_daemon_session_lines(&input, &salvage);
    assert_eq!(salvaged.salvaged_shards, 1, "exactly one shard was torn");
    assert_eq!(salvaged.metrics.cache_hits, DESIGNS as u64 - lost);
    assert_eq!(salvaged.metrics.cache_misses, lost);
    assert_eq!(salvage_lines, cold_lines, "salvage must not change bytes");

    // The salvage run rewrote a healthy snapshot for the torn shard.
    let (_, healed) = run_daemon_session_lines(&input, &options);
    assert_eq!(healed.metrics.cache_hits, DESIGNS as u64);
    for index in 0..SHARDS {
        let _ = std::fs::remove_file(shard_file(&path, index, SHARDS));
    }
}

#[test]
fn daemon_transcripts_are_byte_identical_across_plan_threads() {
    // The intra-plan parallelism knob must be invisible in the response
    // stream: a session planned serially is the reference, and sessions
    // at every other `--plan-threads` value (including auto and values
    // far above the core count) must emit byte-for-byte the same
    // canonical transcript — the daemon-level mirror of the planner's
    // cross-thread-count byte-identity suite. Partitioned chips included
    // via a rows span big enough to cross region boundaries.
    let input = daemon_session_input(5, None);
    let reference = DaemonOptions {
        workers: 1,
        plan_threads: 1,
        ..DaemonOptions::default()
    };
    let (reference_lines, _) = run_daemon_session_lines(&input, &reference);
    for workers in [1usize, 4] {
        for plan_threads in [0usize, 1, 2, 8] {
            let options = DaemonOptions {
                workers,
                plan_threads,
                ..DaemonOptions::default()
            };
            let (lines, report) = run_daemon_session_lines(&input, &options);
            assert_eq!(
                lines, reference_lines,
                "workers={workers} plan_threads={plan_threads}: \
                 transcript diverged from the serial reference"
            );
            assert_eq!(report.metrics.ok, 5);
        }
    }
}

#[test]
fn equal_seed_soak_runs_are_byte_identical() {
    silence_injected_panics();
    let run = |seed: u64| {
        let injector = FaultInjector::new(FaultPlan::smoke(seed));
        let executor: Executor<usize, usize> = injector.wrap(Arc::new(|n, _| Ok(*n)));
        let mut pool = WorkerPool::new(
            executor,
            PoolOptions {
                workers: 8,
                ..Default::default()
            },
        );
        for index in 0..200 {
            pool.submit(index, format!("d{index}"), index, None);
        }
        let mut records = pool.join();
        records.sort_by_key(|r| r.index);
        let lines: Vec<String> = records
            .into_iter()
            .map(|r| serde_json::to_string(&r.canonical()).unwrap())
            .collect();
        (lines.join("\n"), injector.counters())
    };
    let (a, counters_a) = run(5);
    let (b, counters_b) = run(5);
    assert_eq!(a, b, "equal seeds must give byte-identical sorted streams");
    assert_eq!(counters_a, counters_b);
    assert!(counters_a.total() > 0, "smoke plan injected nothing");
    let (c, _) = run(6);
    assert_ne!(a, c, "different seeds produced identical streams");
}
