//! End-to-end tests of the `youtiao` command-line tool.

use std::process::Command;

fn youtiao(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_youtiao"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn topologies_lists_generators() {
    let (ok, stdout, _) = youtiao(&["topologies"]);
    assert!(ok);
    for name in ["square", "heavy-hexagon", "surface", "sycamore"] {
        assert!(stdout.contains(name), "missing {name}");
    }
}

#[test]
fn cost_reports_reduction() {
    let (ok, stdout, _) = youtiao(&[
        "cost",
        "--topology",
        "heavy-square",
        "--rows",
        "3",
        "--cols",
        "3",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("XY lines"));
    assert!(stdout.contains("wiring cost"));
    // The paper's heavy-square row: 21 -> 5 XY lines.
    assert!(stdout.contains("21"), "{stdout}");
    assert!(stdout.contains("4.20x"), "{stdout}");
}

#[test]
fn plan_json_is_valid() {
    let (ok, stdout, _) = youtiao(&[
        "plan",
        "--topology",
        "square",
        "--rows",
        "3",
        "--cols",
        "3",
        "--json",
    ]);
    assert!(ok);
    let parsed: serde_json::Value = serde_json::from_str(&stdout).expect("valid json");
    assert_eq!(parsed["total_qubits"], 9);
    assert_eq!(parsed["xy_lines"].as_array().unwrap().len(), 2);
}

#[test]
fn plan_viz_renders_grid() {
    let (ok, stdout, _) = youtiao(&[
        "plan",
        "--topology",
        "square",
        "--rows",
        "3",
        "--cols",
        "3",
        "--viz",
    ]);
    assert!(ok);
    assert!(stdout.contains("FDM lines"));
    assert!(stdout.contains('A'));
}

#[test]
fn export_then_replan_roundtrip() {
    let dir = std::env::temp_dir().join("youtiao-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("chip.json");
    let path_str = path.to_str().unwrap();
    let (ok, stdout, _) = youtiao(&[
        "export-chip",
        "--topology",
        "hexagon",
        "--rows",
        "2",
        "--cols",
        "2",
        "--out",
        path_str,
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("16 qubits"));
    let (ok2, stdout2, _) = youtiao(&["cost", "--chip", path_str]);
    assert!(ok2, "{stdout2}");
    assert!(stdout2.contains("16 qubits"));
    std::fs::remove_file(path).ok();
}

#[test]
fn unknown_command_fails_with_usage() {
    let (ok, _, stderr) = youtiao(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

#[test]
fn bad_distance_rejected() {
    let (ok, _, stderr) = youtiao(&["plan", "--topology", "surface", "--distance", "4"]);
    assert!(!ok);
    assert!(stderr.contains("odd"));
}
