//! Cross-crate integration tests: the full YOUTIAO pipeline from
//! synthetic chip data to schedules, routed layouts and cost tallies.

use youtiao::chip::surface::SurfaceCode;
use youtiao::chip::topology;
use youtiao::circuit::benchmarks::Benchmark;
use youtiao::circuit::schedule::{schedule_asap, schedule_with_tdm, schedule_with_tdm_strict};
use youtiao::circuit::surface_cycle::{cycle_activity, cycles_circuit};
use youtiao::circuit::transpile::{is_hardware_compatible, transpile_snake};
use youtiao::circuit::FidelityEstimator;
use youtiao::core::{AcharyaTdm, GoogleBaseline, YoutiaoPlanner};
use youtiao::cost::WiringTally;
use youtiao::noise::data::{synthesize, CrosstalkKind, SynthConfig};
use youtiao::noise::fit::{fit_crosstalk_model, FitConfig};

/// Data synthesis → model fit → plan → schedule → fidelity, end to end.
#[test]
fn full_pipeline_on_target_chip() {
    let chip = topology::square_grid(6, 6);
    let samples = synthesize(&chip, CrosstalkKind::Xy, &SynthConfig::xy(), 7);
    let model = fit_crosstalk_model(&samples, &FitConfig::fast()).expect("fit succeeds");
    let plan = YoutiaoPlanner::new(&chip)
        .with_crosstalk_model(&model)
        .plan()
        .expect("plan succeeds");

    // Wiring savings hold.
    let g = WiringTally::google(&chip);
    let y = WiringTally::youtiao(&plan);
    assert!(
        y.coax_lines() * 2 < g.coax_lines(),
        "expected >2x coax reduction"
    );
    assert!(y.cost_kusd() < g.cost_kusd());

    // Every benchmark schedules under the plan with bounded overhead.
    let est = FidelityEstimator::paper();
    for b in Benchmark::ALL {
        let physical = transpile_snake(&b.generate(16), &chip).unwrap().circuit;
        assert!(is_hardware_compatible(&physical, &chip));
        let base = schedule_asap(&physical, &chip).unwrap();
        let tdm = schedule_with_tdm(&physical, &chip, &plan).unwrap();
        assert!(tdm.two_qubit_depth() >= base.two_qubit_depth());
        assert!(
            tdm.two_qubit_depth() <= base.two_qubit_depth() * 2,
            "{}: {} vs {}",
            b.name(),
            tdm.two_qubit_depth(),
            base.two_qubit_depth()
        );
        let f = est.estimate(&tdm, &chip).total();
        assert!((0.0..=1.0).contains(&f));
    }
}

/// The three comparison systems order as the paper reports on parallel
/// workloads: Google <= YOUTIAO <= Acharya in depth.
#[test]
fn scheme_ordering_on_parallel_workload() {
    let chip = topology::square_grid(5, 5);
    let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
    let acharya = AcharyaTdm::for_chip(&chip);
    let google = GoogleBaseline::for_chip(&chip);

    let physical = transpile_snake(&Benchmark::Vqc.generate(25), &chip)
        .unwrap()
        .circuit;
    let d_google = schedule_with_tdm(&physical, &chip, &google)
        .unwrap()
        .two_qubit_depth();
    let d_yt = schedule_with_tdm(&physical, &chip, &plan)
        .unwrap()
        .two_qubit_depth();
    let d_ach = schedule_with_tdm(&physical, &chip, &acharya)
        .unwrap()
        .two_qubit_depth();
    assert!(d_google <= d_yt);
    assert!(d_yt < d_ach, "youtiao {d_yt} should beat acharya {d_ach}");
}

/// Surface-code case study: activity-aware grouping keeps the QEC cycle
/// overhead within one extra window per cycle even under the strict
/// (three-device) pulse model.
#[test]
fn surface_code_cycle_overhead_is_bounded() {
    let code = SurfaceCode::rotated(5);
    let chip = code.chip();
    let activity = cycle_activity(&code);
    let plan = YoutiaoPlanner::new(chip)
        .with_activity(&activity)
        .plan()
        .unwrap();

    let cycles = 5;
    let circuit = cycles_circuit(&code, cycles).unwrap();
    let base = schedule_asap(&circuit, chip).unwrap().two_qubit_depth();
    let tdm = schedule_with_tdm_strict(&circuit, chip, &plan)
        .unwrap()
        .two_qubit_depth();
    assert_eq!(base, 4 * cycles);
    assert!(
        tdm <= base + cycles,
        "at most one extra window per cycle: {tdm} vs {base}"
    );

    // And the wiring shrinks.
    let g = WiringTally::google(chip);
    let y = WiringTally::youtiao(&plan);
    assert!(y.z_lines < g.z_lines);
    assert!(y.xy_lines * 4 <= g.xy_lines);
}

/// Frequency plans respect the band and separate in-line neighbours for
/// every paper-suite topology.
#[test]
fn frequency_plans_are_sane_across_topologies() {
    for chip in topology::paper_suite() {
        let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
        let fp = plan.frequency_plan();
        for q in chip.qubit_ids() {
            assert!(
                (4.0..=7.0).contains(&fp.frequency_ghz(q)),
                "{}",
                chip.name()
            );
        }
        for line in plan.fdm_lines() {
            let qs = line.qubits();
            for i in 0..qs.len() {
                for j in (i + 1)..qs.len() {
                    let df = (fp.frequency_ghz(qs[i]) - fp.frequency_ghz(qs[j])).abs();
                    assert!(df > 0.1, "{}: in-line spacing {df} GHz", chip.name());
                }
            }
        }
    }
}
