//! Failure-injection tests: every subsystem must fail loudly and
//! precisely when handed broken inputs, never silently produce a wrong
//! wiring plan.

use youtiao::chip::{topology, ChipBuilder, DeviceId, Position, TopologyKind};
use youtiao::circuit::schedule::{schedule_with_tdm_strict, CzPulseModel, SharedLineConstraint};
use youtiao::circuit::{Circuit, CircuitError, Gate};
use youtiao::core::{FreqConfig, PlanError, PlannerConfig, YoutiaoPlanner};
use youtiao::noise::fit::{fit_crosstalk_model, FitConfig, FitError};
use youtiao::route::channel::{channel_route, ChannelConfig};
use youtiao::route::router::{NetSpec, RouteError};

/// A deliberately illegal grouping: a qubit shares its DEMUX with its
/// own coupler, so any CZ through that coupler can never fire.
struct SabotagedGrouping {
    qubit: DeviceId,
    coupler: DeviceId,
}

impl SharedLineConstraint for SabotagedGrouping {
    fn group_of(&self, device: DeviceId) -> Option<usize> {
        (device == self.qubit || device == self.coupler).then_some(0)
    }
}

#[test]
fn sabotaged_grouping_reports_the_unrealizable_gate() {
    let chip = topology::linear(3);
    let coupler = chip.coupler_between(0u32.into(), 1u32.into()).unwrap();
    let constraint = SabotagedGrouping {
        qubit: DeviceId::Qubit(0u32.into()),
        coupler: DeviceId::Coupler(coupler),
    };
    let mut c = Circuit::new(3);
    c.push2(Gate::Cz, 0u32.into(), 1u32.into()).unwrap();
    let err = schedule_with_tdm_strict(&c, &chip, &constraint).unwrap_err();
    match err {
        CircuitError::UnrealizableGate { qubits } => {
            assert_eq!(qubits, (0u32.into(), 1u32.into()));
        }
        other => panic!("expected UnrealizableGate, got {other:?}"),
    }
    // The coupler-only model is also broken by this sabotage at schedule
    // time only if the coupler's window conflicts; the *legality* rule in
    // the planner is what prevents it from ever being generated.
    let _ = CzPulseModel::CouplerOnly;
}

#[test]
fn degenerate_frequency_band_is_rejected_not_mangled() {
    let chip = topology::square_grid(3, 3);
    let config = PlannerConfig {
        freq: FreqConfig {
            band_ghz: (5.0, 5.0),
            ..Default::default()
        },
        ..Default::default()
    };
    let err = YoutiaoPlanner::new(&chip)
        .with_config(config)
        .plan()
        .unwrap_err();
    assert!(matches!(err, PlanError::InvalidConfig(_)));
}

#[test]
fn fitting_garbage_data_fails_cleanly() {
    // All-NaN measurements: no usable samples.
    let samples: Vec<youtiao::noise::data::CrosstalkSample> = (0..10)
        .map(|i| youtiao::noise::data::CrosstalkSample {
            target: (i as u32).into(),
            spectator: ((i + 1) as u32).into(),
            d_phy: f64::NAN,
            d_top: 1.0,
            value: 0.1,
        })
        .collect();
    let err = fit_crosstalk_model(&samples, &FitConfig::paper()).unwrap_err();
    assert!(matches!(
        err,
        FitError::NotEnoughSamples { available: 0, .. }
    ));
}

#[test]
fn channel_router_reports_overflowing_channel() {
    // A 1x8 strip with 40 nets per qubit cannot fit through the two
    // boundary channels at a huge pitch.
    let chip = topology::square_grid(1, 8);
    let mut nets = Vec::new();
    for q in chip.qubits() {
        for k in 0..40 {
            nets.push(NetSpec::chain(
                format!("n{}-{k}", q.id()),
                vec![q.position()],
            ));
        }
    }
    let cfg = ChannelConfig {
        pitch_mm: 0.4,
        margin_mm: 1.0,
        ..Default::default()
    };
    let err = channel_route(&chip, &nets, &cfg);
    assert!(
        matches!(
            err,
            Err(RouteError::Unroutable { .. }) | Err(RouteError::OutOfInterfaces)
        ),
        "{err:?}"
    );
}

#[test]
fn disconnected_chip_plans_but_flags_unreachable_pairs() {
    // Two islands: planning succeeds (FDM grouping tolerates infinite
    // distances), and the unreachable pairs carry zero crosstalk rather
    // than poisoning the optimizer with NaN.
    let chip = ChipBuilder::new("islands", TopologyKind::Custom)
        .qubit(Position::new(0.0, 0.0))
        .qubit(Position::new(1.0, 0.0))
        .qubit(Position::new(10.0, 0.0))
        .qubit(Position::new(11.0, 0.0))
        .coupler(0u32.into(), 1u32.into())
        .coupler(2u32.into(), 3u32.into())
        .build()
        .unwrap();
    let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
    for q in chip.qubit_ids() {
        assert!(plan.frequency_plan().frequency_ghz(q).is_finite());
    }
}

#[test]
fn oversized_circuit_rejected_by_simulator() {
    let circuit = Circuit::new(30);
    let err = youtiao::sim::StateVector::run(&circuit).unwrap_err();
    assert!(matches!(err, CircuitError::ChipTooSmall { .. }));
}

#[test]
fn transpiling_wider_than_chip_fails() {
    let chip = topology::square_grid(2, 2);
    let logical = youtiao::circuit::benchmarks::qft(9);
    let err = youtiao::circuit::transpile::transpile_snake(&logical, &chip).unwrap_err();
    assert!(matches!(err, CircuitError::ChipTooSmall { needed: 9, .. }));
}
