//! Multi-die differential tests: a 1×1 chiplet array is the monolithic
//! flow (same plans, same bands, same tallies), multi-die plans are
//! byte-identical at any `plan_threads`, and the 2×2 heavy-hex array —
//! the smallest array with links on both axes — plans end-to-end under
//! full validation.

use youtiao::chip::multi::{LinkTopology, MultiDieChip};
use youtiao::chip::{topology, Chip};
use youtiao::core::{PlanSummary, PlannerConfig, YoutiaoPlanner};
use youtiao::flow::{design_chip, DesignOptions};
use youtiao::multi::{design_multi_chip, MultiDesignOptions};

/// The paper's two main fabrics, small enough for model-backed runs.
fn fabrics() -> Vec<Chip> {
    vec![topology::square_grid(4, 4), topology::heavy_hexagon(1, 2)]
}

#[test]
fn one_by_one_array_is_the_monolithic_flow() {
    // Dies are verbatim template clones planned in template-local
    // coordinates, so a 1×1 array must reproduce the monolithic plan
    // bit for bit — structure-only and model-backed alike.
    for chip in fabrics() {
        let mdc = MultiDieChip::tile(&chip, 1, 1, LinkTopology::Grid).unwrap();

        // Model-backed, versus the monolithic design flow (both sides
        // characterize from the same default seed).
        let mono = design_chip(
            &chip,
            &DesignOptions {
                routing: None,
                ..Default::default()
            },
        )
        .unwrap();
        let multi = design_multi_chip(
            &mdc,
            &MultiDesignOptions {
                validate: true,
                ..Default::default()
            },
        )
        .unwrap();
        let ctx = chip.name();
        assert_eq!(multi.outcome.dies.len(), 1, "{ctx}");
        assert_eq!(multi.outcome.dies[0].plan, mono.plan, "{ctx}");
        assert_eq!(multi.dedicated, mono.dedicated, "{ctx}");
        assert_eq!(multi.multiplexed, mono.multiplexed, "{ctx}");

        // Spell out the per-band agreement the plan equality implies:
        // XY FDM lines and readout feedlines carry the same qubits at
        // the same frequencies.
        let m = PlanSummary::from_plan(&mono.plan);
        let s = multi.summary(&mdc).plan;
        assert_eq!(s.xy_lines, m.xy_lines, "{ctx}: XY band");
        assert_eq!(s.readout_lines, m.readout_lines, "{ctx}: readout band");
        assert_eq!(s.z_lines, m.z_lines, "{ctx}: Z groups");

        // Structure-only, versus a bare planner run.
        let plan = YoutiaoPlanner::new(&chip)
            .with_config(PlannerConfig::default())
            .plan()
            .unwrap();
        let multi = design_multi_chip(
            &mdc,
            &MultiDesignOptions {
                use_model: false,
                validate: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(multi.outcome.dies[0].plan, plan, "{ctx}: structure-only");
    }
}

#[test]
fn multi_plans_are_byte_identical_across_plan_threads() {
    let die = topology::heavy_hexagon(1, 2);
    let mdc = MultiDieChip::tile(&die, 2, 2, LinkTopology::Grid).unwrap();
    let run = |plan_threads: usize| {
        let report = design_multi_chip(
            &mdc,
            &MultiDesignOptions {
                planner: PlannerConfig {
                    plan_threads,
                    ..Default::default()
                },
                validate: true,
                ..Default::default()
            },
        )
        .unwrap();
        let json = serde_json::to_string(&report.summary(&mdc)).unwrap();
        (report.outcome, json)
    };
    let (serial, serial_json) = run(1);
    let (parallel, parallel_json) = run(4);
    assert_eq!(serial, parallel, "outcomes must not depend on plan_threads");
    assert_eq!(
        serial_json, parallel_json,
        "summaries must serialize identically"
    );
}

#[test]
fn two_by_two_heavy_hex_validates_end_to_end() {
    let die = topology::heavy_hexagon(1, 2);
    let mdc = MultiDieChip::tile(&die, 2, 2, LinkTopology::Grid).unwrap();
    let report = design_multi_chip(
        &mdc,
        &MultiDesignOptions {
            validate: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(report.outcome.dies.len(), 4);
    assert_eq!(report.outcome.reconcile.unresolved, 0);
    assert!(report.coax_reduction() > 2.0, "{}", report.coax_reduction());

    // The combined summary renumbers every die into the cryostat-global
    // id space: each qubit appears on exactly one XY line.
    let summary = report.summary(&mdc);
    assert_eq!(summary.plan.total_qubits, 4 * die.num_qubits());
    let mut seen: Vec<u32> = summary
        .plan
        .xy_lines
        .iter()
        .flat_map(|l| l.qubits.iter().copied())
        .collect();
    seen.sort_unstable();
    assert_eq!(seen, (0..4 * die.num_qubits() as u32).collect::<Vec<u32>>());
}
