//! Differential suite for the incremental repair pass (ISSUE 6).
//!
//! Pins the `youtiao-repair` contracts end to end over seeded sweeps:
//!
//! * seeded crosstalk drift repairs locally, keeps the untouched plan
//!   structure byte-identical, is deterministic, and is quality-equal
//!   to a full replan under the DESIGN.md §4g tie-break contract;
//! * structural deltas (dead couplers) fall back byte-identical to
//!   planning the new snapshot from scratch;
//! * activity-only deltas never touch the frequency plans;
//! * the fallback threshold is an exact strict-greater boundary;
//! * an empty change set returns the base plan unchanged.

use youtiao::chip::spec::ChipSpec;
use youtiao::chip::{topology, Chip, DeviceId, QubitId};
use youtiao::core::tdm::{brickwork_activity, ActivityProfile};
use youtiao::core::{PlanContext, PlannerConfig, RefineConfig, WiringPlan, YoutiaoPlanner};
use youtiao::repair::{
    diff_inputs, repair_plan, replan_from_snapshot, PlanInputs, QualityReport, RepairConfig,
    RepairOutcome,
};

/// The same tolerance the bench harness and CLI use for the tie-break.
const TOLERANCE: f64 = 0.05;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn snapshot(n: usize) -> (Chip, PlanContext, ActivityProfile, PlannerConfig) {
    let chip = topology::square_grid(n, n);
    let config = PlannerConfig {
        refine: Some(RefineConfig::default()),
        ..Default::default()
    };
    let ctx = PlanContext::build(&chip, None, config.weights);
    let activity = brickwork_activity(&chip);
    (chip, ctx, activity, config)
}

fn base_plan(
    chip: &Chip,
    ctx: &PlanContext,
    activity: &ActivityProfile,
    config: &PlannerConfig,
) -> WiringPlan {
    YoutiaoPlanner::new(chip)
        .with_activity(activity)
        .with_config(config.clone())
        .with_context(ctx)
        .plan()
        .expect("base plan must succeed")
}

/// A seeded in-range drift entry: two distinct qubits and a crosstalk
/// value in `[1e-3, 1e-2)`.
fn seeded_drift(seed: u64, num_qubits: usize) -> (QubitId, QubitId, f64) {
    let n = num_qubits as u64;
    let h1 = splitmix64(seed);
    let h2 = splitmix64(h1);
    let h3 = splitmix64(h2);
    let a = h1 % n;
    let b = (a + 1 + h2 % (n - 1)) % n;
    let xtalk = 1e-3 + (h3 % 9_000) as f64 * 1e-6;
    (
        QubitId::new(a.min(b) as u32),
        QubitId::new(a.max(b) as u32),
        xtalk,
    )
}

#[test]
fn seeded_drift_sweep_is_quality_equal_and_deterministic() {
    let (chip, ctx, activity, config) = snapshot(6);
    let base = base_plan(&chip, &ctx, &activity, &config);
    let old = PlanInputs {
        chip: &chip,
        xtalk: ctx.crosstalk(),
        activity: &activity,
    };
    for seed in 0..8u64 {
        let (a, b, value) = seeded_drift(seed, chip.num_qubits());
        let mut drifted = ctx.crosstalk().clone();
        drifted.set(a, b, value);
        let new = PlanInputs {
            chip: &chip,
            xtalk: &drifted,
            activity: &activity,
        };
        let changes = diff_inputs(&old, &new);
        assert_eq!(changes.len(), 1, "seed {seed}: one drifted entry");
        assert!(!changes.structural(), "seed {seed}");

        let cfg = RepairConfig::default();
        let report =
            repair_plan(&base, &ctx, &new, &changes, &config, &cfg).expect("repair must succeed");
        assert_eq!(
            report.outcome,
            RepairOutcome::Repaired,
            "seed {seed}: a single drifted entry repairs locally"
        );
        assert!(report.invalidated_rows >= 2, "seed {seed}");
        assert!(
            report.validation.as_ref().expect("validated").is_clean(),
            "seed {seed}"
        );
        // Untouched structure stays byte-identical.
        assert_eq!(report.plan.fdm_lines(), base.fdm_lines(), "seed {seed}");
        assert_eq!(
            report.plan.readout_lines(),
            base.readout_lines(),
            "seed {seed}"
        );
        assert_eq!(report.plan.partition(), base.partition(), "seed {seed}");
        // Deterministic: a second pass is byte-identical.
        let again =
            repair_plan(&base, &ctx, &new, &changes, &config, &cfg).expect("repair must succeed");
        assert_eq!(report.plan, again.plan, "seed {seed}");
        assert_eq!(report.context, again.context, "seed {seed}");
        // Quality-equal to a full replan of the drifted snapshot.
        let (replanned, _) = replan_from_snapshot(&new, &config).expect("replan must succeed");
        let quality = QualityReport::compare(&report.plan, &replanned, &drifted, &activity);
        assert!(
            quality.quality_equal(TOLERANCE),
            "seed {seed}: tie-break missed\n{}",
            quality.render()
        );
        // The patched context matches a fresh build for the snapshot.
        let fresh = PlanContext::from_matrix(&chip, config.weights, drifted.clone());
        assert_eq!(report.context, fresh, "seed {seed}");
    }
}

#[test]
fn dead_coupler_sweep_falls_back_byte_identically() {
    let (chip, ctx, activity, config) = snapshot(5);
    let base = base_plan(&chip, &ctx, &activity, &config);
    let old = PlanInputs {
        chip: &chip,
        xtalk: ctx.crosstalk(),
        activity: &activity,
    };
    for seed in 0..4u64 {
        let victim = (splitmix64(seed ^ 0xdead) % chip.num_couplers() as u64) as usize;
        let mut spec = ChipSpec::from_chip(&chip);
        spec.couplers.remove(victim);
        let mutated = spec.to_chip().expect("mutated chip must build");
        let mut_ctx = PlanContext::build(&mutated, None, config.weights);
        let new = PlanInputs {
            chip: &mutated,
            xtalk: mut_ctx.crosstalk(),
            activity: &activity,
        };
        let changes = diff_inputs(&old, &new);
        assert!(changes.structural(), "seed {seed}: coupler loss");

        let report = repair_plan(
            &base,
            &ctx,
            &new,
            &changes,
            &config,
            &RepairConfig::default(),
        )
        .expect("fallback must succeed");
        assert!(
            matches!(report.outcome, RepairOutcome::FullReplan { .. }),
            "seed {seed}: structural deltas replan"
        );
        assert_eq!(report.invalidated_rows, 0, "seed {seed}");
        let (replanned, replanned_ctx) =
            replan_from_snapshot(&new, &config).expect("replan must succeed");
        assert_eq!(report.plan, replanned, "seed {seed}: byte-identical plan");
        assert_eq!(report.context, replanned_ctx, "seed {seed}");
        assert!(
            report.validation.as_ref().expect("validated").is_clean(),
            "seed {seed}"
        );
    }
}

#[test]
fn activity_delta_sweep_keeps_frequency_plans_byte_identical() {
    let (chip, ctx, activity, config) = snapshot(5);
    let base = base_plan(&chip, &ctx, &activity, &config);
    let old = PlanInputs {
        chip: &chip,
        xtalk: ctx.crosstalk(),
        activity: &activity,
    };
    let devices: Vec<DeviceId> = chip.device_ids().collect();
    for seed in 0..6u64 {
        let mut shifted = activity.clone();
        let device = devices[(splitmix64(seed ^ 0xac71) % devices.len() as u64) as usize];
        let prev = shifted.get(&device).copied().unwrap_or(0);
        shifted.insert(device, prev ^ 0b10);
        let new = PlanInputs {
            chip: &chip,
            xtalk: ctx.crosstalk(),
            activity: &shifted,
        };
        let changes = diff_inputs(&old, &new);
        assert_eq!(changes.len(), 1, "seed {seed}: one activity delta");

        let report = repair_plan(
            &base,
            &ctx,
            &new,
            &changes,
            &config,
            &RepairConfig::default(),
        )
        .expect("repair must succeed");
        assert_eq!(report.outcome, RepairOutcome::Repaired, "seed {seed}");
        assert_eq!(
            report.invalidated_rows, 0,
            "seed {seed}: no kernel rows for activity"
        );
        // Activity deltas never touch either frequency band.
        assert_eq!(
            report.plan.frequency_plan(),
            base.frequency_plan(),
            "seed {seed}"
        );
        assert_eq!(
            report.plan.readout_frequency_plan(),
            base.readout_frequency_plan(),
            "seed {seed}"
        );
        assert_eq!(report.plan.fdm_lines(), base.fdm_lines(), "seed {seed}");
        assert!(
            report.validation.as_ref().expect("validated").is_clean(),
            "seed {seed}"
        );
    }
}

#[test]
fn fallback_threshold_is_a_strict_boundary() {
    let (chip, ctx, activity, config) = snapshot(4);
    let base = base_plan(&chip, &ctx, &activity, &config);
    // Drift q8~q9: both qubits plus their incident couplers are dirty.
    let (a, b) = (QubitId::new(8), QubitId::new(9));
    let mut drifted = ctx.crosstalk().clone();
    drifted.set(a, b, 4e-3);
    let old = PlanInputs {
        chip: &chip,
        xtalk: ctx.crosstalk(),
        activity: &activity,
    };
    let new = PlanInputs {
        chip: &chip,
        xtalk: &drifted,
        activity: &activity,
    };
    let changes = diff_inputs(&old, &new);

    let mut dirty = std::collections::HashSet::new();
    for &q in &[a, b] {
        dirty.insert(DeviceId::Qubit(q));
        for &c in chip.couplers_of(q) {
            dirty.insert(DeviceId::Coupler(c));
        }
    }
    let fraction = dirty.len() as f64 / (chip.num_qubits() + chip.num_couplers()) as f64;

    // Exactly at the fraction: the trigger is strictly greater-than.
    let at = RepairConfig {
        fallback_fraction: fraction,
        ..Default::default()
    };
    let report =
        repair_plan(&base, &ctx, &new, &changes, &config, &at).expect("repair must succeed");
    assert_eq!(report.outcome, RepairOutcome::Repaired);

    // Just below: the same change set falls back…
    let below = RepairConfig {
        fallback_fraction: fraction - 1e-9,
        ..Default::default()
    };
    let report =
        repair_plan(&base, &ctx, &new, &changes, &config, &below).expect("repair must succeed");
    assert_eq!(
        report.outcome,
        RepairOutcome::FullReplan {
            reason: "change set exceeds the fallback threshold"
        }
    );
    // …byte-identical to the from-scratch replan.
    let (replanned, _) = replan_from_snapshot(&new, &config).expect("replan must succeed");
    assert_eq!(report.plan, replanned);

    // Zero never repairs locally.
    let zero = RepairConfig {
        fallback_fraction: 0.0,
        ..Default::default()
    };
    let report =
        repair_plan(&base, &ctx, &new, &changes, &config, &zero).expect("repair must succeed");
    assert!(matches!(report.outcome, RepairOutcome::FullReplan { .. }));
    assert_eq!(report.plan, replanned);
}

#[test]
fn empty_change_set_returns_the_base_unchanged() {
    let (chip, ctx, activity, config) = snapshot(4);
    let base = base_plan(&chip, &ctx, &activity, &config);
    let old = PlanInputs {
        chip: &chip,
        xtalk: ctx.crosstalk(),
        activity: &activity,
    };
    let new = PlanInputs {
        chip: &chip,
        xtalk: ctx.crosstalk(),
        activity: &activity,
    };
    let changes = diff_inputs(&old, &new);
    assert!(changes.is_empty());

    let report = repair_plan(
        &base,
        &ctx,
        &new,
        &changes,
        &config,
        &RepairConfig::default(),
    )
    .expect("repair must succeed");
    assert_eq!(report.outcome, RepairOutcome::Unchanged);
    assert_eq!(report.plan, base);
    assert_eq!(report.context, ctx);
    assert_eq!(report.invalidated_rows, 0);
    assert!(report.validation.is_none());
}
