//! Integration tests for on-chip routing against real wiring plans.

use youtiao::chip::topology;
use youtiao::core::YoutiaoPlanner;
use youtiao::route::channel::{channel_route, ChannelConfig};
use youtiao::route::router::{route_chip, NetSpec, RouteConfig};

fn qubit_positions(chip: &youtiao::chip::Chip) -> Vec<youtiao::chip::Position> {
    chip.qubits().map(|q| q.position()).collect()
}

/// The A* maze router handles a YOUTIAO plan's sparse netlist on a small
/// chip, DRC-clean.
#[test]
fn maze_router_routes_youtiao_plan() {
    let chip = topology::square_grid(2, 3);
    let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
    let positions = qubit_positions(&chip);
    let mut nets = Vec::new();
    for (i, line) in plan.fdm_lines().iter().enumerate() {
        let terminals = line
            .qubits()
            .iter()
            .map(|&q| positions[q.index()])
            .collect();
        nets.push(NetSpec::chain(format!("xy{i}"), terminals));
    }
    let result = route_chip(&chip, &nets, &RouteConfig::coarse()).unwrap();
    assert_eq!(result.nets.len(), nets.len());
    assert!(result.drc.is_clean(), "{:?}", result.drc.violations());
    assert!(result.routing_area_mm2 > 0.0);
}

/// The channel router handles the dense dedicated netlist of every
/// paper-suite topology and reports in-capacity channels.
#[test]
fn channel_router_handles_dense_netlists() {
    for chip in topology::paper_suite() {
        let mut nets = Vec::new();
        for q in chip.qubits() {
            nets.push(NetSpec::chain(format!("xy-{}", q.id()), vec![q.position()]));
            nets.push(NetSpec::chain(format!("z-{}", q.id()), vec![q.position()]));
        }
        for c in chip.couplers() {
            nets.push(NetSpec::chain(format!("zc-{}", c.id()), vec![c.position()]));
        }
        let cfg = ChannelConfig {
            margin_mm: 5.0,
            ..Default::default()
        };
        let result =
            channel_route(&chip, &nets, &cfg).unwrap_or_else(|e| panic!("{}: {e}", chip.name()));
        assert_eq!(result.routing.nets.len(), nets.len(), "{}", chip.name());
        for ch in &result.channels {
            assert!(ch.used <= ch.capacity, "{} channel overflow", chip.name());
        }
    }
}

/// Multiplexing reduces routed area: the YOUTIAO netlist occupies less
/// metal than the dedicated netlist on the same (scaled) die.
#[test]
fn multiplexed_netlist_uses_less_metal() {
    let chip = topology::heavy_square(3, 3);
    let plan = YoutiaoPlanner::new(&chip).plan().unwrap();
    let positions = qubit_positions(&chip);

    let mut dedicated = Vec::new();
    for q in chip.qubits() {
        dedicated.push(NetSpec::chain(format!("xy-{}", q.id()), vec![q.position()]));
        dedicated.push(NetSpec::chain(format!("z-{}", q.id()), vec![q.position()]));
    }
    for c in chip.couplers() {
        dedicated.push(NetSpec::chain(format!("zc-{}", c.id()), vec![c.position()]));
    }

    let mut multiplexed = Vec::new();
    for (i, line) in plan.fdm_lines().iter().enumerate() {
        let terminals = line
            .qubits()
            .iter()
            .map(|&q| positions[q.index()])
            .collect();
        multiplexed.push(NetSpec::chain(format!("xy{i}"), terminals));
    }
    for (i, group) in plan.tdm_groups().iter().enumerate() {
        let terminals = group
            .devices()
            .iter()
            .map(|&d| chip.device_position(d))
            .collect();
        multiplexed.push(NetSpec::chain(format!("z{i}"), terminals));
    }

    let cfg = ChannelConfig {
        margin_mm: 5.0,
        ..Default::default()
    };
    let dense = channel_route(&chip, &dedicated, &cfg).unwrap();
    let sparse = channel_route(&chip, &multiplexed, &cfg).unwrap();
    assert!(
        sparse.routing.routing_area_mm2 < dense.routing.routing_area_mm2,
        "multiplexed {} vs dedicated {}",
        sparse.routing.routing_area_mm2,
        dense.routing.routing_area_mm2
    );
    assert!(sparse.routing.num_interfaces < dense.routing.num_interfaces);
}
