//! End-to-end tests of the serving layer: determinism across worker
//! counts, warm-cache reuse, structured per-job failures, and the
//! `youtiao batch` CLI.

use std::process::Command;

use serde::Value;
use youtiao::serve::{
    parse_requests, run_design_batch, run_design_batch_with_cache, BatchOptions, PlanCache,
};

/// The standard sweep used across tests: a few small distinct chips,
/// each appearing once, with explicit ids.
fn sweep_jsonl() -> String {
    [
        r#"{"id":"sq","chip":{"topology":"square","rows":3,"cols":3}}"#,
        r#"{"id":"hex","chip":{"topology":"hexagon","rows":2,"cols":2},"theta":2.0}"#,
        r#"{"id":"ring","chip":{"topology":"ring","size":8},"routing":false}"#,
        r#"{"id":"lin","chip":{"topology":"linear","size":6},"one_to_eight":true}"#,
        r#"{"id":"surf","chip":{"topology":"surface","distance":3},"routing":false}"#,
    ]
    .join("\n")
}

/// Runs the sweep at a given worker count and returns `(metrics_ok,
/// id -> serialized result)` sorted by id.
fn run_sweep(jobs: usize) -> Vec<(String, String)> {
    let requests = parse_requests(&sweep_jsonl()).unwrap();
    let options = BatchOptions {
        jobs,
        ..Default::default()
    };
    let mut out = Vec::new();
    let metrics = run_design_batch(&requests, &options, &mut out).unwrap();
    assert_eq!(metrics.ok, requests.len(), "all sweep jobs succeed");
    let mut results: Vec<(String, String)> = std::str::from_utf8(&out)
        .unwrap()
        .lines()
        .map(|line| {
            let v: Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["status"], "Ok");
            (
                v["id"].as_str().unwrap().to_string(),
                serde_json::to_string(&v["result"]).unwrap(),
            )
        })
        .collect();
    results.sort();
    results
}

#[test]
fn parallel_results_match_serial_byte_for_byte() {
    let serial = run_sweep(1);
    let parallel = run_sweep(8);
    assert_eq!(serial.len(), 5);
    for ((id_a, result_a), (id_b, result_b)) in serial.iter().zip(&parallel) {
        assert_eq!(id_a, id_b);
        assert_eq!(result_a, result_b, "job {id_a} differs across --jobs");
    }
}

#[test]
fn warm_cache_answers_everything_identically() {
    let requests = parse_requests(&sweep_jsonl()).unwrap();
    let options = BatchOptions::default();
    let cache = PlanCache::new(64);

    let mut cold_out = Vec::new();
    let cold = run_design_batch_with_cache(&requests, &options, &cache, &mut cold_out).unwrap();
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(cold.cache_misses, requests.len() as u64);

    let mut warm_out = Vec::new();
    let warm = run_design_batch_with_cache(&requests, &options, &cache, &mut warm_out).unwrap();
    assert_eq!(
        warm.cache_hits,
        requests.len() as u64,
        "every job a cache hit"
    );
    assert!((warm.cache_hit_rate - 1.0).abs() < 1e-9);

    let result_by_id = |bytes: &[u8]| -> Vec<(String, String)> {
        let mut rows: Vec<(String, String)> = std::str::from_utf8(bytes)
            .unwrap()
            .lines()
            .map(|line| {
                let v: Value = serde_json::from_str(line).unwrap();
                (
                    v["id"].as_str().unwrap().to_string(),
                    serde_json::to_string(&v["result"]).unwrap(),
                )
            })
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(result_by_id(&cold_out), result_by_id(&warm_out));

    for line in std::str::from_utf8(&warm_out).unwrap().lines() {
        let v: Value = serde_json::from_str(line).unwrap();
        assert_eq!(v["cache_hit"], true);
        assert_eq!(v["attempts"], 0, "hits never touch a worker");
    }
}

#[test]
fn failures_surface_as_structured_records_not_aborts() {
    let text = [
        r#"{"id":"good","chip":{"topology":"square","rows":2,"cols":2},"routing":false}"#,
        r#"{"id":"bad-topology","chip":{"topology":"moebius"}}"#,
        r#"{"id":"bad-config","chip":{"topology":"square"},"fdm_capacity":0,"routing":false}"#,
        r#"{"id":"too-slow","chip":{"topology":"square","rows":4,"cols":4},"deadline_ms":0}"#,
    ]
    .join("\n");
    let requests = parse_requests(&text).unwrap();
    let mut out = Vec::new();
    let metrics = run_design_batch(&requests, &BatchOptions::default(), &mut out).unwrap();

    assert_eq!(metrics.jobs, 4);
    assert_eq!(metrics.ok, 1);
    assert_eq!(metrics.errors, 3);
    assert_eq!(metrics.timeouts, 1);

    let mut kinds = std::collections::HashMap::new();
    for line in std::str::from_utf8(&out).unwrap().lines() {
        let v: Value = serde_json::from_str(line).unwrap();
        let id = v["id"].as_str().unwrap().to_string();
        if v["status"] == "Error" {
            assert!(v["error"]["message"].as_str().is_some());
            kinds.insert(id, v["error"]["kind"].as_str().unwrap().to_string());
        } else {
            kinds.insert(id, "Ok".to_string());
        }
    }
    assert_eq!(kinds["good"], "Ok");
    assert_eq!(kinds["bad-topology"], "InvalidRequest");
    assert_eq!(kinds["bad-config"], "Plan");
    assert_eq!(kinds["too-slow"], "Timeout");
}

fn youtiao(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_youtiao"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn cli_batch_streams_jsonl_and_warms_cache_file() {
    let dir = std::env::temp_dir().join(format!("youtiao-batch-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let jobs = dir.join("jobs.jsonl");
    let results = dir.join("results.jsonl");
    let cache = dir.join("plans.cache.json");
    std::fs::write(&jobs, sweep_jsonl()).unwrap();

    let (ok, stdout, stderr) = youtiao(&[
        "batch",
        "--in",
        jobs.to_str().unwrap(),
        "--out",
        results.to_str().unwrap(),
        "--jobs",
        "4",
        "--cache",
        cache.to_str().unwrap(),
    ]);
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(
        stderr.contains("batch:"),
        "human metrics on stderr: {stderr}"
    );
    let text = std::fs::read_to_string(&results).unwrap();
    assert_eq!(text.lines().count(), 5);
    for line in text.lines() {
        let v: Value = serde_json::from_str(line).unwrap();
        assert_eq!(v["status"], "Ok", "{line}");
        assert!(v["result"]["plan"].as_object().is_some(), "{line}");
    }

    // Second run over the same jobs with the persisted cache: all hits,
    // reported in machine-readable metrics.
    let (ok, _, stderr) = youtiao(&[
        "batch",
        "--in",
        jobs.to_str().unwrap(),
        "--out",
        results.to_str().unwrap(),
        "--cache",
        cache.to_str().unwrap(),
        "--metrics-json",
    ]);
    assert!(ok, "{stderr}");
    let metrics: Value = serde_json::from_str(&stderr).expect("stderr is metrics JSON");
    assert_eq!(metrics["jobs"], 5);
    assert_eq!(metrics["cache_hits"], 5);
    assert_eq!(metrics["ok"], 5);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_batch_requires_input() {
    let (ok, _, stderr) = youtiao(&["batch"]);
    assert!(!ok);
    assert!(stderr.contains("--in"), "{stderr}");
}
