//! Minimal in-tree stand-in for the `criterion` crate.
//!
//! Implements the macro and method surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], `iter`/`iter_batched` — as a plain
//! wall-clock harness: warm up once, run a fixed sample count, print
//! mean time per iteration. No statistics, plots, or baselines; it
//! exists so `cargo bench` works offline.

use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(value: T) -> T {
    hint_black_box(value)
}

/// How `iter_batched` amortizes setup; ignored by this harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timer handed to the measured closure.
pub struct Bencher {
    samples: usize,
    /// Total measured time and iteration count, read by the harness.
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Measures `routine` over the sample budget.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        // One warm-up call outside the timed region.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = self.samples as u64;
    }

    /// Measures `routine` with untimed fresh inputs from `setup`.
    pub fn iter_batched<I, T>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> T,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
        self.iterations = self.samples as u64;
    }
}

/// The bench harness: collects and prints per-bench mean times.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

fn run_bench(name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);
    let per_iter = if bencher.iterations > 0 {
        bencher.elapsed / bencher.iterations as u32
    } else {
        Duration::ZERO
    };
    println!(
        "{name:<50} {per_iter:>12.2?}/iter ({} iters)",
        bencher.iterations
    );
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut f = f;
        run_bench(name, self.sample_size, |b| f(b));
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a sample-size override.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the per-bench sample count.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut f = f;
        run_bench(&format!("{}/{name}", self.name), self.sample_size, |b| f(b));
        self
    }

    /// Ends the group (no-op; for API parity).
    pub fn finish(self) {}
}

/// Declares a bench group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
