//! Resolution-only stub for the `proptest` crate.
//!
//! The build environment has no registry access, so this empty crate
//! exists purely to let cargo resolve the workspace graph offline. The
//! per-crate `tests/properties.rs` suites that use the real proptest
//! API are not part of the tier-1 test command; vendoring a functional
//! subset (strategies + `proptest!`) is future work tracked in
//! ROADMAP.md.
