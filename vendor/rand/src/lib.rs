//! Minimal in-tree stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so the workspace
//! vendors the surface it uses: [`RngCore`], [`SeedableRng`] (with the
//! same PCG32-based `seed_from_u64` expansion as rand_core 0.6, so seeds
//! produce the same key material), [`Rng::gen_range`]/[`Rng::gen_bool`]
//! with rand 0.8's sampling algorithms (widening-multiply with rejection
//! for integers, 53-bit mantissa scaling for floats, 2⁻⁶⁴-resolution
//! Bernoulli), and [`seq::SliceRandom::shuffle`]. Streams are
//! deterministic and platform-independent; no entropy source exists or
//! is needed.

use std::ops::{Range, RangeInclusive};

/// A source of random `u32`/`u64` words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A deterministic generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed (e.g. `[u8; 32]` for ChaCha).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the same PCG32 stream
    /// rand_core 0.6 uses, so `seed_from_u64(s)` agrees with upstream.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Uniform sampling from a range, dispatched by element type.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)` (`inclusive` widens to
    /// `[low, high]`).
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! uniform_int {
    ($($ty:ty => $wide:ty, $word:ty, $next:ident);*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let bound = if inclusive { high.wrapping_add(1) } else { high };
                assert!(
                    inclusive && low <= high || !inclusive && low < high,
                    "gen_range: empty range"
                );
                let span = bound.wrapping_sub(low) as $word;
                if span == 0 {
                    // Full domain (e.g. 0..=MAX): every word is valid.
                    return rng.$next() as $ty;
                }
                // rand 0.8's sample_single: widening multiply, rejecting
                // the biased low zone.
                let zone = (span << span.leading_zeros()).wrapping_sub(1);
                loop {
                    let word = rng.$next() as $word;
                    let product = (word as $wide).wrapping_mul(span as $wide);
                    let hi = (product >> <$word>::BITS) as $word;
                    let lo = product as $word;
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    )*};
}

uniform_int!(
    u32 => u64, u32, next_u32;
    i32 => u64, u32, next_u32;
    u64 => u128, u64, next_u64;
    i64 => u128, u64, next_u64;
    usize => u128, u64, next_u64;
    isize => u128, u64, next_u64
);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(low <= high, "gen_range: empty range");
        // 53 random mantissa bits in [0, 1), then scale — the shape of
        // rand 0.8's UniformFloat.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let value = low + (high - low) * unit;
        // Guard against rounding up to an exclusive bound.
        if value >= high && low < high {
            low
        } else {
            value
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self {
        f64::sample_range(rng, low as f64, high as f64, inclusive) as f32
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (needs `0 ≤ p ≤ 1`), with rand 0.8's
    /// 2⁻⁶⁴-resolution integer comparison.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        if p >= 1.0 {
            return true;
        }
        let p_int = (p * 2.0f64.powi(64)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence helpers (`shuffle`).

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place (rand 0.8's traversal order).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter "RNG" making sampling paths easy to pin down.
    struct StepRng(u64);

    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StepRng(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&f));
            let i = rng.gen_range(0..3);
            assert!((0..3).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StepRng(1);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut items: Vec<usize> = (0..50).collect();
        items.shuffle(&mut StepRng(3));
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(items, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn seed_from_u64_matches_rand_core_expansion() {
        struct CaptureSeed([u8; 8]);
        impl RngCore for CaptureSeed {
            fn next_u32(&mut self) -> u32 {
                0
            }
            fn next_u64(&mut self) -> u64 {
                0
            }
        }
        impl SeedableRng for CaptureSeed {
            type Seed = [u8; 8];
            fn from_seed(seed: [u8; 8]) -> Self {
                CaptureSeed(seed)
            }
        }
        // First two PCG32 outputs for state 0, as produced by
        // rand_core 0.6's seed_from_u64.
        let rng = CaptureSeed::seed_from_u64(0);
        assert_eq!(rng.0, [0xec, 0xf2, 0x73, 0xf9, 0x81, 0xb5, 0xcd, 0x45]);
    }
}
