//! Minimal in-tree stand-in for the `rand_chacha` crate.
//!
//! [`ChaCha8Rng`] is a deterministic stream RNG built on the ChaCha
//! block function (IETF layout per RFC 7539, 64-bit block counter as in
//! upstream rand_chacha) reduced to 8 rounds. Output is the keystream
//! read as little-endian `u32` words in block order, so streams are
//! identical on every platform.

use rand::{RngCore, SeedableRng};

/// One 64-byte ChaCha block as sixteen `u32` words.
type Block = [u32; 16];

#[inline]
fn quarter_round(state: &mut Block, a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha8 stream cipher as a random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words 0–7 of the ChaCha state (words 4–11).
    key: [u32; 8],
    /// 64-bit block counter (state words 12–13).
    counter: u64,
    /// Stream id / nonce (state words 14–15).
    nonce: [u32; 2],
    /// The current keystream block.
    buffer: Block,
    /// Next unread word of `buffer`; 16 means "exhausted".
    index: usize,
}

impl ChaCha8Rng {
    const ROUNDS: usize = 8;

    fn block(&self, counter: u64) -> Block {
        let mut state: Block = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            counter as u32,
            (counter >> 32) as u32,
            self.nonce[0],
            self.nonce[1],
        ];
        let input = state;
        for _ in 0..Self::ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, start) in state.iter_mut().zip(input) {
            *word = word.wrapping_add(start);
        }
        state
    }

    fn refill(&mut self) {
        self.buffer = self.block(self.counter);
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            nonce: [0, 0],
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let wa: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
        let wb: Vec<u32> = (0..40).map(|_| b.next_u32()).collect();
        let wc: Vec<u32> = (0..40).map(|_| c.next_u32()).collect();
        assert_eq!(wa, wb);
        assert_ne!(wa, wc);
    }

    #[test]
    fn chacha20_reference_block() {
        // RFC 7539 §2.3.2 test vector, adapted: with 20 rounds, the
        // reference key/nonce/counter must reproduce the published
        // keystream. Validates the quarter-round and state layout shared
        // with the 8-round configuration.
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let base = (4 * i) as u32;
            *word = u32::from_le_bytes([
                base as u8,
                (base + 1) as u8,
                (base + 2) as u8,
                (base + 3) as u8,
            ]);
        }
        // RFC layout: 32-bit counter = 1, then the 96-bit nonce
        // 000000090000004a00000000 as little-endian words.
        let mut state: Block = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            key[0],
            key[1],
            key[2],
            key[3],
            key[4],
            key[5],
            key[6],
            key[7],
            1,
            0x0900_0000,
            0x4a00_0000,
            0,
        ];
        let input = state;
        for _ in 0..10 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, start) in state.iter_mut().zip(input) {
            *word = word.wrapping_add(start);
        }
        assert_eq!(state[0], 0xe4e7_f110);
        assert_eq!(state[15], 0x4e3c_50a2);
    }
}
