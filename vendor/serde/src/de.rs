//! Deserialization: [`Value`] trees → Rust values.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use crate::value::{Map, Value};

/// A deserialization failure with a human-readable path/reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with a caller-supplied message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// "expected X" against what was found.
    pub fn expected(what: &str, found: &Value) -> Self {
        let found = match found {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Number(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        };
        DeError::custom(format!("expected {what}, found {found}"))
    }

    /// Prefixes the message with the field it occurred under.
    pub fn in_field(self, field: &str) -> Self {
        DeError::custom(format!("{field}: {}", self.message))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Conversion out of the JSON-shaped [`Value`] data model.
///
/// Unlike real serde this trait is owned-only (no lifetimes), which is
/// all the workspace needs.
pub trait Deserialize: Sized {
    /// Reads `Self` out of a value tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;

    /// The fallback when an object field is absent entirely. `None`
    /// means "required field"; `Option<T>` overrides this to tolerate
    /// missing keys.
    fn from_missing() -> Option<Self> {
        None
    }
}

/// Reads a struct field out of an object, attributing errors to the
/// field name. Used by the `Deserialize` derive.
pub fn from_field<T: Deserialize>(object: &Map, name: &str) -> Result<T, DeError> {
    match object.get(name) {
        Some(v) => T::from_value(v).map_err(|e| e.in_field(name)),
        None => T::from_missing().ok_or_else(|| DeError::custom(format!("missing field `{name}`"))),
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::expected("a boolean", value))
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("a string", value))
    }
}

macro_rules! de_int {
    ($($ty:ty),*) => {$(
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                value
                    .as_i64()
                    .and_then(|v| <$ty>::try_from(v).ok())
                    .or_else(|| value.as_u64().and_then(|v| <$ty>::try_from(v).ok()))
                    .ok_or_else(|| DeError::expected(concat!("a ", stringify!($ty)), value))
            }
        }
    )*};
}

de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::expected("a number", value))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("an array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

fn tuple_items(value: &Value, len: usize) -> Result<&[Value], DeError> {
    let items = value
        .as_array()
        .ok_or_else(|| DeError::expected("an array", value))?;
    if items.len() != len {
        return Err(DeError::custom(format!(
            "expected an array of {len} elements, found {}",
            items.len()
        )));
    }
    Ok(items)
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = tuple_items(value, 2)?;
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = tuple_items(value, 3)?;
        Ok((
            A::from_value(&items[0])?,
            B::from_value(&items[1])?,
            C::from_value(&items[2])?,
        ))
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::expected("an object", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v).map_err(|e| e.in_field(k))?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        BTreeMap::from_value(value).map(|m| m.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Serialize;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            Vec::<(u32, u32)>::from_value(&vec![(1u32, 2u32)].to_value()).unwrap(),
            vec![(1, 2)]
        );
    }

    #[test]
    fn option_tolerates_null_and_absence() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_missing(), Some(None));
        assert_eq!(u32::from_missing(), None);
    }

    #[test]
    fn errors_name_the_field() {
        let mut m = Map::new();
        m.insert("k".into(), Value::Bool(true));
        let err = from_field::<u32>(&m, "k").unwrap_err();
        assert!(err.to_string().contains("k:"));
        let err = from_field::<u32>(&m, "absent").unwrap_err();
        assert!(err.to_string().contains("missing field"));
    }
}
