//! Minimal in-tree stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small serde surface it actually uses: a JSON-shaped [`Value`] data
//! model, [`Serialize`]/[`Deserialize`] traits that convert to and from
//! it, and (with the `derive` feature) derive macros for named-field
//! structs and unit-variant enums. `serde_json` (also vendored) supplies
//! the text format on top of [`Value`].
//!
//! The API is intentionally a subset: code written against it — plain
//! `#[derive(serde::Serialize, serde::Deserialize)]` plus
//! `serde_json::{to_string, to_string_pretty, from_str, Value}` — works
//! unchanged against real serde, but not vice versa.

pub mod de;
pub mod ser;
pub mod value;

pub use de::{DeError, Deserialize};
pub use ser::Serialize;
pub use value::{Map, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
