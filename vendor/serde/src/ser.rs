//! Serialization: Rust values → [`Value`] trees.

use std::collections::{BTreeMap, HashMap};

use crate::value::{Map, Number, Value};

/// Conversion into the JSON-shaped [`Value`] data model.
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}

macro_rules! ser_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Collected into the ordered Map, so hash iteration order never
        // leaks into serialized output.
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect::<Map>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composite_values() {
        let pairs: Vec<(u32, u32)> = vec![(1, 2), (3, 4)];
        let v = pairs.to_value();
        assert_eq!(v[0][1], 2);
        assert_eq!(v[1][0], 3);
        assert!(None::<u32>.to_value().is_null());
    }

    #[test]
    fn negative_integers_keep_sign() {
        assert_eq!((-3i32).to_value().as_i64(), Some(-3));
        assert_eq!(3i32.to_value().as_u64(), Some(3));
    }
}
