//! The JSON-shaped value tree that serialization passes through.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation. A `BTreeMap` keeps key order deterministic,
/// which the plan cache relies on for stable content hashes.
pub type Map = BTreeMap<String, Value>;

/// A JSON number: unsigned, signed-negative, or floating point.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The number as `f64` (always possible, possibly lossy).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The number as `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(_) => None,
            Number::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The number as `i64`, when it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(v)
                if v.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&v) =>
            {
                Some(v as i64)
            }
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

/// A parsed or to-be-serialized JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// A JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object with deterministic (sorted) key order.
    Object(Map),
}

impl Value {
    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// `true` when the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member by key (`None` when absent or not an object).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        self.as_array().and_then(|a| a.get(index)).unwrap_or(&NULL)
    }
}

/// Writes a JSON string literal with escapes.
fn write_escaped(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

/// Writes a number. Non-finite floats have no JSON form and render as
/// `null`, matching serde_json.
fn write_number(f: &mut impl fmt::Write, n: &Number) -> fmt::Result {
    match *n {
        Number::PosInt(v) => write!(f, "{v}"),
        Number::NegInt(v) => write!(f, "{v}"),
        Number::Float(v) if !v.is_finite() => f.write_str("null"),
        // Rust's f64 Display is the shortest representation that parses
        // back to the same bits, so round-trips are exact.
        Number::Float(v) if v.fract() == 0.0 && v.abs() < 1e15 => write!(f, "{v:.1}"),
        Number::Float(v) => write!(f, "{v}"),
    }
}

impl Value {
    fn write(&self, f: &mut impl fmt::Write, indent: Option<usize>) -> fmt::Result {
        let nested = indent.map(|i| i + 1);
        let newline = |f: &mut dyn fmt::Write, level: usize| -> fmt::Result {
            f.write_char('\n')?;
            for _ in 0..level {
                f.write_str("  ")?;
            }
            Ok(())
        };
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write_number(f, n),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_char('[')?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_char(',')?;
                    }
                    if let Some(level) = nested {
                        newline(f, level)?;
                    }
                    item.write(f, nested)?;
                }
                if let (Some(level), false) = (indent, items.is_empty()) {
                    newline(f, level)?;
                }
                f.write_char(']')
            }
            Value::Object(members) => {
                f.write_char('{')?;
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_char(',')?;
                    }
                    if let Some(level) = nested {
                        newline(f, level)?;
                    }
                    write_escaped(f, key)?;
                    f.write_char(':')?;
                    if indent.is_some() {
                        f.write_char(' ')?;
                    }
                    value.write(f, nested)?;
                }
                if let (Some(level), false) = (indent, members.is_empty()) {
                    newline(f, level)?;
                }
                f.write_char('}')
            }
        }
    }

    /// Compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None).expect("writing to String");
        out
    }

    /// Two-space-indented JSON text.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0)).expect("writing to String");
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write(f, None)
    }
}

macro_rules! eq_int {
    ($($ty:ty),*) => {$(
        impl PartialEq<$ty> for Value {
            fn eq(&self, other: &$ty) -> bool {
                self.as_i64().is_some_and(|v| v == *other as i64)
                    || self.as_u64().is_some_and(|v| i64::try_from(v) == Ok(*other as i64))
            }
        }
        impl PartialEq<Value> for $ty {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

eq_int!(i8, i16, i32, i64, u8, u16, u32, usize);

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_eq() {
        let mut m = Map::new();
        m.insert("n".into(), Value::Number(Number::PosInt(9)));
        m.insert("s".into(), Value::String("hi".into()));
        let v = Value::Object(m);
        assert_eq!(v["n"], 9);
        assert_eq!(v["s"], "hi");
        assert!(v["missing"].is_null());
    }

    #[test]
    fn float_round_trip_text() {
        let n = Value::Number(Number::Float(0.1 + 0.2));
        let text = n.to_json();
        assert_eq!(text.parse::<f64>().unwrap(), 0.1 + 0.2);
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(Value::Number(Number::Float(5.0)).to_json(), "5.0");
    }
}
