//! Derive macros for the in-tree serde stand-in.
//!
//! Written against `proc_macro` alone (no syn/quote — the build
//! environment has no registry access), so the supported shapes are
//! deliberately narrow:
//!
//! * named-field structs without generic parameters, and
//! * enums whose variants are all unit variants (serialized as their
//!   name in a JSON string).
//!
//! No `#[serde(...)]` attributes. Types needing more (generics, tagged
//! enums, renames) implement `Serialize`/`Deserialize` by hand — the
//! traits are two one-method impls.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the derive input declared.
enum Shape {
    /// Struct name and its field names, in declaration order.
    Struct(String, Vec<String>),
    /// Enum name and its unit-variant names.
    Enum(String, Vec<String>),
}

/// Walks tokens up to the `struct`/`enum` keyword, then extracts the
/// type name and its field or variant names.
fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let mut tokens = input.into_iter().peekable();
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Ident(word)) => {
                let word = word.to_string();
                if word == "struct" || word == "enum" {
                    break word;
                }
                // `pub`, `pub(crate)`'s paren group and other qualifiers
                // fall through here.
            }
            // Outer attributes: `#` followed by a bracket group.
            Some(TokenTree::Punct(_)) | Some(TokenTree::Group(_)) => {}
            Some(TokenTree::Literal(other)) => {
                return Err(format!("unexpected literal `{other}` before type keyword"));
            }
            None => return Err("no `struct` or `enum` keyword in derive input".into()),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(name)) => name.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!(
                    "`{name}` is generic; implement Serialize/Deserialize by hand"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err(format!(
                    "`{name}` has no named fields; implement Serialize/Deserialize by hand"
                ));
            }
            Some(_) => {}
            None => return Err(format!("`{name}` has no body")),
        }
    };
    if kind == "struct" {
        Ok(Shape::Struct(name, named_fields(body)?))
    } else {
        Ok(Shape::Enum(name, unit_variants(body)?))
    }
}

/// Field names of a named-field struct body: for each field, skip
/// attributes and visibility, take the identifier before `:`, then skip
/// the type up to the next top-level `,`.
fn named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes (`#` + bracket group) and visibility.
        let name = loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => match tokens.next() {
                    Some(TokenTree::Group(_)) => {}
                    other => return Err(format!("malformed attribute: {other:?}")),
                },
                Some(TokenTree::Ident(word)) => {
                    let word = word.to_string();
                    if word == "pub" {
                        // Possible `pub(crate)` restriction group.
                        if let Some(TokenTree::Group(_)) = tokens.peek() {
                            tokens.next();
                        }
                    } else {
                        break word;
                    }
                }
                Some(other) => return Err(format!("expected field name, got `{other}`")),
                None => return Ok(fields),
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{name}`, got {other:?}")),
        }
        fields.push(name);
        // Skip the type: consume until a `,` at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
                None => return Ok(fields),
            }
        }
    }
}

/// Variant names of an all-unit-variant enum body.
fn unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => match tokens.next() {
                Some(TokenTree::Group(_)) => {}
                other => return Err(format!("malformed attribute: {other:?}")),
            },
            Some(TokenTree::Ident(name)) => {
                match tokens.peek() {
                    None => {}
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                        tokens.next();
                    }
                    Some(other) => {
                        return Err(format!(
                            "variant `{name}` is not a unit variant (found `{other}`); \
                             implement Serialize/Deserialize by hand"
                        ))
                    }
                }
                variants.push(name.to_string());
            }
            Some(other) => return Err(format!("expected variant name, got `{other}`")),
            None => return Ok(variants),
        }
    }
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().unwrap()
}

/// Derives `serde::Serialize` (see the crate docs for supported shapes).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Err(e) => return compile_error(&e),
        Ok(Shape::Struct(name, fields)) => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "map.insert(String::from({f:?}), ::serde::Serialize::to_value(&self.{f}));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut map = ::serde::Map::new();\n\
                         {inserts}\
                         ::serde::Value::Object(map)\n\
                     }}\n\
                 }}"
            )
        }
        Ok(Shape::Enum(name, variants)) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::String(String::from(match self {{\n{arms}}}))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derives `serde::Deserialize` (see the crate docs for supported shapes).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Err(e) => return compile_error(&e),
        Ok(Shape::Struct(name, fields)) => {
            let reads: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de::from_field(object, {f:?})?,\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let object = value\n\
                             .as_object()\n\
                             .ok_or_else(|| ::serde::DeError::expected(\"an object\", value))?;\n\
                         Ok({name} {{\n{reads}}})\n\
                     }}\n\
                 }}"
            )
        }
        Ok(Shape::Enum(name, variants)) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match value.as_str().ok_or_else(|| ::serde::DeError::expected(\"a string\", value))? {{\n\
                             {arms}\
                             other => Err(::serde::DeError::custom(format!(\n\
                                 \"unknown {name} variant `{{other}}`\"\n\
                             ))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
