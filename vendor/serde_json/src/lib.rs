//! Minimal in-tree stand-in for the `serde_json` crate.
//!
//! JSON text on top of the vendored serde [`Value`] data model:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and [`Value`]
//! itself (re-exported). See the vendored `serde` crate for why this
//! exists and what subset it covers.

use std::fmt;

pub use serde::{Map, Number, Value};

/// A JSON error: either a parse failure (with byte offset) or a
/// [`serde::DeError`] from mapping a value onto a Rust type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn parse(message: impl Into<String>, offset: usize) -> Self {
        Error {
            message: format!("{} at byte {offset}", message.into()),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error {
            message: e.to_string(),
        }
    }
}

/// Serializes `value` as compact JSON.
///
/// The `Result` return mirrors serde_json; with this in-tree
/// implementation serialization itself cannot fail.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_pretty())
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reads a `T` from JSON text.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::parse("trailing characters", parser.pos));
    }
    Ok(T::from_value(&value)?)
}

/// Converts a [`Value`] tree onto a Rust type.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Recursive-descent JSON parser over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(
                format!("expected `{}`", byte as char),
                self.pos,
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::parse(format!("expected `{word}`"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::parse(
                format!("unexpected `{}`", c as char),
                self.pos,
            )),
            None => Err(Error::parse("unexpected end of input", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut members = Map::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            members.insert(key, self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(Error::parse("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::parse("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::parse("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(Error::parse(
                                format!("invalid escape `\\{}`", other as char),
                                self.pos - 1,
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through unchanged; find the
                    // char boundary from the original str slice.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::parse("invalid UTF-8", self.pos))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, Error> {
        let code = self.hex4()?;
        // Surrogate pairs: a high surrogate must be followed by an
        // escaped low surrogate.
        if (0xD800..0xDC00).contains(&code) {
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                self.expect(b'u')?;
                let low = self.hex4()?;
                if (0xDC00..0xE000).contains(&low) {
                    let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(combined)
                        .ok_or_else(|| Error::parse("invalid surrogate pair", self.pos));
                }
            }
            return Err(Error::parse("unpaired surrogate", self.pos));
        }
        char::from_u32(code).ok_or_else(|| Error::parse("invalid \\u escape", self.pos))
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| Error::parse("expected 4 hex digits", self.pos))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| Error::parse(format!("invalid number `{text}`"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v: Value =
            from_str(r#"{"a": [1, -2, 3.5], "b": {"c": "x\ny"}, "d": null, "e": true}"#).unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1], -2);
        assert_eq!(v["a"][2], 3.5);
        assert_eq!(v["b"]["c"], "x\ny");
        assert!(v["d"].is_null());
        assert_eq!(v["e"], true);
    }

    #[test]
    fn round_trips_compact_and_pretty() {
        let text = r#"{"name":"q0","values":[1,2.5,true,null,"s"]}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
        let pretty = to_string_pretty(&v).unwrap();
        let reparsed: Value = from_str(&pretty).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn float_round_trip_is_bit_exact() {
        for x in [0.1f64, 1.0 / 3.0, 6.02214076e23, -1e-300, 5.0] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn unicode_escapes() {
        let escaped: Value = from_str(r#""\u00e9 \ud83d\ude00""#).unwrap();
        assert_eq!(escaped, "é 😀");
        let raw: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(raw, "é😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }
}
